"""The process-level fault-injection registry (`repro.utils.faultpoints`)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.utils import faultpoints


@pytest.fixture(autouse=True)
def clean_registry():
    faultpoints.disarm()
    yield
    faultpoints.disarm()


class TestRegistry:
    def test_registered_names_are_declared(self):
        names = faultpoints.registered()
        assert "store.append" in names
        assert "sweep.journal.start" in names
        assert "streaming.fold" in names
        assert set(faultpoints.SWEEP_FAULTPOINTS) <= set(names)
        # streaming.fold is not on the sweep path.
        assert "streaming.fold" not in faultpoints.SWEEP_FAULTPOINTS

    def test_arm_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown faultpoint"):
            faultpoints.arm("no.such.point")
        with pytest.raises(KeyError, match="unknown faultpoint"):
            faultpoints.is_armed("no.such.point")

    def test_arm_bad_action_raises(self):
        with pytest.raises(ValueError, match="action"):
            faultpoints.arm("store.append", action="explode")

    def test_arm_bad_at_raises(self):
        with pytest.raises(ValueError, match="at"):
            faultpoints.arm("store.append", at=0)


class TestReach:
    def test_disarmed_reach_is_a_no_op(self):
        for name in faultpoints.registered():
            faultpoints.reach(name)  # no raise, no exit

    def test_armed_reach_raises_and_consumes(self):
        faultpoints.arm("store.append")
        assert faultpoints.is_armed("store.append")
        with pytest.raises(faultpoints.FaultInjected, match="store.append"):
            faultpoints.reach("store.append")
        # One-shot: the arm is consumed by firing.
        assert not faultpoints.is_armed("store.append")
        faultpoints.reach("store.append")

    def test_at_counts_hits_before_firing(self):
        faultpoints.arm("store.append", at=3)
        faultpoints.reach("store.append")
        faultpoints.reach("store.append")
        with pytest.raises(faultpoints.FaultInjected):
            faultpoints.reach("store.append")

    def test_other_points_unaffected(self):
        faultpoints.arm("store.append")
        faultpoints.reach("sweep.journal.start")
        faultpoints.reach("cache.store")

    def test_disarm_one_name(self):
        faultpoints.arm("store.append")
        faultpoints.arm("cache.store")
        faultpoints.disarm("store.append")
        assert not faultpoints.is_armed("store.append")
        assert faultpoints.is_armed("cache.store")


class TestContextManager:
    def test_armed_scopes_the_arm(self):
        with faultpoints.armed("store.append"):
            assert faultpoints.is_armed("store.append")
            with pytest.raises(faultpoints.FaultInjected):
                faultpoints.reach("store.append")
        assert not faultpoints.is_armed("store.append")

    def test_armed_disarms_even_unfired(self):
        with faultpoints.armed("store.append"):
            pass
        assert not faultpoints.is_armed("store.append")


class TestEnvArming:
    def test_env_grammar_parses_action_and_at(self):
        parsed = faultpoints.parse_env("store.append:raise:3")
        assert parsed == ("store.append", "raise", 3)
        # Action defaults to exit: the env var exists for kill tests.
        assert faultpoints.parse_env("store.append") == ("store.append", "exit", 1)
        assert faultpoints.parse_env("cache.store:raise") == ("cache.store", "raise", 1)

    def test_env_bad_grammar_raises(self):
        with pytest.raises(ValueError, match="at must be an integer"):
            faultpoints.parse_env("store.append:raise:zero")
        with pytest.raises(KeyError, match="unknown faultpoint"):
            faultpoints.parse_env("nope:raise")
        with pytest.raises(ValueError, match="action"):
            faultpoints.parse_env("store.append:boom")

    def test_exit_action_kills_the_process(self, tmp_path):
        """The `exit` action is a hard death (os._exit), visible only from
        outside: a child armed via the environment dies with EXIT_CODE."""
        code = (
            "from repro.utils import faultpoints\n"
            "faultpoints.reach('store.append')\n"
            "print('survived first')\n"
            "faultpoints.reach('store.append')\n"
            "print('never printed')\n"
        )
        env = dict(os.environ)
        env["REPRO_FAULTPOINT"] = "store.append:exit:2"
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=os.getcwd(),
            capture_output=True, text=True,
        )
        assert out.returncode == faultpoints.EXIT_CODE
        assert "survived first" in out.stdout
        assert "never printed" not in out.stdout
