"""Tests for DataSourceNode and EdgeServer."""

import numpy as np
import pytest

from repro.cr.coreset import Coreset
from repro.distributed.network import SimulatedNetwork
from repro.distributed.node import DataSourceNode
from repro.distributed.server import EdgeServer
from repro.dr.jl import JLProjection
from repro.quantization.rounding import RoundingQuantizer


@pytest.fixture()
def node_and_network(high_dim_points):
    network = SimulatedNetwork()
    node = DataSourceNode("source-0", high_dim_points, network, seed=0)
    return node, network


class TestDataSourceNode:
    def test_basic_properties(self, node_and_network, high_dim_points):
        node, _ = node_and_network
        assert node.cardinality == high_dim_points.shape[0]
        assert node.dimension == high_dim_points.shape[1]
        assert node.compute_seconds == 0.0

    def test_send_to_server_metered(self, node_and_network):
        node, network = node_and_network
        node.send_to_server(np.zeros((4, 5)), tag="test")
        assert network.uplink_scalars() == 20
        assert network.log.messages[0].sender == "source-0"

    def test_apply_jl_replaces_points_and_costs_time(self, node_and_network):
        node, network = node_and_network
        projection = JLProjection(node.dimension, 12, seed=1)
        node.apply_jl(projection)
        assert node.dimension == 12
        assert node.compute_seconds > 0.0
        assert network.uplink_scalars() == 0  # JL costs no communication

    def test_local_svd_shapes(self, node_and_network):
        node, _ = node_and_network
        singular_values, basis = node.local_svd(6)
        assert singular_values.shape == (6,)
        assert basis.shape == (node.dimension, 6)
        assert np.all(np.diff(singular_values) <= 1e-9)

    def test_project_onto_reduces_rank(self, node_and_network):
        node, _ = node_and_network
        _, basis = node.local_svd(5)
        projected = node.project_onto(basis)
        assert projected.shape[1] == basis.shape[0]
        assert np.linalg.matrix_rank(projected) <= 5

    def test_local_bicriteria(self, node_and_network):
        node, _ = node_and_network
        result = node.local_bicriteria(3)
        assert result.centers.shape[1] == node.dimension
        assert result.cost >= 0.0

    def test_local_sensitivity_sample_weights_sum_to_cardinality(self, node_and_network):
        node, _ = node_and_network
        bicriteria = node.local_bicriteria(3)
        points, weights = node.local_sensitivity_sample(bicriteria, 40)
        assert points.shape[0] == weights.shape[0]
        assert points.shape[0] >= 40  # samples plus bicriteria centers
        assert np.all(weights >= 0.0)
        # Total weight is close to the local cardinality (exact up to the
        # clipping of negative residuals).
        assert weights.sum() == pytest.approx(node.cardinality, rel=0.35)

    def test_quantize_through_node(self, node_and_network):
        node, _ = node_and_network
        quantizer = RoundingQuantizer(6)
        out = node.quantize(node.points, quantizer)
        assert out.shape == node.points.shape
        assert node.compute_seconds > 0.0


class TestEdgeServer:
    def test_solve_kmeans_on_coreset(self, blob_points):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=4, seed=0)
        coreset = Coreset(blob_points, np.ones(blob_points.shape[0]))
        result = server.solve_kmeans(coreset)
        assert result.centers.shape == (4, blob_points.shape[1])
        assert server.compute_seconds > 0.0

    def test_receive_and_merge_coresets(self, blob_points):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        server.receive_coreset(Coreset(blob_points[:10], np.ones(10)))
        server.receive_coreset(Coreset(blob_points[10:30], np.ones(20)))
        merged = server.merged_coreset()
        assert merged.size == 30
        server.clear()
        with pytest.raises(RuntimeError):
            server.merged_coreset()

    def test_global_svd(self, high_dim_points):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        basis = server.global_svd(high_dim_points, 4)
        assert basis.shape == (high_dim_points.shape[1], 4)
        assert np.allclose(basis.T @ basis, np.eye(4), atol=1e-8)

    def test_allocate_sample_sizes_proportional(self):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        sizes = server.allocate_sample_sizes([10.0, 30.0, 60.0], 100)
        assert sizes.sum() >= 98  # rounding keeps the budget roughly intact
        assert sizes[2] > sizes[1] > sizes[0]

    def test_allocate_sample_sizes_zero_costs(self):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        sizes = server.allocate_sample_sizes([0.0, 0.0], 10)
        assert np.array_equal(sizes, [5, 5])

    def test_allocate_negative_cost_rejected(self):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        with pytest.raises(ValueError):
            server.allocate_sample_sizes([-1.0, 2.0], 10)

    def test_downlink_messages_logged(self):
        network = SimulatedNetwork()
        server = EdgeServer(network, k=2, seed=0)
        server.send_to_source("source-1", np.zeros(7), tag="allocation")
        assert network.uplink_scalars() == 0
        assert network.log.total_scalars(uplink_only=False) == 7
