"""End-to-end coverage: every registered composition through the runner.

Single-source, multi-source, and streaming compositions all resolve through
the registry and run on a small Gaussian mixture via
``ExperimentRunner.run_registered``; every report must come back with
populated evaluation fields and non-trivial metered communication.
"""

import numpy as np
import pytest

from repro.core import registry
from repro.datasets import make_gaussian_mixture
from repro.metrics import ExperimentRunner

K = 3
NUM_SOURCES = 3
OVERRIDES = dict(
    coreset_size=60,
    total_samples=90,
    pca_rank=4,
    jl_dimension=10,
    batch_size=150,
)


@pytest.fixture(scope="module")
def runner():
    points, _, _ = make_gaussian_mixture(n=600, d=24, k=K, seed=50)
    return ExperimentRunner(points, k=K, monte_carlo_runs=1, seed=51)


@pytest.fixture(scope="module")
def all_results(runner):
    names = registry.registered_names()
    result = runner.run_registered(names, num_sources=NUM_SOURCES, **OVERRIDES)
    return names, result


def test_every_registered_name_produced_an_evaluation(all_results):
    names, result = all_results
    assert sorted(result.evaluations) == sorted(names)
    for name, evaluations in result.evaluations.items():
        assert len(evaluations) == 1, name


def test_evaluation_fields_populated(all_results):
    _, result = all_results
    for name, (evaluation,) in result.evaluations.items():
        assert np.isfinite(evaluation.normalized_cost), name
        assert evaluation.normalized_cost > 0, name
        assert evaluation.normalized_communication > 0, name
        assert evaluation.communication_scalars > 0, name
        assert evaluation.communication_bits > 0, name
        assert evaluation.source_seconds >= 0, name
        assert evaluation.server_seconds >= 0, name


def test_metered_totals_consistent(all_results):
    _, result = all_results
    for name, (evaluation,) in result.evaluations.items():
        # Bits never exceed full double precision for the metered scalars.
        assert evaluation.communication_bits <= evaluation.communication_scalars * 64, name
        if evaluation.quantizer_bits is None:
            assert evaluation.communication_bits == evaluation.communication_scalars * 64, name
        else:
            assert evaluation.communication_bits < evaluation.communication_scalars * 64, name


def test_summaries_compress_except_baselines(all_results):
    _, result = all_results
    for name, (evaluation,) in result.evaluations.items():
        if registry.is_streaming(name):
            continue  # streaming re-ships merged buckets; compression varies
        if name.startswith("nr"):
            assert evaluation.normalized_communication == pytest.approx(1.0), name
        else:
            assert evaluation.normalized_communication < 1.0, name
