"""Input validation helpers.

Public API entry points validate their inputs early and raise informative
exceptions; internal hot loops assume the checks have already run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_matrix(
    points: np.ndarray,
    name: str = "points",
    min_rows: int = 1,
    min_cols: int = 1,
    allow_empty: bool = False,
    preserve_dtype: bool = False,
) -> np.ndarray:
    """Validate and return a 2-D float array of data points.

    A 1-D array is promoted to a single-row matrix.  Raises ``ValueError`` on
    wrong dimensionality, NaN/Inf entries, or too-small shapes.

    By default everything is cast to ``float64`` (contiguous float64 input
    passes through copy-free): the distance kernels use the expanded
    ``|x|² − 2x·y + |y|²`` formula, which is numerically unsafe in single
    precision, so float32 data must never flow into them *implicitly*.
    ``preserve_dtype=True`` keeps ``float32`` as-is — used only by callers
    that explicitly opted into the single-precision path (e.g.
    ``WeightedKMeans(compute_dtype=np.float32)``).
    """
    if preserve_dtype:
        arr = np.asarray(points)
        if arr.dtype != np.float32 and arr.dtype != np.float64:
            arr = np.asarray(points, dtype=np.float64)
    else:
        arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    if not allow_empty:
        if arr.shape[0] < min_rows:
            raise ValueError(
                f"{name} must have at least {min_rows} row(s), got {arr.shape[0]}"
            )
        if arr.shape[1] < min_cols:
            raise ValueError(
                f"{name} must have at least {min_cols} column(s), got {arr.shape[1]}"
            )
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_weights(
    weights: Optional[np.ndarray], n: int, name: str = "weights"
) -> np.ndarray:
    """Validate a weight vector of length ``n``; ``None`` means unit weights."""
    if weights is None:
        return np.ones(n, dtype=float)
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate an integer parameter such as ``k`` or a sample size."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value)!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_fraction(value: float, name: str, low: float = 0.0, high: float = 1.0,
                   inclusive_low: bool = False, inclusive_high: bool = False) -> float:
    """Validate a fraction-like parameter such as epsilon or delta."""
    value = float(value)
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lo}{low}, {high}{hi}, got {value}")
    return value
