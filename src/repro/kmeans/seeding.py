"""Seeding strategies for k-means: k-means++ and D²-sampling.

k-means++ provides an ``O(log k)``-approximate initialisation in expectation
and is used by the weighted Lloyd solver.  Plain D²-sampling (sampling
proportional to the current squared distance without updating the running
minimum per chosen point) is exposed separately because the bicriteria
approximation of Aggarwal–Deshpande–Kannan (paper reference [36]/[42])
repeatedly draws batches with it.

All weighted draws go through the cumulative-sum + ``searchsorted`` sampler
(:func:`repro.utils.random.weighted_indices`), which is bit-compatible with
``Generator.choice(p=...)`` but skips its per-call probability re-validation
— the dominant overhead when k-means++ redraws from a fresh score vector for
every selected center.  ``d2_sampling`` additionally accepts a precomputed
min-distance vector so adaptive-sampling callers can maintain it
incrementally instead of re-scanning all previously selected centers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.linalg import pairwise_squared_distances, squared_norms
from repro.utils.random import SeedLike, as_generator, weighted_index_from_scores
from repro.utils.validation import check_matrix, check_positive_int, check_weights


def kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    local_trials: Optional[int] = None,
) -> np.ndarray:
    """k-means++ seeding on a weighted point set.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    k:
        Number of centers to select (capped at ``n``).
    weights:
        Optional non-negative point weights; the selection probability of a
        point is proportional to ``weight * D(point)^2``.
    seed:
        RNG seed or generator.
    local_trials:
        Optional greedy variant (scikit-learn style): draw this many
        candidates per step and keep the one that reduces the potential
        ``sum(w * D^2)`` most.  ``None`` (default) keeps the classic
        single-candidate draw — and its exact RNG stream.

    Returns
    -------
    numpy.ndarray
        ``(k, d)`` array of selected centers (actual data points).
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n = points.shape[0]
    weights = check_weights(weights, n)
    rng = as_generator(seed)
    k = min(k, n)
    if local_trials is not None:
        local_trials = check_positive_int(local_trials, "local_trials")

    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("weights must contain at least one positive entry")

    # Hoisted across all candidate-distance updates below.
    point_norms = squared_norms(points)

    first = weighted_index_from_scores(rng, weights)
    chosen = [first]
    closest = pairwise_squared_distances(
        points, points[[first]],
        a_squared_norms=point_norms, b_squared_norms=point_norms[[first]],
    ).ravel()

    for _ in range(1, k):
        scores = weights * closest
        total = scores.sum()
        if total <= 0:
            # All remaining mass is on already-covered points; pick uniformly
            # among not-yet-chosen indices to keep centers distinct if possible.
            remaining = np.setdiff1d(np.arange(n), np.asarray(chosen))
            pick = int(rng.choice(remaining)) if remaining.size else int(rng.integers(n))
            new_d = pairwise_squared_distances(
                points, points[[pick]],
                a_squared_norms=point_norms, b_squared_norms=point_norms[[pick]],
            ).ravel()
        elif local_trials is None or local_trials <= 1:
            pick = weighted_index_from_scores(rng, scores)
            new_d = pairwise_squared_distances(
                points, points[[pick]],
                a_squared_norms=point_norms, b_squared_norms=point_norms[[pick]],
            ).ravel()
        else:
            candidates = weighted_index_from_scores(rng, scores, size=local_trials)
            candidate_d = pairwise_squared_distances(
                points, points[candidates],
                a_squared_norms=point_norms, b_squared_norms=point_norms[candidates],
            )
            np.minimum(candidate_d, closest[:, None], out=candidate_d)
            potentials = weights @ candidate_d
            best = int(np.argmin(potentials))
            pick = int(candidates[best])
            new_d = candidate_d[:, best]
        chosen.append(pick)
        np.minimum(closest, new_d, out=closest)

    return points[np.asarray(chosen, dtype=int)].copy()


def d2_sampling(
    points: np.ndarray,
    current_centers: Optional[np.ndarray],
    batch_size: int,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    min_squared_distances: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a batch of points with probability proportional to weighted D².

    Used by the adaptive-sampling bicriteria algorithm: given the centers
    selected so far, each point is sampled with probability proportional to
    its weighted squared distance to the nearest current center (uniformly by
    weight if no centers have been selected yet).

    ``min_squared_distances`` lets iterative callers pass the current
    min-distance vector (maintained incrementally as centers accumulate)
    instead of having it recomputed from scratch against every center.

    Returns
    -------
    (indices, sampled_points):
        Indices into ``points`` (with replacement) and the corresponding rows.
    """
    points = check_matrix(points, "points")
    batch_size = check_positive_int(batch_size, "batch_size")
    n = points.shape[0]
    weights = check_weights(weights, n)
    rng = as_generator(seed)

    if min_squared_distances is not None:
        scores = weights * min_squared_distances
    elif current_centers is None or len(current_centers) == 0:
        scores = weights.copy()
    else:
        centers = check_matrix(current_centers, "current_centers")
        closest = pairwise_squared_distances(points, centers).min(axis=1)
        scores = weights * closest

    total = scores.sum()
    if total <= 0:
        weight_total = weights.sum()
        if weight_total <= 0:
            raise ValueError("weights must contain at least one positive entry")
        scores = weights
    indices = weighted_index_from_scores(rng, scores, size=batch_size)
    return indices, points[indices].copy()
