#!/usr/bin/env python
"""Regenerate the golden communication fixture.

Usage (from the repository root)::

    PYTHONPATH=src python tests/goldens/regenerate_communication.py

Reruns every registered composition under the ideal network with the fixed
:data:`repro.metrics.profile.GOLDEN_CONFIG` and rewrites
``tests/goldens/communication.json``.  Only do this when a communication
change is *intended* (a new wire format, a new pipeline, a changed default);
review the JSON diff like code — an unexplained change in a pinned scalar
count is exactly the regression the fixture exists to catch.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE = Path(__file__).resolve().parent / "communication.json"


def main() -> int:
    from repro.metrics.profile import (
        GOLDEN_CONFIG,
        GOLDEN_TREE_OVERRIDES,
        communication_profile,
        tree_communication_profile,
    )

    profiles = communication_profile()
    tree_profiles = tree_communication_profile()
    payload = {
        "_comment": (
            "Golden communication fixture: per-pipeline uplink scalars/bits "
            "and scalars_by_tag under the ideal network.  The tree_profiles "
            "section reruns the streaming compositions through the golden "
            "fan-in-2 aggregation tree, pinning the per-hop (@h<level>) "
            "aggregator traffic.  Regenerate with "
            "tests/goldens/regenerate_communication.py; never edit by hand."
        ),
        "config": GOLDEN_CONFIG,
        "profiles": profiles,
        "tree_config": GOLDEN_TREE_OVERRIDES,
        "tree_profiles": tree_profiles,
    }
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {FIXTURE} ({len(profiles)} pipelines, "
        f"{len(tree_profiles)} tree profiles)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
