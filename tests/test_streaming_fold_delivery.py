"""Delivery-safety matrix for the streaming fold layer.

The engine simulates exactly-once delivery, but the real wire
(:mod:`repro.serve`) is at-least-once: acks get lost, clients resend, and
retries can arrive after newer updates.  These tests pin the fold layer's
contract — duplicates and stale reorders are no-ops, gaps are typed
rejections, and watermarks survive snapshot/restore — so no delivery
schedule can change a query answer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed.network import SimulatedNetwork
from repro.serve import protocol
from repro.stages.base import StageContext
from repro.stages.cr import UniformStage
from repro.streaming.server import (
    EmptySummaryError,
    FoldRejectedError,
    FoldResult,
    StreamingServer,
    UnknownSourceError,
    UpdateGapError,
)
from repro.streaming.source import StreamingSource
from repro.utils.random import as_generator


def canonical(snapshot: dict) -> str:
    """A snapshot as its byte-comparable on-disk form."""
    return json.dumps(snapshot, sort_keys=True)


def make_source(source_id: str = "source-0", seed: int = 9) -> StreamingSource:
    return StreamingSource(
        source_id, [UniformStage(12)], UniformStage(12),
        StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(seed)),
        SimulatedNetwork(),
    )


def make_updates(count: int = 5, source_id: str = "source-0", window=None):
    data = as_generator(50)
    source = make_source(source_id)
    if window is not None:
        source.window = window
    updates = []
    for index in range(count):
        updates.append(source.ingest(data.random((40, 5)), index))
    return updates


def make_server(seed: int = 17) -> StreamingServer:
    server = StreamingServer(k=2, n_init=3, seed=seed)
    server.register("source-0")
    return server


class TestIdempotence:
    def test_duplicate_fold_is_a_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_FROZEN_CLOCK", "1")
        updates = make_updates(4)
        once, twice = make_server(), make_server()
        for update in updates:
            assert once.fold(update) is FoldResult.APPLIED
        for update in updates:
            assert twice.fold(update) is FoldResult.APPLIED
            # At-least-once delivery: every update immediately resent.
            assert twice.fold(update) is FoldResult.DUPLICATE
        # Byte-identical state, not merely equivalent.
        assert canonical(twice.snapshot()) == canonical(once.snapshot())
        assert twice.updates_folded == once.updates_folded == 4
        mine, _, _ = once.query()
        theirs, _, _ = twice.query()
        np.testing.assert_array_equal(theirs.centers, mine.centers)
        assert theirs.cost == mine.cost

    def test_stale_reorder_cannot_resurrect_retired_buckets(self):
        # A sliding window retires buckets; a delayed retransmission of the
        # update that *added* them must not bring them back.
        updates = make_updates(6, window=2)
        server = make_server()
        for update in updates:
            server.fold(update)
        live_before = server.live_bucket_count
        snap_before = canonical(server.snapshot())
        for stale in updates[:4]:  # every already-superseded update replayed
            assert server.fold(stale) is FoldResult.DUPLICATE
        assert server.live_bucket_count == live_before
        assert canonical(server.snapshot()) == snap_before

    def test_updates_folded_counts_only_applied(self):
        updates = make_updates(3)
        server = make_server()
        for update in updates:
            server.fold(update)
            server.fold(update)
        assert server.updates_folded == 3


class TestRejections:
    def test_gap_is_rejected_and_state_untouched(self):
        updates = make_updates(5)
        server = make_server()
        server.fold(updates[0])
        snap = canonical(server.snapshot())
        with pytest.raises(UpdateGapError) as excinfo:
            server.fold(updates[3])
        assert excinfo.value.expected == 1
        assert excinfo.value.got == 3
        assert excinfo.value.source_id == "source-0"
        assert isinstance(excinfo.value, FoldRejectedError)
        assert canonical(server.snapshot()) == snap
        # The client replays from `expected` and the stream heals.
        for update in updates[1:]:
            assert server.fold(update) is FoldResult.APPLIED

    def test_unregistered_source_is_rejected(self):
        (update,) = make_updates(1, source_id="source-7")
        server = make_server()
        with pytest.raises(UnknownSourceError) as excinfo:
            server.fold(update)
        assert excinfo.value.source_id == "source-7"
        assert excinfo.value.registered == ("source-0",)
        assert server.updates_folded == 0

    def test_register_is_idempotent_and_preserves_watermark(self):
        updates = make_updates(2)
        server = make_server()
        assert server.register("source-0") == -1
        for update in updates:
            server.fold(update)
        # A reconnecting client re-registers; the watermark survives.
        assert server.register("source-0") == 1
        assert server.watermark("source-0") == 1
        with pytest.raises(UnknownSourceError):
            server.watermark("source-9")

    def test_empty_query_raises_typed_error(self):
        server = make_server()
        with pytest.raises(EmptySummaryError, match="no summary"):
            server.global_coreset()
        # Legacy callers caught RuntimeError; that contract holds.
        assert issubclass(EmptySummaryError, RuntimeError)


class TestWatermarkPersistence:
    def test_watermarks_survive_snapshot_restore(self):
        updates = make_updates(4)
        server = make_server()
        for update in updates[:3]:
            server.fold(update)
        twin = StreamingServer.restore(json.loads(canonical(server.snapshot())))
        assert twin.registered_sources == ("source-0",)
        assert twin.watermark("source-0") == 2
        # Replayed history is recognized after restart...
        for update in updates[:3]:
            assert twin.fold(update) is FoldResult.DUPLICATE
        # ...and the stream continues.
        assert twin.fold(updates[3]) is FoldResult.APPLIED

    def test_wire_roundtrip_then_fold_is_bit_identical(self):
        # Fold deltas that crossed the NDJSON wire; state must match the
        # in-process fold byte for byte.
        updates = make_updates(3)
        local, remote = make_server(), make_server()
        for update in updates:
            local.fold(update)
            frame = protocol.parse_frame(
                protocol.dump_frame(protocol.encode_update(update))
            )
            remote.fold(protocol.decode_update(frame))
        assert canonical(remote.snapshot()) == canonical(local.snapshot())
