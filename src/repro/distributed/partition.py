"""Partitioning a dataset across data sources.

The paper's experiments partition each dataset uniformly at random among 10
data sources (Section 7.1).  We also provide size-skewed and feature-skewed
(label-correlated) splits, which the ablation benchmark uses to probe
robustness of the distributed algorithms to non-IID data placement.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.random import SeedLike, as_generator, permutation_chunks
from repro.utils.validation import check_matrix, check_positive_int

_STRATEGIES = ("random", "skewed-size", "by-cluster")


def partition_dataset(
    points: np.ndarray,
    num_sources: int,
    strategy: str = "random",
    seed: SeedLike = None,
    skew: float = 2.0,
    labels: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Split ``points`` into ``num_sources`` local datasets.

    Parameters
    ----------
    points:
        ``(n, d)`` dataset.
    num_sources:
        Number m of data sources; every source receives at least one point.
    strategy:
        ``"random"`` — uniform random split (the paper's setup);
        ``"skewed-size"`` — random assignment with geometric size imbalance
        controlled by ``skew``;
        ``"by-cluster"`` — contiguous groups of ``labels`` (or a k-means-free
        proxy: sort by the first coordinate) go to the same source,
        emulating strongly non-IID edge data.
    seed:
        RNG seed or generator.
    skew:
        Ratio between the expected sizes of the largest and smallest source
        for ``"skewed-size"``.
    labels:
        Optional cluster labels used by ``"by-cluster"``.

    Returns
    -------
    list of numpy.ndarray
        Index arrays (into ``points``) of each source's local dataset.
    """
    points = check_matrix(points, "points")
    num_sources = check_positive_int(num_sources, "num_sources")
    n = points.shape[0]
    if num_sources > n:
        raise ValueError(
            f"cannot partition {n} points across {num_sources} sources"
        )
    rng = as_generator(seed)

    if strategy == "random":
        return permutation_chunks(rng, n, num_sources)

    if strategy == "skewed-size":
        if skew < 1.0:
            raise ValueError(f"skew must be >= 1, got {skew}")
        raw = np.geomspace(1.0, skew, num_sources)
        proportions = raw / raw.sum()
        order = rng.permutation(n)
        sizes = np.maximum(1, np.floor(proportions * n).astype(int))
        # Bring the total to exactly n while keeping every source non-empty.
        # The remainder can be negative when many tiny shares were bumped up
        # to 1 (e.g. n close to num_sources with strong skew): absorbing it
        # all into the last bucket — the historical behaviour — could leave
        # that bucket empty or negative, so the deficit is drained from the
        # largest buckets instead, never below one point.
        diff = int(n - sizes.sum())
        if diff >= 0:
            sizes[-1] += diff
        else:
            # Drain the deficit greedily from the largest (last) buckets,
            # each down to one point at most.  Vectorised so that
            # thousand-source splits stay cheap: walking the reversed
            # capacity prefix-sums is exactly the sequential drain.
            capacity = (sizes - 1)[::-1]
            drained_before = np.concatenate(([0], np.cumsum(capacity)[:-1]))
            take = np.clip(-diff - drained_before, 0, capacity)
            sizes = sizes - take[::-1]
        chunks = []
        start = 0
        for size in sizes:
            chunks.append(np.sort(order[start:start + size]))
            start += size
        return chunks

    if strategy == "by-cluster":
        if labels is None:
            keys = points[:, 0]
        else:
            keys = np.asarray(labels, dtype=float)
            if keys.shape[0] != n:
                raise ValueError("labels must have one entry per point")
        order = np.argsort(keys, kind="stable")
        return [np.sort(chunk) for chunk in np.array_split(order, num_sources)]

    raise ValueError(f"unknown strategy {strategy!r}; available: {_STRATEGIES}")
