"""The quantization stage (Section 6): quantize-on-send.

Quantization is special among the stages: what must be quantized is the
payload that actually crosses the wire — for FSS-format summaries that is
the subspace *coordinates*, not the ambient points, and weights / basis /
shift always travel at full precision (Section 6.2).  ``QuantizeStage``
therefore does not transform the points eagerly; it arms the state with a
wire quantizer that the engine applies to the main payload at transmission
time, inside the timed source section.  The pipeline-level ``quantizer=``
argument is sugar for appending this stage.
"""

from __future__ import annotations

from typing import Union

from repro.quantization.rounding import RoundingQuantizer
from repro.stages.base import Stage, StageContext, StageEffect, SourceState


class QuantizeStage(Stage):
    """Arm the pipeline's quantize-on-send step with a rounding quantizer.

    Parameters
    ----------
    quantizer:
        A :class:`~repro.quantization.rounding.RoundingQuantizer`, or an
        ``int`` number of significant bits to build one from.
    """

    name = "QT"

    def __init__(self, quantizer: Union[RoundingQuantizer, int]) -> None:
        if isinstance(quantizer, int):
            quantizer = RoundingQuantizer(quantizer)
        self.quantizer = quantizer

    # Not cacheable (it arms a non-serializable wire quantizer, and caching
    # a no-compute stage would buy nothing), but its bits still key the
    # chain so downstream entries never alias across quantization settings.
    def fingerprint(self):
        return ("QT", self.quantizer.significant_bits)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        return StageEffect(
            state=state.evolve(wire_quantizer=self.quantizer),
            details={"quantizer_bits": float(self.quantizer.significant_bits)},
        )
