"""Quickstart: communication-efficient k-means in a dozen lines.

A single edge device holds a high-dimensional dataset and wants a nearby
edge server to compute the k-means centers.  Instead of shipping the raw
data, the device sends a small summary built by Algorithm 3 of the paper
(JL projection -> FSS coreset -> JL projection); the server solves weighted
k-means on the summary and lifts the centers back to the original space.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EvaluationContext,
    JLFSSJLPipeline,
    NoReductionPipeline,
    evaluate_report,
    make_mnist_like,
)


def main() -> None:
    # A synthetic image-like dataset standing in for the data collected at
    # the edge device (a stand-in for the paper's MNIST workload), already
    # normalized to [-1, 1] with zero mean as in Section 7.1.
    points, spec = make_mnist_like(n=3000, d=784, seed=0)
    n, d = points.shape
    k = 2  # the paper's setting
    print(f"dataset: {spec.name}, n={n}, d={d}")

    # Reference solution computed directly on the full data (what the paper
    # normalizes against).
    context = EvaluationContext.build(points, k=k, n_init=5, seed=1)
    print(f"reference k-means cost: {context.reference_cost:,.1f}")

    # Baseline: ship the raw data.
    raw_report = NoReductionPipeline(k=k, seed=2).run(points)
    raw_eval = evaluate_report(raw_report, context)

    # Algorithm 3: JL -> FSS coreset -> JL, then solve at the server.
    pipeline = JLFSSJLPipeline(
        k=k, seed=2, coreset_size=400, jl_dimension=d // 2, second_jl_dimension=64
    )
    report = pipeline.run(points)
    evaluation = evaluate_report(report, context)

    print("\n                         raw data     JL+FSS+JL (Alg. 3)")
    print(f"normalized k-means cost  {raw_eval.normalized_cost:10.3f}     {evaluation.normalized_cost:10.3f}")
    print(f"normalized communication {raw_eval.normalized_communication:10.3f}     {evaluation.normalized_communication:10.3f}")
    print(f"scalars transmitted      {raw_eval.communication_scalars:10d}     {evaluation.communication_scalars:10d}")
    print(f"device compute time (s)  {raw_eval.source_seconds:10.3f}     {evaluation.source_seconds:10.3f}")

    savings = 1.0 - evaluation.communication_scalars / raw_eval.communication_scalars
    print(f"\ncommunication saved vs raw data: {savings:.1%}")
    print(f"summary: {report.summary_cardinality} weighted points in "
          f"{report.summary_dimension} dimensions (+ weights and a constant shift)")


if __name__ == "__main__":
    main()
