"""Tests for the pipeline registry and the registered novel compositions."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.engine import DistributedStagePipeline, StagePipeline
from repro.core.pipelines import NoReductionPipeline
from repro.cli import build_parser, run
from repro.metrics import ExperimentRunner

SEED_ALGORITHMS = {
    "nr", "fss", "jl-fss", "fss-jl", "jl-fss-jl",
    "nr-distributed", "bklw", "jl-bklw",
}


class TestRegistry:
    def test_all_seed_algorithms_registered(self):
        assert SEED_ALGORITHMS <= set(registry.registered_names())

    def test_at_least_three_novel_compositions(self):
        novel = [spec for spec in registry.registered_specs() if spec.novel]
        assert len(novel) >= 3

    def test_multi_source_flags(self):
        assert registry.is_multi_source("bklw")
        assert not registry.is_multi_source("jl-fss")

    def test_create_builds_fresh_instances(self):
        first = registry.create_pipeline("nr", k=2, seed=0)
        second = registry.create_pipeline("nr", k=2, seed=0)
        assert isinstance(first, NoReductionPipeline)
        assert first is not second

    def test_create_filters_foreign_kwargs(self):
        # A merged experiment config passes both kinds' arguments; each
        # factory receives only what it accepts (strict=False opts into
        # lenient filtering without the deprecation warning).
        pipeline = registry.create_pipeline(
            "bklw", strict=False, k=2, seed=0, coreset_size=50,
            total_samples=40, second_jl_dimension=5,
        )
        assert pipeline.total_samples == 40

    def test_create_strict_rejects_unknown_kwargs(self):
        # The silent-kwarg-drop footgun: a typo like jl_dim=20 used to run
        # the wrong experiment without a warning.  strict=True names the
        # unknown keys and the accepted set for the kind.
        with pytest.raises(TypeError) as excinfo:
            registry.create_pipeline("jl-fss", k=2, jl_dim=20, strict=True)
        message = str(excinfo.value)
        assert "jl_dim" in message
        assert "jl_dimension" in message  # the accepted set is listed
        assert "single-source" in message

    def test_create_strict_by_default(self):
        # The PR-5 deprecation completed: unknown kwargs raise without an
        # explicit strict=True, and the error points at the opt-out.
        with pytest.raises(TypeError, match="jl_dim") as excinfo:
            registry.create_pipeline("jl-fss", k=2, jl_dim=20)
        assert "strict=False" in str(excinfo.value)

    def test_accepted_kwargs_and_kind(self):
        assert registry.factory_kind("fss") == "single-source"
        assert registry.factory_kind("bklw") == "multi-source"
        assert registry.factory_kind("stream-fss") == "streaming"
        assert "total_samples" in registry.accepted_kwargs("bklw")
        assert "total_samples" not in registry.accepted_kwargs("fss")
        assert "batch_size" in registry.accepted_kwargs("stream-fss")

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="jl-fss"):
            registry.get_spec("quantum-kmeans")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register_pipeline("nr", NoReductionPipeline)

    def test_registered_names_filter(self):
        multi = registry.registered_names(multi_source=True)
        single = registry.registered_names(multi_source=False)
        assert "bklw" in multi and "bklw" not in single
        assert "jl-fss" in single and "jl-fss" not in multi

    def test_make_stage_pipeline_dispatch(self):
        assert isinstance(registry.make_stage_pipeline([], k=2), StagePipeline)
        assert isinstance(
            registry.make_stage_pipeline([], k=2, multi_source=True),
            DistributedStagePipeline,
        )


class TestNovelCompositionsSmoke:
    """Every novel composition must be runnable through the CLI."""

    @pytest.mark.parametrize(
        "name", [spec.name for spec in registry.registered_specs() if spec.novel]
    )
    def test_novel_composition_runs_from_cli(self, name):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "200", "--d", "40",
            "--algorithm", name, "--coreset-size", "50", "--runs", "1",
            "--seed", "3",
        ])
        row = run(args)
        assert row["normalized_cost"] > 0
        if registry.is_streaming(name):
            # On a 200-point toy set the per-batch coresets are as large as
            # the shards, so streaming legitimately ships more than the raw
            # data; compression economics are asserted at realistic scale in
            # tests/test_streaming_quality.py and the benchmarks.
            assert row["normalized_communication"] > 0
        else:
            assert 0 < row["normalized_communication"] < 1

    def test_cli_accepts_every_registered_algorithm(self):
        parser = build_parser()
        for name in registry.registered_names():
            assert parser.parse_args(["--algorithm", name]).algorithm == name


class TestRunRegistered:
    def test_mixed_single_and_multi(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=1, seed=0,
                                  reference_n_init=2)
        result = runner.run_registered(
            ["jl-fss", "jl-uniform", "bklw"],
            num_sources=3,
            coreset_size=60,
            total_samples=60,
            pca_rank=6,
        )
        summary = result.summary()
        assert set(summary) == {"jl-fss", "jl-uniform", "bklw"}
        for row in summary.values():
            assert row.runs == 1
            assert np.isfinite(row.mean_normalized_cost)

    def test_multi_requires_num_sources(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=1, seed=0,
                                  reference_n_init=2)
        with pytest.raises(ValueError, match="num_sources"):
            runner.run_registered(["bklw"])

    def test_rejects_overrides_no_kind_accepts(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=1, seed=0,
                                  reference_n_init=2)
        with pytest.raises(TypeError, match="jl_dim"):
            runner.run_registered(["jl-fss"], jl_dim=20)

    def test_mixed_config_still_accepted_per_kind(self, high_dim_blobs):
        # coreset_size (single-only) + total_samples (multi-only) in one
        # merged config must not raise: each kind gets its own subset.
        points, _, _ = high_dim_blobs
        runner = ExperimentRunner(points, k=3, monte_carlo_runs=1, seed=0,
                                  reference_n_init=2)
        result = runner.run_registered(
            ["fss", "bklw"], num_sources=3, coreset_size=60,
            total_samples=60, pca_rank=6,
        )
        assert set(result.summary()) == {"fss", "bklw"}
