"""EdgeCluster — convenience wiring of sources, server, and network.

Builds the whole simulated deployment (one :class:`SimulatedNetwork`, ``m``
:class:`DataSourceNode` shards, one :class:`EdgeServer`) from a dataset and a
partition strategy.  The multi-source pipelines of :mod:`repro.core.pipelines`
operate on an ``EdgeCluster``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.distributed.conditions import ConditionLike, FaultPlan
from repro.distributed.network import SimulatedNetwork
from repro.distributed.node import DataSourceNode
from repro.distributed.partition import partition_dataset
from repro.distributed.server import EdgeServer
from repro.utils.random import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_matrix, check_positive_int


@dataclass
class EdgeCluster:
    """A simulated edge deployment: ``m`` data sources and one edge server.

    Use :meth:`from_dataset` to build one from a monolithic dataset, or pass
    pre-partitioned shards to :meth:`from_shards` (e.g. when emulating data
    collected independently at each device).
    """

    network: SimulatedNetwork
    sources: List[DataSourceNode]
    server: EdgeServer

    # --------------------------------------------------------- constructors
    @classmethod
    def from_shards(
        cls,
        shards: Sequence[np.ndarray],
        k: int,
        seed: SeedLike = None,
        server_n_init: int = 5,
        condition: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        network_seed: Optional[int] = None,
    ) -> "EdgeCluster":
        """Build a cluster from explicit per-source shards.

        ``condition`` / ``fault_plan`` / ``network_seed`` configure the
        simulated network's unreliable-edge behaviour; the defaults are the
        ideal loss-free wire.
        """
        if not shards:
            raise ValueError("at least one shard is required")
        rng = as_generator(seed)
        network = SimulatedNetwork(
            condition=condition, fault_plan=fault_plan, seed=network_seed
        )
        source_rngs = spawn_generators(rng, len(shards) + 1)
        sources = [
            DataSourceNode(f"source-{i}", shard, network, seed=source_rngs[i])
            for i, shard in enumerate(shards)
        ]
        server = EdgeServer(
            network, k=k, n_init=server_n_init, seed=source_rngs[-1]
        )
        return cls(network=network, sources=sources, server=server)

    @classmethod
    def from_dataset(
        cls,
        points: np.ndarray,
        num_sources: int,
        k: int,
        strategy: str = "random",
        seed: SeedLike = None,
        server_n_init: int = 5,
        condition: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        network_seed: Optional[int] = None,
    ) -> "EdgeCluster":
        """Partition ``points`` across ``num_sources`` and build the cluster."""
        points = check_matrix(points, "points")
        check_positive_int(num_sources, "num_sources")
        rng = as_generator(seed)
        indices = partition_dataset(points, num_sources, strategy=strategy, seed=rng)
        shards = [points[idx] for idx in indices]
        return cls.from_shards(
            shards, k=k, seed=rng, server_n_init=server_n_init,
            condition=condition, fault_plan=fault_plan, network_seed=network_seed,
        )

    # --------------------------------------------------------- participation
    @property
    def failed_source_ids(self) -> List[str]:
        """Sorted ids of sources excluded from the run so far."""
        return sorted(
            s.node_id for s in self.sources if self.network.is_failed(s.node_id)
        )

    # ------------------------------------------------------------ properties
    @property
    def num_sources(self) -> int:
        return len(self.sources)

    @property
    def total_cardinality(self) -> int:
        return sum(s.cardinality for s in self.sources)

    @property
    def dimension(self) -> int:
        return self.sources[0].dimension

    def union_points(self) -> np.ndarray:
        """The union ∪ P_i of the current local shards (evaluation only —
        algorithms never call this)."""
        return np.vstack([s.points for s in self.sources])

    def total_source_compute_seconds(self) -> float:
        """Total local computation time across all data sources."""
        return float(sum(s.compute_seconds for s in self.sources))

    def max_source_compute_seconds(self) -> float:
        """Maximum per-source computation time (the wall-clock bottleneck
        when sources compute in parallel)."""
        return float(max(s.compute_seconds for s in self.sources))
