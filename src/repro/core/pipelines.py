"""Single-source pipelines: NR, FSS, and Algorithms 1–3 as stage compositions.

Every pipeline plays the two roles of the paper's protocol — the *data
source* computes a summary (DR / CR / QT), the *edge server* solves weighted
k-means on it and lifts the centers back — but the protocol skeleton lives in
:class:`~repro.core.engine.StagePipeline`.  Each class here is a thin
factory: it keeps the classic constructor (summary-size overrides, optional
quantizer, master seed) and declares its algorithm as a composition of
stages:

========================  =======================================
``NoReductionPipeline``   (empty composition)
``FSSPipeline``           ``FSS``
``JLFSSPipeline``         ``JL ∘ FSS``            (Algorithm 1)
``FSSJLPipeline``         ``FSS ∘ JL``            (Algorithm 2)
``JLFSSJLPipeline``       ``JL ∘ FSS ∘ JL``       (Algorithm 3)
========================  =======================================

Further compositions (uniform-sampling baselines, PCA+SS, explicit QT
stages) are registered in :mod:`repro.core.registry`.

Parameter defaults follow the spirit of the paper's experiments
(Section 7.1): rather than the pessimistic theoretical constants, summary
sizes are tuned so that all algorithms land in a comparable empirical error
regime; every size can be overridden explicitly.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.core.engine import StagePipeline
from repro.quantization.rounding import RoundingQuantizer
from repro.stages.base import Stage
from repro.stages.cr import FSSStage
from repro.stages.dr import JLStage
from repro.stages.sizing import default_coreset_size, default_jl_dimension
from repro.utils.random import SeedLike

__all__ = [
    "default_coreset_size",
    "default_jl_dimension",
    "SingleSourcePipeline",
    "NoReductionPipeline",
    "FSSPipeline",
    "JLFSSPipeline",
    "FSSJLPipeline",
    "JLFSSJLPipeline",
]


class SingleSourcePipeline(StagePipeline, abc.ABC):
    """Base class for the paper's single-data-source pipelines.

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon, delta:
        Accuracy / confidence parameters used to derive default summary
        sizes.
    coreset_size, pca_rank, jl_dimension:
        Optional explicit overrides of the summary geometry.
    second_jl_dimension:
        Target dimension of the *second* JL projection (the one applied to
        the coreset) in Algorithm 3; ignored by the other pipelines.  When
        omitted it is derived from the coreset cardinality via Lemma 4.2.
    quantizer:
        Optional rounding quantizer applied to the transmitted summary
        points (the +QT variants of Section 6).
    server_n_init, server_max_iterations:
        Parameters of the server-side weighted k-means solver.
    seed:
        Master seed controlling every random choice in the pipeline.
    network, fault_plan, retries, network_seed:
        Simulated-network condition, scripted faults, retry-budget override,
        and loss-seed override — see :class:`~repro.core.engine.StagePipeline`.
    stage_cache:
        Optional content-addressed stage cache (see
        :class:`~repro.core.cache.StageCache`); results are bit-identical
        with and without it.
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        k: int,
        epsilon: float = 0.2,
        delta: float = 0.1,
        coreset_size: Optional[int] = None,
        pca_rank: Optional[int] = None,
        jl_dimension: Optional[int] = None,
        second_jl_dimension: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        server_max_iterations: int = 100,
        seed: SeedLike = None,
        network=None,
        fault_plan=None,
        retries: Optional[int] = None,
        network_seed: Optional[int] = None,
        stage_cache=None,
    ) -> None:
        super().__init__(
            k=k,
            epsilon=epsilon,
            delta=delta,
            quantizer=quantizer,
            server_n_init=server_n_init,
            server_max_iterations=server_max_iterations,
            seed=seed,
            network=network,
            fault_plan=fault_plan,
            retries=retries,
            network_seed=network_seed,
            stage_cache=stage_cache,
        )
        self.coreset_size = coreset_size
        self.pca_rank = pca_rank
        self.jl_dimension = jl_dimension
        self.second_jl_dimension = second_jl_dimension

    # -------------------------------------------------------------- assembly
    def _fss_stage(self) -> FSSStage:
        return FSSStage(size=self.coreset_size, pca_rank=self.pca_rank)

    @abc.abstractmethod
    def build_stages(self) -> List[Stage]:
        """Declare the algorithm's stage composition."""


class NoReductionPipeline(SingleSourcePipeline):
    """The NR baseline: transmit the raw dataset; the server solves k-means.

    Normalized communication cost is 1 by construction and the data source
    performs no computation (Section 7.2).
    """

    name = "NR"

    def build_stages(self) -> List[Stage]:
        return []


class FSSPipeline(SingleSourcePipeline):
    """The FSS baseline (Theorem 4.1): PCA + sensitivity sampling at the
    source, weighted k-means at the server.

    The coreset points live in the ``t``-dimensional principal subspace, so
    the source transmits each point's subspace coordinates *plus* the basis
    ``V`` (``d·t`` scalars) — the term that dominates FSS's communication and
    that the JL-based pipelines eliminate.
    """

    name = "FSS"

    def build_stages(self) -> List[Stage]:
        return [self._fss_stage()]


class JLFSSPipeline(SingleSourcePipeline):
    """Algorithm 1 (DR + CR): JL projection, then FSS, at the data source.

    The JL map is derived from a seed shared with the server (the engine's
    seed handshake), so describing it costs nothing; the coreset is built in
    the projected space and the server lifts the computed centers back
    through the Moore–Penrose inverse.
    """

    name = "JL+FSS (Alg1)"

    def build_stages(self) -> List[Stage]:
        return [JLStage(self.jl_dimension), self._fss_stage()]


class FSSJLPipeline(SingleSourcePipeline):
    """Algorithm 2 (CR + DR): FSS on the original data, then a JL projection
    of the (small) coreset.

    Communication becomes independent of ``n`` and ``d`` (only the
    dimension-reduced coreset travels), but the FSS step now runs on the
    full-dimensional data, giving the super-linear source complexity of
    Theorem 4.3.
    """

    name = "FSS+JL (Alg2)"

    def build_stages(self) -> List[Stage]:
        return [self._fss_stage(), JLStage(self.jl_dimension)]


class JLFSSJLPipeline(SingleSourcePipeline):
    """Algorithm 3 (DR + CR + DR): JL, then FSS, then JL again.

    Combines the near-linear source complexity of Algorithm 1 (the expensive
    coreset step runs in the already-projected space) with the constant
    communication of Algorithm 2 (only a dimension-reduced coreset travels),
    at a small extra approximation factor (Theorem 4.4).
    """

    name = "JL+FSS+JL (Alg3)"

    def build_stages(self) -> List[Stage]:
        return [
            JLStage(self.jl_dimension),
            self._fss_stage(),
            JLStage(self.second_jl_dimension),
        ]
