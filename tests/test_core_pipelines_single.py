"""Tests for the single-source pipelines (NR, FSS, Algorithms 1-3)."""

import numpy as np
import pytest

from repro.core.pipelines import (
    FSSJLPipeline,
    FSSPipeline,
    JLFSSJLPipeline,
    JLFSSPipeline,
    NoReductionPipeline,
    default_coreset_size,
    default_jl_dimension,
)
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans
from repro.quantization.rounding import RoundingQuantizer

PIPELINES = [NoReductionPipeline, FSSPipeline, JLFSSPipeline, FSSJLPipeline, JLFSSJLPipeline]
REDUCTION_PIPELINES = [FSSPipeline, JLFSSPipeline, FSSJLPipeline, JLFSSJLPipeline]


@pytest.fixture(scope="module")
def reference(request):
    return None


class TestDefaults:
    def test_default_coreset_size_bounds(self):
        assert default_coreset_size(10_000, 2) == 400
        assert default_coreset_size(50, 2) == 50

    def test_default_jl_dimension_capped(self):
        assert default_jl_dimension(10_000, 2, 30, 0.2, 0.1) == 30
        assert default_jl_dimension(10_000, 2, 10_000, 0.2, 0.1) < 10_000


class TestPipelineBasics:
    @pytest.mark.parametrize("pipeline_cls", PIPELINES)
    def test_centers_in_original_space(self, high_dim_points, pipeline_cls):
        pipeline = pipeline_cls(k=3, seed=0, coreset_size=120)
        report = pipeline.run(high_dim_points)
        assert report.centers.shape == (3, high_dim_points.shape[1])
        assert np.all(np.isfinite(report.centers))

    @pytest.mark.parametrize("pipeline_cls", PIPELINES)
    def test_accounting_fields_populated(self, high_dim_points, pipeline_cls):
        report = pipeline_cls(k=3, seed=1, coreset_size=100).run(high_dim_points)
        assert report.communication_scalars > 0
        assert report.communication_bits == report.communication_scalars * 64
        assert report.source_seconds >= 0.0
        assert report.server_seconds >= 0.0
        assert report.quantizer_bits is None

    @pytest.mark.parametrize("pipeline_cls", REDUCTION_PIPELINES)
    def test_solution_quality_close_to_reference(self, high_dim_blobs, pipeline_cls):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=5, seed=0)
        report = pipeline_cls(k=3, seed=2, coreset_size=200).run(points)
        cost = kmeans_cost(points, report.centers)
        # Well-separated blobs: every pipeline should land within 50 % of the
        # reference cost.
        assert cost <= reference.cost * 1.5

    @pytest.mark.parametrize("pipeline_cls", REDUCTION_PIPELINES)
    def test_communication_below_raw_data(self, high_dim_points, pipeline_cls):
        n, d = high_dim_points.shape
        report = pipeline_cls(k=3, seed=3, coreset_size=80).run(high_dim_points)
        assert report.communication_scalars < n * d
        assert report.normalized_communication(n, d) < 1.0

    def test_nr_transmits_exactly_the_dataset(self, high_dim_points):
        n, d = high_dim_points.shape
        report = NoReductionPipeline(k=2, seed=0).run(high_dim_points)
        assert report.communication_scalars == n * d
        assert report.normalized_communication(n, d) == pytest.approx(1.0)
        assert report.summary_cardinality == n


class TestSummaryGeometry:
    def test_fss_summary_dimension_is_pca_rank(self, high_dim_points):
        report = FSSPipeline(k=3, seed=4, coreset_size=90, pca_rank=7).run(high_dim_points)
        assert report.summary_dimension == 7
        assert report.summary_cardinality == 90

    def test_jlfss_respects_explicit_jl_dimension(self, high_dim_points):
        report = JLFSSPipeline(
            k=3, seed=5, coreset_size=90, pca_rank=7, jl_dimension=25
        ).run(high_dim_points)
        assert report.summary_dimension == 7  # coords live in the PCA subspace
        assert report.details == {} or True

    def test_fssjl_summary_dimension_is_jl_dimension(self, high_dim_points):
        report = FSSJLPipeline(
            k=3, seed=6, coreset_size=90, jl_dimension=20
        ).run(high_dim_points)
        assert report.summary_dimension == 20

    def test_jlfssjl_two_projections(self, high_dim_points):
        report = JLFSSJLPipeline(
            k=3, seed=7, coreset_size=90, jl_dimension=15
        ).run(high_dim_points)
        assert report.summary_dimension == 15


class TestCommunicationOrdering:
    def test_jlfss_cheaper_than_fss_for_high_dimension(self):
        """Theorem 4.2 vs 4.1: JL+FSS avoids shipping the d x t PCA basis, so
        for d >> log n it transmits less than FSS."""
        from repro.datasets import make_gaussian_mixture

        points, _, _ = make_gaussian_mixture(n=600, d=500, k=3, seed=0)
        fss = FSSPipeline(k=3, seed=1, coreset_size=100, pca_rank=10).run(points)
        jlfss = JLFSSPipeline(
            k=3, seed=1, coreset_size=100, pca_rank=10, jl_dimension=60
        ).run(points)
        assert jlfss.communication_scalars < fss.communication_scalars

    def test_quantizer_reduces_bits_not_scalars(self, high_dim_points):
        plain = JLFSSJLPipeline(k=3, seed=8, coreset_size=80).run(high_dim_points)
        quantized = JLFSSJLPipeline(
            k=3, seed=8, coreset_size=80, quantizer=RoundingQuantizer(8)
        ).run(high_dim_points)
        assert quantized.communication_scalars == plain.communication_scalars
        assert quantized.communication_bits < plain.communication_bits
        assert quantized.quantizer_bits == 8

    @pytest.mark.parametrize("pipeline_cls", REDUCTION_PIPELINES)
    def test_quantized_solution_still_reasonable(self, high_dim_blobs, pipeline_cls):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=3, seed=0)
        report = pipeline_cls(
            k=3, seed=9, coreset_size=150, quantizer=RoundingQuantizer(12)
        ).run(points)
        assert kmeans_cost(points, report.centers) <= reference.cost * 1.6


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            JLFSSPipeline(k=0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            FSSPipeline(k=2, epsilon=0.0)

    def test_rejects_nan_input(self):
        pipeline = FSSPipeline(k=2, seed=0)
        bad = np.full((10, 4), np.nan)
        with pytest.raises(ValueError):
            pipeline.run(bad)
