"""A1 — Ablations of the design choices called out in DESIGN.md.

Not a paper table/figure; these benches probe the knobs the paper fixes:

* JL ensemble: Gaussian vs Rademacher (Achlioptas) projections — both are
  valid sub-Gaussian ensembles (Theorem 3.1); quality should match.
* Coreset sampling: sensitivity sampling vs uniform sampling — the paper's
  pipelines assume sensitivity sampling; uniform is cheaper to compute but
  gives worse worst-case cost estimates.
* Coreset size sweep — communication grows linearly, cost improves then
  saturates.
* Data placement: random vs skewed vs by-cluster partitions for BKLW —
  disSS's cost-proportional sample allocation keeps quality stable.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from bench_helpers import NUM_SOURCES, print_series, print_table, run_once
from repro.core.distributed_pipelines import BKLWPipeline
from repro.core.pipelines import JLFSSPipeline
from repro.cr.sensitivity import SensitivitySampler
from repro.cr.uniform import UniformCoreset
from repro.dr.jl import JLProjection
from repro.kmeans.cost import kmeans_cost
from repro.metrics import EvaluationContext


@pytest.mark.benchmark(group="ablation")
def test_ablation_jl_ensemble(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    context = EvaluationContext.build(points, k=2, n_init=5, seed=0)
    d = points.shape[1]

    def _run():
        rows = {}
        for ensemble in ("gaussian", "rademacher"):
            projection = JLProjection(d, d // 2, seed=3, ensemble=ensemble)
            distortion = projection.distortion(points[:500])
            pipeline = JLFSSPipeline(k=2, seed=4, coreset_size=300, pca_rank=20, jl_dimension=d // 2)
            report = pipeline.run(points)
            rows[ensemble] = {
                "norm_distortion": float(distortion),
                "normalized_cost": kmeans_cost(points, report.centers) / context.reference_cost,
            }
        return rows

    rows = run_once(benchmark, _run)
    print_table("Ablation: JL ensemble (Gaussian vs Rademacher)", rows,
                ["norm_distortion", "normalized_cost"])
    costs = [r["normalized_cost"] for r in rows.values()]
    assert max(costs) <= min(costs) * 1.3 + 0.1


@pytest.mark.benchmark(group="ablation")
def test_ablation_sampling_scheme(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    context = EvaluationContext.build(points, k=2, n_init=5, seed=0)

    def _run():
        sizes = (50, 100, 200, 400)
        sens_err: List[float] = []
        unif_err: List[float] = []
        for size in sizes:
            sens = SensitivitySampler(k=2, size=size, seed=5).build(points)
            unif = UniformCoreset(size=size, seed=5)(points)
            sens_err.append(sens.empirical_distortion(points, context.reference_centers))
            unif_err.append(unif.empirical_distortion(points, context.reference_centers))
        return sizes, sens_err, unif_err

    sizes, sens_err, unif_err = run_once(benchmark, _run)
    print_series("Ablation: coreset cost estimation error vs size",
                 "size", sizes,
                 {"sensitivity sampling": sens_err, "uniform sampling": unif_err})
    # Larger coresets estimate the cost better (compare smallest vs largest).
    assert sens_err[-1] <= sens_err[0] + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_coreset_size_tradeoff(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    context = EvaluationContext.build(points, k=2, n_init=5, seed=0)
    n, d = points.shape

    def _run():
        sizes = (50, 150, 400)
        comm: List[float] = []
        cost: List[float] = []
        for size in sizes:
            pipeline = JLFSSPipeline(k=2, seed=6, coreset_size=size, pca_rank=20,
                                     jl_dimension=d // 2)
            report = pipeline.run(points)
            comm.append(report.normalized_communication(n, d))
            cost.append(kmeans_cost(points, report.centers) / context.reference_cost)
        return sizes, comm, cost

    sizes, comm, cost = run_once(benchmark, _run)
    print_series("Ablation: coreset size vs communication and cost",
                 "coreset size", sizes,
                 {"normalized communication": comm, "normalized cost": cost})
    # Communication grows with the coreset size; quality does not degrade.
    assert comm[0] < comm[-1]
    assert cost[-1] <= cost[0] * 1.3 + 0.1


@pytest.mark.benchmark(group="ablation")
def test_ablation_partition_strategy(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    context = EvaluationContext.build(points, k=2, n_init=5, seed=0)

    def _run():
        rows: Dict[str, Dict[str, float]] = {}
        for strategy in ("random", "skewed-size", "by-cluster"):
            pipeline = BKLWPipeline(k=2, seed=7, total_samples=300, pca_rank=20)
            report = pipeline.run_on_dataset(
                points, num_sources=NUM_SOURCES, strategy=strategy, partition_seed=8
            )
            rows[strategy] = {
                "normalized_cost": kmeans_cost(points, report.centers) / context.reference_cost,
                "comm_scalars": float(report.communication_scalars),
            }
        return rows

    rows = run_once(benchmark, _run)
    print_table("Ablation: BKLW under different data placements", rows,
                ["normalized_cost", "comm_scalars"])
    assert all(r["normalized_cost"] < 2.0 for r in rows.values())
