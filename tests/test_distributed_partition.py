"""Tests for repro.distributed.partition."""

import numpy as np
import pytest

from repro.distributed.partition import partition_dataset


class TestRandomPartition:
    def test_covers_all_points_exactly_once(self, blob_points):
        chunks = partition_dataset(blob_points, 7, strategy="random", seed=0)
        merged = np.sort(np.concatenate(chunks))
        assert np.array_equal(merged, np.arange(blob_points.shape[0]))

    def test_number_of_chunks(self, blob_points):
        assert len(partition_dataset(blob_points, 10, seed=1)) == 10

    def test_near_equal_sizes(self, blob_points):
        chunks = partition_dataset(blob_points, 8, seed=2)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_reproducible(self, blob_points):
        a = partition_dataset(blob_points, 5, seed=3)
        b = partition_dataset(blob_points, 5, seed=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestSkewedPartition:
    def test_sizes_sum_to_n(self, blob_points):
        chunks = partition_dataset(blob_points, 6, strategy="skewed-size", seed=0, skew=4.0)
        assert sum(len(c) for c in chunks) == blob_points.shape[0]

    def test_skew_produces_imbalance(self, blob_points):
        chunks = partition_dataset(blob_points, 5, strategy="skewed-size", seed=1, skew=8.0)
        sizes = sorted(len(c) for c in chunks)
        assert sizes[-1] >= 2 * sizes[0]

    def test_invalid_skew(self, blob_points):
        with pytest.raises(ValueError):
            partition_dataset(blob_points, 3, strategy="skewed-size", skew=0.5)


class TestByClusterPartition:
    def test_uses_labels_when_given(self, blobs):
        points, labels, _ = blobs
        chunks = partition_dataset(points, 4, strategy="by-cluster", labels=labels, seed=0)
        # With 4 label groups and 4 sources, most sources should be dominated
        # by one label.
        dominant_fractions = []
        for chunk in chunks:
            counts = np.bincount(labels[chunk], minlength=4)
            dominant_fractions.append(counts.max() / counts.sum())
        assert np.mean(dominant_fractions) > 0.6

    def test_without_labels_uses_first_coordinate(self, blob_points):
        chunks = partition_dataset(blob_points, 3, strategy="by-cluster", seed=0)
        firsts = [blob_points[c][:, 0] for c in chunks]
        assert firsts[0].max() <= firsts[-1].min() + 1e-9

    def test_label_length_mismatch(self, blob_points):
        with pytest.raises(ValueError):
            partition_dataset(blob_points, 3, strategy="by-cluster", labels=np.zeros(3))


class TestValidation:
    def test_unknown_strategy(self, blob_points):
        with pytest.raises(ValueError):
            partition_dataset(blob_points, 3, strategy="round-robin")

    def test_too_many_sources(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            partition_dataset(points, 4)
