"""Unit tests for the unreliable-network simulation layer.

Covers the condition/fault-plan data model, the loss/retry/simulated-time
semantics of ``SimulatedNetwork.send``, the guardrails on where loss
randomness may come from, and the jobs-parity regression: a lossy
distributed run must produce the identical report whether the per-source
compute sections run sequentially or on a thread pool.
"""

import math

import numpy as np
import pytest

from repro.core import registry
from repro.distributed.conditions import (
    NETWORK_PRESETS,
    DeliveryError,
    FaultPlan,
    LinkModel,
    NetworkCondition,
    resolve_condition,
)
from repro.distributed.network import SimulatedNetwork
from repro.utils.random import generator_for_name


class TestLinkModel:
    def test_ideal_default(self):
        link = LinkModel()
        assert link.is_ideal
        assert link.transmission_seconds(10**9) == 0.0

    def test_transmission_time(self):
        link = LinkModel(latency_seconds=0.5, bandwidth_bits_per_second=1000.0)
        assert link.transmission_seconds(2000) == pytest.approx(0.5 + 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss=1.0)
        with pytest.raises(ValueError):
            LinkModel(loss=-0.1)
        with pytest.raises(ValueError):
            LinkModel(latency_seconds=-1.0)
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bits_per_second=0.0)


class TestFaultPlan:
    def test_dropout_is_permanent(self):
        plan = FaultPlan(dropout={"source-1": 2})
        assert not plan.is_down("source-1", 1)
        assert plan.is_down("source-1", 2)
        assert plan.is_down("source-1", 99)
        assert plan.is_permanently_down("source-1", 2)

    def test_flaky_recovers(self):
        plan = FaultPlan(flaky={"source-0": (1, 3)})
        assert not plan.is_down("source-0", 0)
        assert plan.is_down("source-0", 1)
        assert plan.is_down("source-0", 2)
        assert not plan.is_down("source-0", 3)
        assert not plan.is_permanently_down("source-0", 2)

    def test_straggler_factor(self):
        plan = FaultPlan(stragglers={"source-2": 3.0})
        assert plan.delay_factor("source-2") == 3.0
        assert plan.delay_factor("source-0") == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(dropout={"source-0": -1})
        with pytest.raises(ValueError):
            FaultPlan(flaky={"source-0": (3, 3)})
        with pytest.raises(ValueError):
            FaultPlan(stragglers={"source-0": 0.5})


class TestNetworkCondition:
    def test_presets_resolve(self):
        for name in NETWORK_PRESETS:
            condition = resolve_condition(name)
            assert condition.name == name
        assert resolve_condition(None).is_ideal
        with pytest.raises(KeyError):
            resolve_condition("no-such-preset")

    def test_with_overrides(self):
        condition = resolve_condition("ideal").with_overrides(loss=0.3, retries=4)
        assert condition.default_link.loss == 0.3
        assert condition.retries == 4
        assert not condition.is_ideal

    def test_heterogeneity_is_deterministic_per_node(self):
        condition = resolve_condition("edge-wan")
        a1, a2 = condition.link_for("source-3"), condition.link_for("source-3")
        b = condition.link_for("source-4")
        assert a1 == a2
        assert a1 != b
        assert not math.isinf(a1.bandwidth_bits_per_second)

    def test_server_side_is_not_jittered(self):
        condition = resolve_condition("edge-wan")
        assert condition.link_for("server") == condition.default_link


class TestSendSemantics:
    def test_ideal_send_records_no_retries_and_no_time(self):
        net = SimulatedNetwork()
        net.send("source-0", "server", np.zeros(7), tag="x")
        assert net.uplink_scalars() == 7
        assert net.retransmissions() == 0
        assert net.lost_messages() == 0
        assert net.simulated_seconds() == 0.0

    def test_lost_attempts_are_metered(self):
        condition = NetworkCondition(
            name="t", default_link=LinkModel(loss=0.6), retries=50, seed=5
        )
        net = SimulatedNetwork(condition)
        net.send("source-0", "server", np.zeros(10), tag="x")
        # Every attempt (delivered or lost) spent 10 scalars on the wire.
        assert net.uplink_scalars() == 10 * len(net.log)
        assert net.log.delivered_scalars() == 10
        assert net.lost_messages() == len(net.log) - 1
        assert net.retransmissions() == len(net.log) - 1

    def test_budget_exhaustion_raises(self):
        condition = NetworkCondition(
            name="t", default_link=LinkModel(loss=0.999999), retries=2, seed=0
        )
        net = SimulatedNetwork(condition)
        with pytest.raises(DeliveryError):
            net.send("source-0", "server", np.zeros(4), tag="x")
        assert len(net.log) == 3  # all three attempts metered
        assert net.log.delivered_scalars() == 0

    def test_down_endpoint_transmits_nothing(self):
        net = SimulatedNetwork(fault_plan=FaultPlan(dropout={"source-1": 0}))
        with pytest.raises(DeliveryError):
            net.send("source-1", "server", np.zeros(4), tag="x")
        with pytest.raises(DeliveryError):
            net.send("server", "source-1", np.zeros(4), tag="x")
        assert len(net.log) == 0

    def test_flaky_window_follows_rounds(self):
        net = SimulatedNetwork(fault_plan=FaultPlan(flaky={"source-0": (1, 2)}))
        net.send("source-0", "server", 1.0, tag="x")
        net.advance_round()
        with pytest.raises(DeliveryError):
            net.send("source-0", "server", 1.0, tag="x")
        net.advance_round()
        net.send("source-0", "server", 1.0, tag="x")  # recovered

    def test_simulated_clock_and_stragglers(self):
        condition = NetworkCondition(
            name="t",
            default_link=LinkModel(latency_seconds=0.1,
                                   bandwidth_bits_per_second=6400.0),
        )
        net = SimulatedNetwork(
            condition, fault_plan=FaultPlan(stragglers={"source-1": 2.0})
        )
        net.send("source-0", "server", np.zeros(10), tag="x")  # 640 bits
        per_sender = net.log.simulated_seconds_by_sender()
        assert per_sender["source-0"] == pytest.approx(0.1 + 0.1)
        net.send("source-1", "server", np.zeros(10), tag="x")
        per_sender = net.log.simulated_seconds_by_sender()
        assert per_sender["source-1"] == pytest.approx(2.0 * 0.2)
        # Wall time: per-link serial, links in parallel -> the max.
        assert net.simulated_seconds() == pytest.approx(0.4)

    def test_quantized_bits_shrink_transmission_time(self):
        condition = NetworkCondition(
            name="t", default_link=LinkModel(bandwidth_bits_per_second=1000.0)
        )
        net = SimulatedNetwork(condition)
        net.send("source-0", "server", np.zeros(10), tag="full")
        full = net.simulated_seconds()
        net.reset()
        net.send("source-0", "server", np.zeros(10), tag="q", significant_bits=8)
        assert net.simulated_seconds() < full

    def test_reset_restores_loss_stream(self):
        condition = NetworkCondition(
            name="t", default_link=LinkModel(loss=0.5), retries=20, seed=11
        )
        net = SimulatedNetwork(condition)
        net.send("source-0", "server", np.zeros(3), tag="x")
        first = len(net.log)
        net.reset()
        net.send("source-0", "server", np.zeros(3), tag="x")
        assert len(net.log) == first


class TestSeededLossGuardrails:
    """d2_sampling-style guardrails: loss draws never touch global state."""

    def test_generator_for_name_rejects_generators(self):
        with pytest.raises(TypeError):
            generator_for_name(np.random.default_rng(0), "loss:source-0")

    def test_generator_for_name_is_stable(self):
        a = generator_for_name(7, "loss:source-0")
        b = generator_for_name(7, "loss:source-0")
        assert a.random() == b.random()
        assert generator_for_name(7, "loss:source-1").random() != \
            generator_for_name(7, "loss:source-0").random()

    def test_loss_draws_do_not_touch_global_numpy_state(self):
        condition = NetworkCondition(
            name="t", default_link=LinkModel(loss=0.4), retries=30, seed=3
        )
        np.random.seed(1234)
        before = np.random.get_state()[1].copy()
        net = SimulatedNetwork(condition)
        for i in range(10):
            net.send(f"source-{i % 3}", "server", np.zeros(5), tag="x")
        after = np.random.get_state()[1]
        assert np.array_equal(before, after)

    def test_loss_draws_do_not_consume_pipeline_master_rng(self, blob_points):
        # Identical algorithm randomness with and without loss: the centers
        # may differ only through *which* sources participated, so with a
        # retry budget deep enough that nobody drops, the ideal and lossy
        # runs of the same seed must produce identical centers.
        make = lambda network: registry.create_pipeline(
            "bklw", k=3, seed=123, total_samples=60, pca_rank=4,
            network=network, retries=64, network_seed=1,
        )
        ideal = make(None).run_on_dataset(blob_points, num_sources=3,
                                          partition_seed=7)
        lossy = make(
            NetworkCondition(name="t", default_link=LinkModel(loss=0.2), seed=1)
        ).run_on_dataset(blob_points, num_sources=3, partition_seed=7)
        assert lossy.retransmissions > 0
        assert np.array_equal(ideal.centers, lossy.centers)
        assert lossy.communication_scalars > ideal.communication_scalars


class TestJobsParityUnderLoss:
    """jobs=1 and jobs=4 must be indistinguishable, even on a lossy network."""

    CONDITION = NetworkCondition(
        name="t",
        default_link=LinkModel(loss=0.2, latency_seconds=0.01,
                               bandwidth_bits_per_second=10e6),
        retries=6,
    )

    def _signature(self, report):
        return (
            report.centers.tobytes(),
            report.communication_scalars,
            report.communication_bits,
            report.participating_sources,
            report.retransmissions,
            report.messages_lost,
            round(report.simulated_network_seconds, 12),
            tuple(sorted((report.tag_scalars or {}).items())),
        )

    @pytest.mark.parametrize("name", ["bklw", "jl-bklw", "nr-distributed"])
    def test_distributed_reports_identical(self, name, blob_points):
        signatures = []
        for jobs in (1, 4):
            pipeline = registry.create_pipeline(
                name, k=3, seed=123, total_samples=60, pca_rank=4,
                jl_dimension=8, jobs=jobs,
                network=self.CONDITION,
                fault_plan=FaultPlan(dropout={"source-1": 1}),
                network_seed=99,
            )
            report = pipeline.run_on_dataset(blob_points, num_sources=4,
                                             partition_seed=7)
            signatures.append(self._signature(report))
        assert signatures[0] == signatures[1]

    def test_streaming_reports_identical(self, blob_points):
        signatures = []
        for jobs in (1, 4):
            pipeline = registry.create_pipeline(
                "stream-fss", k=3, seed=123, coreset_size=40, pca_rank=4,
                batch_size=32, jobs=jobs,
                network=self.CONDITION,
                fault_plan=FaultPlan(dropout={"source-1": 1}),
                network_seed=99,
            )
            report = pipeline.run_on_dataset(blob_points, num_sources=4,
                                             partition_seed=7)
            signatures.append(self._signature(report))
        assert signatures[0] == signatures[1]
