"""The live daemon end to end, in process: an asyncio ``ServeDaemon`` on an
ephemeral port driven by the blocking ``ServeClient`` from the test thread.
Covers the protocol surface (register/fold/query/healthz/metrics/snapshot/
shutdown), the at-least-once ack semantics over a real socket, snapshot/
restore through the daemon wire format, and both CLI entry points."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import cli
from repro.distributed.network import SimulatedNetwork
from repro.serve.client import ServeClient, ServeError, ServeSource
from repro.serve.daemon import ServeDaemon, load_snapshot
from repro.stages.base import StageContext
from repro.stages.cr import UniformStage
from repro.streaming.source import StreamingSource
from repro.utils.random import as_generator


class DaemonHarness:
    """Run one ServeDaemon in a thread; tear it down on exit."""

    def __init__(self, **kwargs):
        kwargs.setdefault("k", 2)
        kwargs.setdefault("port", 0)
        self.daemon = ServeDaemon(**kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        import asyncio

        asyncio.run(self.daemon.run(ready=lambda host, port: self._ready.set()))

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "daemon never became ready"
        return self

    def __exit__(self, *exc_info):
        self.daemon.request_stop()
        self._thread.join(timeout=10)
        assert not self._thread.is_alive()

    @property
    def port(self) -> int:
        return self.daemon.bound_port

    def client(self, **kwargs) -> ServeClient:
        kwargs.setdefault("retry_deadline", 5.0)
        return ServeClient("127.0.0.1", self.port, **kwargs)


def make_source(source_id="source-0", seed=9) -> StreamingSource:
    return StreamingSource(
        source_id, [UniformStage(12)], UniformStage(12),
        StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(seed)),
        SimulatedNetwork(),
    )


def stream_batches(serve_source, count=4, data_seed=50):
    data = as_generator(data_seed)
    acks = []
    for index in range(count):
        acks.append(serve_source.ingest(data.random((40, 5)), index))
    return acks


class TestProtocolSurface:
    def test_register_fold_query_roundtrip(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            serve_source = ServeSource(make_source(), client)
            assert serve_source.register() == -1
            acks = stream_batches(serve_source)
            assert [a["result"] for a in acks] == ["applied"] * 4
            assert [a["watermark"] for a in acks] == [0, 1, 2, 3]
            answer = serve_source.query()
            assert answer["updates_folded"] == 4
            assert np.asarray(answer["centers"]).shape[0] == 2
            assert answer["lifted_centers"].shape == np.asarray(answer["centers"]).shape
            assert answer["cost"] >= 0.0

    def test_duplicate_delivery_acks_without_refolding(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            serve_source = ServeSource(make_source(), client)
            serve_source.register()
            data = as_generator(50)
            update = serve_source.source.ingest(data.random((40, 5)), 0)
            first = serve_source.deliver(update)
            again = serve_source.deliver(update)  # the lost-ack retry
            assert first["result"] == "applied"
            assert again["result"] == "duplicate"
            assert again["watermark"] == 0
            metrics = client.metrics()
            assert metrics["totals"]["folds"] == 1
            assert metrics["totals"]["duplicates"] == 1

    def test_gap_rejection_carries_replay_point(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            serve_source = ServeSource(make_source(), client)
            serve_source.register()
            data = as_generator(50)
            serve_source.ingest(data.random((40, 5)), 0)
            skipped = serve_source.source.ingest(data.random((40, 5)), 1)
            del skipped  # lost in flight, never delivered
            jumped = serve_source.source.ingest(data.random((40, 5)), 2)
            with pytest.raises(ServeError) as excinfo:
                serve_source.deliver(jumped)
            assert excinfo.value.code == "update-gap"
            assert excinfo.value.payload["expected"] == 1
            assert excinfo.value.payload["got"] == 2

    def test_unregistered_source_rejected(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            serve_source = ServeSource(make_source("rogue"), client)
            data = as_generator(50)
            update = serve_source.source.ingest(data.random((40, 5)), 0)
            with pytest.raises(ServeError) as excinfo:
                serve_source.deliver(update)
            assert excinfo.value.code == "unknown-source"

    def test_query_of_empty_tenant(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            serve_source = ServeSource(make_source(), client)
            serve_source.register()
            with pytest.raises(ServeError) as excinfo:
                serve_source.query()
            assert excinfo.value.code == "empty-summary"

    def test_healthz_metrics_and_bad_frames(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            health = client.healthz()
            assert health["status"] == "ok" and health["tenants"] == 0
            assert client.call({"op": "no-such-op"})["error"] == "bad-request"
            assert client.call({"op": "fold", "update": 5})["error"] == "bad-request"
            assert client.call({"op": "register"})["error"] == "bad-request"
            assert client.call({"op": "query", "tenant": ""})["error"] == "bad-request"
            # Raw garbage on the wire gets an error frame, not a hangup.
            client.connect()
            client._file.write(b"this is not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["error"] == "bad-request"
            metrics = client.metrics()
            assert metrics["connections"] >= 1

    def test_tenants_are_isolated(self):
        with DaemonHarness(seed=17) as harness, harness.client() as client:
            alpha = ServeSource(make_source(), client, tenant="alpha")
            beta = ServeSource(make_source(), client, tenant="beta")
            alpha.register()
            beta.register()
            stream_batches(alpha)
            with pytest.raises(ServeError) as excinfo:
                beta.query()  # alpha's folds must not leak into beta
            assert excinfo.value.code == "empty-summary"
            metrics = client.metrics()
            assert metrics["tenants"]["alpha"]["updates_folded"] == 4
            assert metrics["tenants"]["beta"]["updates_folded"] == 0


class TestDurability:
    def test_snapshot_restore_roundtrip_through_wire_format(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FROZEN_CLOCK", "1")
        snap = tmp_path / "serve.json"
        with DaemonHarness(seed=17, snapshot_path=snap) as harness:
            with harness.client() as client:
                serve_source = ServeSource(make_source(), client)
                serve_source.register()
                stream_batches(serve_source)
                serve_source.query()  # advances the rng; snapshot rewritten
                state = load_snapshot(snap)  # the crash point
                uncrashed = serve_source.query()  # the answer to reproduce
        assert snap.exists()

        # "Crash" after the first query and restart from that snapshot; a
        # duplicate replay of the whole stream must change nothing, and the
        # twin's next query must match the daemon that never died.
        from repro.streaming.server import FoldResult

        restarted = ServeDaemon(k=2, seed=17).restore_state(state)
        twin = restarted.tenant("default").server
        source = make_source()
        data = as_generator(50)
        for index in range(4):
            update = source.ingest(data.random((40, 5)), index)
            assert twin.fold(update) is FoldResult.DUPLICATE
        result, coreset, _ = twin.query()
        np.testing.assert_array_equal(
            np.asarray(uncrashed["centers"]), result.centers
        )
        assert uncrashed["cost"] == result.cost
        assert uncrashed["summary_cardinality"] == coreset.size

    def test_snapshot_op_and_stale_tmp_cleanup(self, tmp_path):
        snap = tmp_path / "nested" / "serve.json"
        with DaemonHarness(seed=3, snapshot_path=snap) as harness:
            with harness.client() as client:
                response = ServeClient._unwrap(client.call({"op": "snapshot"}))
                assert response["path"] == str(snap)
        state = load_snapshot(snap)
        assert state["version"] == 1

    def test_snapshot_op_without_path_is_rejected(self):
        with DaemonHarness(seed=3) as harness, harness.client() as client:
            assert client.call({"op": "snapshot"})["error"] == "bad-request"

    def test_restore_refuses_unknown_version(self):
        with pytest.raises(ValueError, match="version 99"):
            ServeDaemon(k=2).restore_state({"version": 99, "tenants": {}})

    def test_shutdown_op_stops_the_daemon_with_final_snapshot(self, tmp_path):
        snap = tmp_path / "serve.json"
        harness = DaemonHarness(seed=3, snapshot_path=snap)
        with harness:
            with harness.client() as client:
                assert client.shutdown()["stopping"] is True
            harness._thread.join(timeout=10)
            assert not harness._thread.is_alive()
        assert snap.exists()


class TestCLI:
    def test_serve_and_client_commands(self, tmp_path, capsys):
        snap = tmp_path / "serve.json"
        port_file = tmp_path / "port"
        argv = ["serve", "--port", "0", "--port-file", str(port_file),
                "--k", "2", "--seed", "17", "--snapshot", str(snap)]
        thread = threading.Thread(target=cli.main, args=(argv,), daemon=True)
        thread.start()
        for _ in range(200):
            if port_file.exists() and port_file.read_text().strip():
                break
            time.sleep(0.05)
        port = int(port_file.read_text())

        code = cli.main([
            "client", "--port", str(port), "--algorithm", "stream-fss",
            "--n", "512", "--d", "8", "--batch-size", "128", "--batches", "3",
            "--coreset-size", "60", "--query-every", "2", "--seed", "17",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered source-0" in out
        assert "final query: cost=" in out
        assert "3 applied" in out

        with ServeClient("127.0.0.1", port) as client:
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert snap.exists()

    def test_client_refuses_unreachable_daemon(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            cli.main(["client", "--port", "1", "--n", "64", "--d", "8",
                      "--batches", "1", "--retry-deadline", "0.2",
                      "--timeout", "0.2"])

    def test_serve_refuses_bad_snapshot(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99, \"tenants\": {}}")
        with pytest.raises(SystemExit, match="invalid snapshot"):
            cli.main(["serve", "--port", "0", "--restore", str(bad)])
        with pytest.raises(SystemExit, match="cannot read snapshot"):
            cli.main(["serve", "--port", "0",
                      "--restore", str(tmp_path / "missing.json")])
