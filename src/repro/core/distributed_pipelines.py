"""Multi-source pipelines: distributed NR, BKLW, and Algorithm 4 as stage
compositions.

The protocol skeleton — cluster construction, seed handshake, per-stage
execution through the metered network, server k-means, center lift-back, and
the parallel-complexity accounting (``source_seconds`` is the *maximum*
per-source computation time; the per-source total is in ``details``) — lives
in :class:`~repro.core.engine.DistributedStagePipeline`.  Each class here is
a thin factory keeping the classic constructor and declaring its algorithm as
a composition of distributed stages:

====================================  ===============================
``DistributedNoReductionPipeline``    ``RawGather``
``BKLWPipeline``                      ``BKLW``          (Theorem 5.3)
``JLBKLWPipeline``                    ``JL ∘ BKLW``     (Algorithm 4)
====================================  ===============================
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.core.engine import DistributedStagePipeline
from repro.quantization.rounding import RoundingQuantizer
from repro.stages.distributed import (
    BKLWStage,
    DistributedStage,
    RawGatherStage,
    SharedJLStage,
)
from repro.stages.sizing import default_distributed_samples
from repro.utils.random import SeedLike

__all__ = [
    "default_distributed_samples",
    "MultiSourcePipeline",
    "DistributedNoReductionPipeline",
    "BKLWPipeline",
    "JLBKLWPipeline",
]


class MultiSourcePipeline(DistributedStagePipeline, abc.ABC):
    """Base class for the paper's multi-data-source pipelines.

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon, delta:
        Accuracy / confidence parameters used for derived defaults.
    pca_rank, total_samples, jl_dimension:
        Optional summary-geometry overrides (disPCA rank ``t1 = t2``, disSS
        global sample budget, JL target dimension).
    quantizer:
        Optional rounding quantizer applied to outgoing summaries.
    server_n_init:
        Restarts of the server-side weighted k-means solver.
    jobs:
        Worker threads for the per-source compute sections (1 = sequential,
        0 = all cores, ``None`` = the ``REPRO_JOBS`` environment variable).
        Results are identical for every value.
    seed:
        Master seed.
    network, fault_plan, retries, network_seed:
        Simulated-network condition (preset name or
        :class:`~repro.distributed.conditions.NetworkCondition`), scripted
        node failures, retry-budget override, and loss-seed override — see
        :class:`~repro.core.engine.DistributedStagePipeline`.
    """

    name: str = "abstract"

    def __init__(
        self,
        k: int,
        epsilon: float = 1.0 / 3.0,
        delta: float = 0.1,
        pca_rank: Optional[int] = None,
        total_samples: Optional[int] = None,
        jl_dimension: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        seed: SeedLike = None,
        jobs: Optional[int] = None,
        network=None,
        fault_plan=None,
        retries: Optional[int] = None,
        network_seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            k=k,
            epsilon=epsilon,
            delta=delta,
            quantizer=quantizer,
            server_n_init=server_n_init,
            seed=seed,
            jobs=jobs,
            network=network,
            fault_plan=fault_plan,
            retries=retries,
            network_seed=network_seed,
        )
        self.pca_rank = pca_rank
        self.total_samples = total_samples
        self.jl_dimension = jl_dimension

    # -------------------------------------------------------------- assembly
    def _bklw_stage(self) -> BKLWStage:
        return BKLWStage(pca_rank=self.pca_rank, total_samples=self.total_samples)

    @abc.abstractmethod
    def build_stages(self) -> List[DistributedStage]:
        """Declare the algorithm's stage composition."""


class DistributedNoReductionPipeline(MultiSourcePipeline):
    """Distributed NR baseline: every source ships its raw shard."""

    name = "NR (distributed)"

    def build_stages(self) -> List[DistributedStage]:
        return [RawGatherStage()]


class BKLWPipeline(MultiSourcePipeline):
    """The BKLW baseline (Theorem 5.3): disPCA + disSS, then server k-means.

    The disPCA stage ships each source's local singular vectors (``O(k d/ε²)``
    scalars per source), which dominates the communication cost for
    high-dimensional data — exactly the term Algorithm 4 removes.
    """

    name = "BKLW"

    def build_stages(self) -> List[DistributedStage]:
        return [self._bklw_stage()]


class JLBKLWPipeline(MultiSourcePipeline):
    """Algorithm 4 (Theorem 5.4): every source applies a shared-seed JL
    projection to its shard (no communication), then BKLW runs in the
    projected space; the server lifts the centers back through the JL
    pseudo-inverse.
    """

    name = "JL+BKLW (Alg4)"

    def build_stages(self) -> List[DistributedStage]:
        return [SharedJLStage(self.jl_dimension), self._bklw_stage()]
