"""Resumable sweeps: the per-cell journal, crash injection at every sweep
faultpoint, byte-identical `--resume`, and failed-cell capture."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.api.journal import SweepJournal
from repro.api.store import spec_hash
from repro.utils import clock, faultpoints

SWEEP_TOML = """\
[base]
runs = 2
seed = 7

[base.pipeline]
algorithm = "jl-fss"
k = 2
coreset_size = 30
jl_dimension = 6

[base.data]
name = "mnist"
n = 120
d = 36

[axes]
quantize_bits = [6, 10]
net = ["ideal", "lossy"]
"""


@pytest.fixture(autouse=True)
def frozen_clock_and_clean_registry():
    """Byte-identity tests need the only nondeterministic record bytes —
    wall-clock timings — frozen to 0.0."""
    clock.freeze(True)
    faultpoints.disarm()
    yield
    clock.freeze(False)
    faultpoints.disarm()


def make_sweep() -> api.SweepSpec:
    base = api.ExperimentSpec(
        pipeline=api.PipelineConfig(algorithm="jl-fss", k=2,
                                    coreset_size=30, jl_dimension=6),
        data=api.DataSpec(name="mnist", n=120, d=36),
        runs=2,
        seed=7,
    )
    return api.SweepSpec(base=base, axes={
        "quantize_bits": [6, 10],
        "net": ["ideal", "lossy"],
    })


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uncrashed frozen-clock run: the byte-identity reference."""
    clock.freeze(True)
    try:
        store = api.ResultStore(tmp_path_factory.mktemp("baseline") / "s.jsonl")
        outcomes = api.run_sweep(make_sweep(), store=store)
    finally:
        clock.freeze(False)
    return outcomes, store.path.read_bytes()


class TestJournal:
    def test_clean_sweep_journals_start_done_per_cell(self, tmp_path):
        store = api.ResultStore(tmp_path / "s.jsonl")
        outcomes = api.run_sweep(make_sweep(), store=store)
        journal = SweepJournal.for_store(store.path)
        assert journal.path == store.path.with_name("s.jsonl.journal")
        entries = journal.entries()
        assert [e["event"] for e in entries].count("start") == 4
        assert len(journal.done_keys()) == 4
        assert not journal.in_flight()
        assert journal.failed_entries() == []
        done_keys = {(e[0], e[1]) for e in journal.done_keys()}
        assert done_keys == {
            (spec_hash(o.spec.to_dict()), o.cell_id) for o in outcomes
        }

    def test_done_entries_carry_cache_accounting(self, tmp_path):
        store = api.ResultStore(tmp_path / "s.jsonl")
        api.run_sweep(make_sweep(), store=store, cache=tmp_path / "cache")
        journal = SweepJournal.for_store(store.path)
        done = [e for e in journal.entries() if e["event"] == "done"]
        assert sum(e["cache"]["misses"] for e in done) > 0

    def test_crash_before_done_leaves_cell_in_flight(self, tmp_path):
        store = api.ResultStore(tmp_path / "s.jsonl")
        with faultpoints.armed("sweep.journal.done"):
            with pytest.raises(faultpoints.FaultInjected):
                api.run_sweep(make_sweep(), store=store)
        journal = SweepJournal.for_store(store.path)
        assert len(journal.in_flight()) == 1
        # The executed-but-unjournaled cell has no store record: it re-runs.
        resumed = api.run_sweep(make_sweep(), store=store, resume=True)
        assert len(resumed) == 4
        assert not journal.in_flight()

    def test_journal_tolerates_torn_tail(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.start("h", "cell", 7)
        with journal.path.open("a") as handle:
            handle.write('{"event": "done", "spec_')  # torn mid-write
        entries = journal.entries()
        assert len(entries) == 1 and entries[0]["event"] == "start"


class TestCrashResume:
    """Crash at every sweep faultpoint, resume, and demand the store come
    out byte-identical to the uncrashed baseline."""

    # (faultpoint, hit number, whether the sweep needs a stage cache)
    CRASHES = [
        ("store.append", 2, False),
        ("store.append.torn", 1, False),
        ("sweep.journal.start", 3, False),
        ("sweep.journal.done", 1, False),
        ("cache.store", 1, True),
        ("cache.store.tmp", 2, True),
    ]

    @pytest.mark.parametrize("name,at,needs_cache",
                             CRASHES, ids=[c[0] for c in CRASHES])
    def test_resume_is_byte_identical(self, tmp_path, baseline, name, at,
                                      needs_cache):
        _, base_bytes = baseline
        store = api.ResultStore(tmp_path / "s.jsonl")
        cache = (tmp_path / "cache") if needs_cache else None
        with faultpoints.armed(name, at=at):
            with pytest.raises(faultpoints.FaultInjected):
                api.run_sweep(make_sweep(), store=store, cache=cache)
        outcomes = api.run_sweep(make_sweep(), store=store, cache=cache,
                                 resume=True)
        assert len(outcomes) == 4
        assert store.path.read_bytes() == base_bytes

    def test_resume_restores_committed_cells_without_rerunning(
            self, tmp_path, baseline):
        _, base_bytes = baseline
        store = api.ResultStore(tmp_path / "s.jsonl")
        with faultpoints.armed("store.append", at=3):
            with pytest.raises(faultpoints.FaultInjected):
                api.run_sweep(make_sweep(), store=store)
        committed = len(store.load())
        assert committed == 2
        outcomes = api.run_sweep(make_sweep(), store=store, resume=True)
        restored = [o for o in outcomes if isinstance(o, api.RestoredOutcome)]
        assert len(restored) == committed
        assert all(o.restored for o in restored)
        assert store.path.read_bytes() == base_bytes

    def test_restored_outcomes_quack_like_executed_ones(self, baseline,
                                                        tmp_path):
        fresh, _ = baseline
        store = api.ResultStore(tmp_path / "s.jsonl")
        api.run_sweep(make_sweep(), store=store)
        before = store.path.read_bytes()
        resumed = api.run_sweep(make_sweep(), store=store, resume=True)
        assert all(isinstance(o, api.RestoredOutcome) for o in resumed)
        for executed, restored in zip(fresh, resumed):
            assert restored.cell_id == executed.cell_id
            assert restored.label == executed.label
            assert restored.run_seeds == executed.run_seeds
            assert restored.summary.mean_normalized_cost == \
                executed.summary.mean_normalized_cost
            assert restored.cache_stats == {}
        # Reporting works identically over restored outcomes...
        assert api.compare_outcomes(resumed).rows == \
            api.compare_outcomes(fresh).rows
        # ...and resuming a complete sweep leaves the store untouched.
        assert store.path.read_bytes() == before

    def test_resume_with_parallel_jobs(self, tmp_path, baseline):
        _, base_bytes = baseline
        store = api.ResultStore(tmp_path / "s.jsonl")
        with faultpoints.armed("store.append", at=2):
            with pytest.raises(faultpoints.FaultInjected):
                api.run_sweep(make_sweep(), store=store, jobs=2)
        outcomes = api.run_sweep(make_sweep(), store=store, jobs=2,
                                 resume=True)
        assert len(outcomes) == 4
        assert store.path.read_bytes() == base_bytes

    def test_resume_requires_a_store(self):
        with pytest.raises(ValueError, match="resume.*store"):
            api.run_sweep(make_sweep(), resume=True)

    def test_hard_kill_then_cli_resume(self, tmp_path, baseline):
        """A real os._exit mid-sweep (no unwinding, no cleanup), then
        `repro sweep --resume` in a fresh process: byte-identical store."""
        _, base_bytes = baseline
        spec = tmp_path / "sweep.toml"
        spec.write_text(SWEEP_TOML)
        store_path = tmp_path / "s.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_FROZEN_CLOCK"] = "1"
        argv = [sys.executable, "-m", "repro", "sweep", str(spec),
                "--store", str(store_path)]
        killed = subprocess.run(
            argv + ["--jobs", "1"],
            env={**env, "REPRO_FAULTPOINT": "store.append:exit:2"},
            cwd=Path(__file__).resolve().parents[1],
            capture_output=True, text=True,
        )
        assert killed.returncode == faultpoints.EXIT_CODE
        assert len(api.ResultStore(store_path).load()) == 1
        resumed = subprocess.run(
            argv + ["--resume"], env=env,
            cwd=Path(__file__).resolve().parents[1],
            capture_output=True, text=True,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed: 1/4 cell(s)" in resumed.stdout
        assert store_path.read_bytes() == base_bytes


class TestFailedCells:
    @pytest.fixture()
    def failing_cell(self, monkeypatch):
        """Patch the cell executor to blow up on one grid cell."""
        real = api.run_experiment

        def flaky(spec, **kwargs):
            if kwargs.get("cell_id") == "quantize_bits=10,net=ideal":
                raise RuntimeError("simulated cell bug")
            return real(spec, **kwargs)

        monkeypatch.setattr("repro.api.runner.run_experiment", flaky)
        return "quantize_bits=10,net=ideal"

    def test_zero_budget_reraises(self, tmp_path, failing_cell):
        with pytest.raises(RuntimeError, match="simulated cell bug"):
            api.run_sweep(make_sweep(), store=api.ResultStore(tmp_path / "s.jsonl"))

    def test_failure_captured_within_budget(self, tmp_path, failing_cell):
        store = api.ResultStore(tmp_path / "s.jsonl")
        outcomes = api.run_sweep(make_sweep(), store=store, max_failures=1)
        failed = [o for o in outcomes if isinstance(o, api.FailedCell)]
        assert len(failed) == 1 and len(outcomes) == 4
        assert failed[0].cell_id == failing_cell
        assert "simulated cell bug" in failed[0].error
        assert failed[0].summary is None and failed[0].evaluations == []
        # Failed cells are never persisted; the journal keeps the traceback.
        assert {r.cell_id for r in store.load()} == {
            o.cell_id for o in outcomes if not isinstance(o, api.FailedCell)
        }
        journal_failures = SweepJournal.for_store(store.path).failed_entries()
        assert len(journal_failures) == 1
        assert "simulated cell bug" in journal_failures[0]["error"]

    def test_failed_row_in_comparison_table(self, tmp_path, failing_cell):
        outcomes = api.run_sweep(make_sweep(), max_failures=1)
        table = str(api.compare_outcomes(outcomes))
        assert failing_cell in table           # the row keeps its grid slot
        assert "jl-fss [failed]" in table      # tagged in the algorithm column

    def test_resume_retries_failed_cells(self, tmp_path, failing_cell,
                                         monkeypatch):
        store = api.ResultStore(tmp_path / "s.jsonl")
        api.run_sweep(make_sweep(), store=store, max_failures=1)
        assert len(store.load()) == 3
        # The bug is fixed (patch removed): --resume re-runs only the
        # failed cell and completes the store.
        monkeypatch.undo()
        outcomes = api.run_sweep(make_sweep(), store=store, resume=True)
        assert not any(isinstance(o, api.FailedCell) for o in outcomes)
        assert sum(isinstance(o, api.RestoredOutcome) for o in outcomes) == 3
        records = store.load()
        assert len(records) == 4
        assert len({(r.spec_hash, r.cell_id) for r in records}) == 4

    def test_injected_faults_are_never_captured_as_failures(self, tmp_path):
        store = api.ResultStore(tmp_path / "s.jsonl")
        with faultpoints.armed("sweep.journal.start"):
            with pytest.raises(faultpoints.FaultInjected):
                api.run_sweep(make_sweep(), store=store, max_failures=10)
