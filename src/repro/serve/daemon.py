"""The live clustering daemon behind ``repro serve``.

An asyncio TCP server speaking the NDJSON protocol of
:mod:`repro.serve.protocol`.  Each *tenant* owns one
:class:`~repro.streaming.server.StreamingServer` guarded by an
:class:`asyncio.Lock`, so folds from many concurrent client connections
serialize per tenant while tenants proceed independently.  The daemon's
delivery contract is exactly the fold layer's: at-least-once uplinks are
safe because duplicate/stale updates ack as ``duplicate`` without touching
state, gaps are typed rejections the client replays from, and unregistered
sources are refused.

Durability: when a snapshot path is configured, the daemon persists its
complete state (every tenant's buckets, watermarks, and rng position)
atomically after registrations and after every ``snapshot_every``-th applied
fold, and always on graceful shutdown.  A daemon restarted with
``--restore`` therefore answers its next query bit-identically to one that
never died: acked folds are in the snapshot, unacked folds are replayed by
the clients and either apply once or ack as duplicates.

Scale note: this is a single-event-loop daemon whose snapshot write happens
inline in the fold path — the right shape for integration-testing the
protocol and for modest deployments; sharding tenants across processes is
the ROADMAP's next step.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.serve import protocol
from repro.streaming.server import (
    EmptySummaryError,
    FoldRejectedError,
    FoldResult,
    StreamingServer,
)
from repro.utils import faultpoints
from repro.utils.clock import perf_counter
from repro.utils.random import SeedLike, generator_for_name
from repro.utils.validation import check_positive_int

#: Snapshot file layout version, bumped on incompatible changes.
SNAPSHOT_VERSION = 1


@dataclass
class _Tenant:
    """One tenant's server, its fold serialization lock, and counters."""

    server: StreamingServer
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    folds: int = 0
    duplicates: int = 0
    rejections: int = 0
    queries: int = 0
    fold_seconds: float = 0.0
    query_seconds: float = 0.0
    last_fold_seconds: float = 0.0
    last_query_seconds: float = 0.0

    def metrics(self) -> Dict[str, Any]:
        return {
            "registered_sources": list(self.server.registered_sources),
            "watermarks": {
                source: self.server.watermark(source)
                for source in self.server.registered_sources
            },
            "live_buckets": self.server.live_bucket_count,
            "updates_folded": self.server.updates_folded,
            "folds": self.folds,
            "duplicates": self.duplicates,
            "rejections": self.rejections,
            "queries": self.queries,
            "fold_seconds": self.fold_seconds,
            "query_seconds": self.query_seconds,
            "last_fold_seconds": self.last_fold_seconds,
            "last_query_seconds": self.last_query_seconds,
        }


class ServeDaemon:
    """The ``repro serve`` process, minus the process.

    Parameters
    ----------
    k, n_init, max_iterations, seed:
        Per-tenant :class:`StreamingServer` configuration.  Each tenant's
        solver generator derives from ``(seed, tenant name)`` via
        :func:`~repro.utils.random.generator_for_name`, so tenant state is
        independent of tenant creation order.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it from
        :attr:`bound_port` after :meth:`run` signals readiness).
    snapshot_path:
        Where to persist daemon state; ``None`` disables durability.
    snapshot_every:
        Persist after every Nth applied fold (1 = every applied fold is
        durable before it is acked — the strongest guarantee and the
        default).  Registrations and graceful shutdown always persist.
    """

    def __init__(
        self,
        *,
        k: int,
        n_init: int = 5,
        max_iterations: int = 100,
        seed: SeedLike = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_path: Optional[str] = None,
        snapshot_every: int = 1,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.seed = seed
        self.host = str(host)
        self.port = int(port)
        self.snapshot_path = None if snapshot_path is None else Path(snapshot_path)
        self.snapshot_every = check_positive_int(snapshot_every, "snapshot_every")
        self.bound_port: Optional[int] = None
        self.snapshot_writes = 0
        self.connections = 0
        self._tenants: Dict[str, _Tenant] = {}
        self._applied_since_snapshot = 0
        self._started = perf_counter()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # --------------------------------------------------------------- state
    def tenant(self, name: str) -> _Tenant:
        """The named tenant, created on first touch."""
        name = str(name)
        state = self._tenants.get(name)
        if state is None:
            state = _Tenant(
                server=StreamingServer(
                    k=self.k,
                    n_init=self.n_init,
                    max_iterations=self.max_iterations,
                    seed=generator_for_name(self.seed, f"tenant::{name}"),
                )
            )
            self._tenants[name] = state
        return state

    def state(self) -> Dict[str, Any]:
        """JSON-able snapshot of every tenant's complete server state."""
        return {
            "version": SNAPSHOT_VERSION,
            "tenants": {
                name: self._tenants[name].server.snapshot()
                for name in sorted(self._tenants)
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> "ServeDaemon":
        """Rebuild every tenant from a :meth:`state` snapshot; returns self."""
        version = int(state.get("version", 0))
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {version} is not supported "
                f"(this daemon writes version {SNAPSHOT_VERSION})"
            )
        for name, snapshot in state.get("tenants", {}).items():
            self._tenants[str(name)] = _Tenant(
                server=StreamingServer.restore(snapshot)
            )
        return self

    def write_snapshot(self) -> Optional[Path]:
        """Atomically persist :meth:`state`; no-op without a snapshot path.

        Write-to-temp, flush+fsync, rename: a crash mid-write leaves the
        previous snapshot intact (plus at worst a stale temp file).
        """
        if self.snapshot_path is None:
            return None
        path = self.snapshot_path
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(self.state(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        faultpoints.reach("serve.snapshot")
        os.replace(tmp, path)
        self.snapshot_writes += 1
        self._applied_since_snapshot = 0
        return path

    # ------------------------------------------------------------ requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.dump_frame(protocol.error_response(
                        protocol.ERROR_BAD_REQUEST,
                        f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue
                try:
                    request = protocol.parse_frame(line)
                except protocol.ProtocolError as exc:
                    response, stop = protocol.encode_exception(exc), False
                else:
                    response, stop = await self._dispatch(request)
                writer.write(protocol.dump_frame(response))
                await writer.drain()
                if stop:
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-frame; per-fold acks make this safe
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Route one request; returns ``(response, stop_after_reply)``."""
        op = request.get("op")
        try:
            if op == "register":
                return await self._op_register(request), False
            if op == "fold":
                return await self._op_fold(request), False
            if op == "query":
                return await self._op_query(request), False
            if op == "healthz":
                return self._op_healthz(), False
            if op == "metrics":
                return self._op_metrics(), False
            if op == "snapshot":
                return self._op_snapshot(), False
            if op == "shutdown":
                return protocol.ok_response(stopping=True), True
            raise protocol.ProtocolError(
                f"unknown op {op!r}; expected register/fold/query/healthz/"
                "metrics/snapshot/shutdown"
            )
        except (protocol.ProtocolError, FoldRejectedError, EmptySummaryError) as exc:
            return protocol.encode_exception(exc), False

    @staticmethod
    def _tenant_name(request: Dict[str, Any]) -> str:
        name = request.get("tenant", "default")
        if not isinstance(name, str) or not name:
            raise protocol.ProtocolError("tenant must be a non-empty string")
        return name

    async def _op_register(self, request: Dict[str, Any]) -> Dict[str, Any]:
        source_id = request.get("source_id")
        if not isinstance(source_id, str) or not source_id:
            raise protocol.ProtocolError("register needs a source_id string")
        name = self._tenant_name(request)
        tenant = self.tenant(name)
        async with tenant.lock:
            watermark = tenant.server.register(source_id)
            # Registration is durable state: a restored daemon must keep
            # refusing unregistered sources and admitting registered ones.
            self.write_snapshot()
        return protocol.ok_response(
            tenant=name, source_id=source_id, watermark=watermark
        )

    async def _op_fold(self, request: Dict[str, Any]) -> Dict[str, Any]:
        update = protocol.decode_update(request.get("update"))
        name = self._tenant_name(request)
        tenant = self.tenant(name)
        async with tenant.lock:
            start = perf_counter()
            try:
                result = tenant.server.fold(update)
            except FoldRejectedError:
                tenant.rejections += 1
                raise
            if result is FoldResult.APPLIED:
                tenant.folds += 1
                self._applied_since_snapshot += 1
                if self._applied_since_snapshot >= self.snapshot_every:
                    self.write_snapshot()
                # The at-least-once trap: die here and the client retries an
                # update the snapshot already holds — the restored daemon
                # must ack it as a duplicate, not fold it twice.
                faultpoints.reach("serve.fold.ack")
            else:
                tenant.duplicates += 1
            tenant.last_fold_seconds = perf_counter() - start
            tenant.fold_seconds += tenant.last_fold_seconds
            watermark = tenant.server.watermark(update.source_id)
        return protocol.ok_response(result=result.value, watermark=watermark)

    async def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._tenant_name(request)
        tenant = self.tenant(name)
        async with tenant.lock:
            start = perf_counter()
            result, coreset, seconds = tenant.server.query()
            tenant.queries += 1
            tenant.last_query_seconds = perf_counter() - start
            tenant.query_seconds += tenant.last_query_seconds
            response = protocol.ok_response(
                tenant=name,
                centers=result.centers.tolist(),
                cost=float(result.cost),
                iterations=int(result.iterations),
                converged=bool(result.converged),
                summary_cardinality=coreset.size,
                summary_dimension=coreset.dimension,
                live_buckets=tenant.server.live_bucket_count,
                updates_folded=tenant.server.updates_folded,
                server_seconds=seconds,
            )
            # Queries advance the per-tenant solver rng: persist so a
            # restored daemon continues the same seed stream.
            self.write_snapshot()
        return response

    def _op_healthz(self) -> Dict[str, Any]:
        return protocol.ok_response(
            status="ok",
            protocol_version=protocol.PROTOCOL_VERSION,
            uptime_seconds=perf_counter() - self._started,
            tenants=len(self._tenants),
            pid=os.getpid(),
        )

    def _op_metrics(self) -> Dict[str, Any]:
        tenants = {
            name: self._tenants[name].metrics() for name in sorted(self._tenants)
        }
        return protocol.ok_response(
            uptime_seconds=perf_counter() - self._started,
            connections=self.connections,
            snapshot_writes=self.snapshot_writes,
            totals={
                "folds": sum(t["folds"] for t in tenants.values()),
                "duplicates": sum(t["duplicates"] for t in tenants.values()),
                "rejections": sum(t["rejections"] for t in tenants.values()),
                "queries": sum(t["queries"] for t in tenants.values()),
                "live_buckets": sum(t["live_buckets"] for t in tenants.values()),
            },
            tenants=tenants,
        )

    def _op_snapshot(self) -> Dict[str, Any]:
        path = self.write_snapshot()
        if path is None:
            raise protocol.ProtocolError(
                "no snapshot path configured (start the daemon with --snapshot)"
            )
        return protocol.ok_response(path=str(path), tenants=len(self._tenants))

    # ------------------------------------------------------------ lifecycle
    async def run(
        self,
        *,
        ready: Optional[Callable[[str, int], None]] = None,
        install_signal_handlers: bool = False,
    ) -> None:
        """Serve until :meth:`request_stop` (or SIGTERM/SIGINT when signal
        handlers are installed), then persist a final snapshot."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        installed = []
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    continue  # platforms without loop signal support
                installed.append(sig)
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self.bound_port = int(server.sockets[0].getsockname()[1])
        try:
            if ready is not None:
                ready(self.host, self.bound_port)
            async with server:
                await self._stop.wait()
        finally:
            for sig in installed:
                self._loop.remove_signal_handler(sig)
            # Graceful shutdown always leaves a restorable snapshot behind.
            self.write_snapshot()

    def request_stop(self) -> None:
        """Stop :meth:`run` from any thread (idempotent, safe after exit)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # the loop already shut down: nothing left to stop


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a daemon snapshot file written by :meth:`ServeDaemon.write_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = ["SNAPSHOT_VERSION", "ServeDaemon", "load_snapshot"]
