"""Single-source pipelines: NR, FSS, and Algorithms 1–3.

Every pipeline plays the two roles of the paper's protocol:

* the *data source* computes a summary (DR / CR / QT) — timed as the
  paper's complexity metric and transmitted through a
  :class:`~repro.distributed.network.SimulatedNetwork` so each scalar and
  bit is metered;
* the *edge server* solves weighted k-means on the received summary and
  lifts the centers back to the original space through the (pseudo-)inverse
  of whatever DR maps were applied.

Parameter defaults follow the spirit of the paper's experiments
(Section 7.1): rather than the pessimistic theoretical constants, summary
sizes are tuned so that all algorithms land in a comparable empirical error
regime; every size can be overridden explicitly.
"""

from __future__ import annotations

import abc
import math
import time
from typing import Optional

import numpy as np

from repro.core.report import PipelineReport
from repro.cr.coreset import Coreset
from repro.cr.fss import FSSCoreset
from repro.distributed.network import SimulatedNetwork
from repro.dr.jl import JLProjection, jl_target_dimension
from repro.kmeans.lloyd import WeightedKMeans
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.random import SeedLike, as_generator, derive_seed
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive_int,
)

_SOURCE = "source-0"


def default_coreset_size(n: int, k: int) -> int:
    """Practical default coreset cardinality used when none is given.

    The theoretical ``Õ(k³/ε⁴)`` constants exceed laptop-scale dataset sizes,
    so — as in the paper's experiments, which tune sizes for comparable
    empirical error — the default is a size that is large enough for stable
    k-means estimates yet a small fraction of ``n``.
    """
    return int(min(n, max(100, 200 * k)))


def default_jl_dimension(n: int, k: int, d: int, epsilon: float, delta: float) -> int:
    """Practical default JL target dimension (never exceeding ``d``).

    Uses the Lemma 4.1 form ``O(ε⁻² log(nk/δ))`` with constant 1; the
    theoretical constant 8 routinely exceeds the ambient dimension at the
    paper's scale.
    """
    return jl_target_dimension(
        n, k, epsilon, delta, constant=1.0, max_dimension=d
    )


class SingleSourcePipeline(abc.ABC):
    """Base class for single-data-source pipelines.

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon, delta:
        Accuracy / confidence parameters used to derive default summary
        sizes.
    coreset_size, pca_rank, jl_dimension:
        Optional explicit overrides of the summary geometry.
    second_jl_dimension:
        Target dimension of the *second* JL projection (the one applied to
        the coreset) in Algorithm 3; ignored by the other pipelines.  When
        omitted it is derived from the coreset cardinality via Lemma 4.2.
    quantizer:
        Optional rounding quantizer applied to the transmitted coreset
        points (the +QT variants of Section 6).
    server_n_init, server_max_iterations:
        Parameters of the server-side weighted k-means solver.
    seed:
        Master seed controlling every random choice in the pipeline.
    """

    #: Human-readable algorithm name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        k: int,
        epsilon: float = 0.2,
        delta: float = 0.1,
        coreset_size: Optional[int] = None,
        pca_rank: Optional[int] = None,
        jl_dimension: Optional[int] = None,
        second_jl_dimension: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        server_max_iterations: int = 100,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.delta = check_fraction(delta, "delta")
        self.coreset_size = coreset_size
        self.pca_rank = pca_rank
        self.jl_dimension = jl_dimension
        self.second_jl_dimension = second_jl_dimension
        self.quantizer = quantizer
        self.server_n_init = check_positive_int(server_n_init, "server_n_init")
        self.server_max_iterations = check_positive_int(
            server_max_iterations, "server_max_iterations"
        )
        self._rng = as_generator(seed)

    # -------------------------------------------------------------- helpers
    def _resolved_coreset_size(self, n: int) -> int:
        if self.coreset_size is not None:
            return min(check_positive_int(self.coreset_size, "coreset_size"), n)
        return default_coreset_size(n, self.k)

    def _resolved_pca_rank(self, n: int, d: int) -> int:
        if self.pca_rank is not None:
            return min(check_positive_int(self.pca_rank, "pca_rank"), n, d)
        # Practical default: enough directions to capture k clusters with
        # slack, but far below the ambient dimension.
        return max(self.k + 2, min(d, n, 5 * self.k))

    def _resolved_jl_dimension(self, n: int, d: int) -> int:
        if self.jl_dimension is not None:
            return min(check_positive_int(self.jl_dimension, "jl_dimension"), d)
        return default_jl_dimension(n, self.k, d, self.epsilon, self.delta)

    def _fss(self, n: int, d: int, seed: SeedLike) -> FSSCoreset:
        return FSSCoreset(
            k=self.k,
            epsilon=self.epsilon,
            delta=self.delta,
            size=self._resolved_coreset_size(n),
            pca_rank=self._resolved_pca_rank(n, d),
            seed=seed,
        )

    def _server_solver(self, seed: SeedLike) -> WeightedKMeans:
        return WeightedKMeans(
            k=self.k,
            n_init=self.server_n_init,
            max_iterations=self.server_max_iterations,
            seed=seed,
        )

    def _quantize_for_transmission(self, points: np.ndarray) -> tuple[np.ndarray, Optional[int]]:
        """Apply the quantizer (if any) and return (payload, significant_bits)."""
        if self.quantizer is None:
            return points, None
        return self.quantizer.quantize(points), self.quantizer.significant_bits

    @property
    def quantizer_bits(self) -> Optional[int]:
        return None if self.quantizer is None else self.quantizer.significant_bits

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def run(self, points: np.ndarray) -> PipelineReport:
        """Execute the pipeline on a dataset held by a single data source."""


class NoReductionPipeline(SingleSourcePipeline):
    """The NR baseline: transmit the raw dataset; the server solves k-means.

    Normalized communication cost is 1 by construction and the data source
    performs no computation (Section 7.2).
    """

    name = "NR"

    def run(self, points: np.ndarray) -> PipelineReport:
        points = check_matrix(points, "points")
        n, d = points.shape
        network = SimulatedNetwork()

        source_start = time.perf_counter()
        payload, bits = self._quantize_for_transmission(points)
        source_seconds = time.perf_counter() - source_start
        network.send(_SOURCE, "server", payload, tag="raw-data", significant_bits=bits)

        server_start = time.perf_counter()
        solver = self._server_solver(derive_seed(self._rng))
        result = solver.fit(payload)
        server_seconds = time.perf_counter() - server_start

        return PipelineReport(
            algorithm=self.name,
            centers=result.centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=n,
            summary_dimension=d,
            quantizer_bits=self.quantizer_bits,
        )


class FSSPipeline(SingleSourcePipeline):
    """The FSS baseline (Theorem 4.1): PCA + sensitivity sampling at the
    source, weighted k-means at the server.

    The coreset points live in the ``t``-dimensional principal subspace, so
    the source transmits each point's subspace coordinates *plus* the basis
    ``V`` (``d·t`` scalars) — the term that dominates FSS's communication and
    that the JL-based pipelines eliminate.
    """

    name = "FSS"

    def run(self, points: np.ndarray) -> PipelineReport:
        points = check_matrix(points, "points")
        n, d = points.shape
        network = SimulatedNetwork()

        # ---------------------------------------------------------- source
        source_start = time.perf_counter()
        fss = self._fss(n, d, derive_seed(self._rng))
        built = fss.build(points)
        coreset = built.coreset
        basis = built.pca.basis                       # (d, t)
        coords = coreset.points @ basis               # (|S|, t)
        payload_coords, bits = self._quantize_for_transmission(coords)
        source_seconds = time.perf_counter() - source_start

        network.send(_SOURCE, "server", payload_coords, tag="coreset-coords",
                     significant_bits=bits)
        network.send(_SOURCE, "server", basis, tag="pca-basis")
        network.send(_SOURCE, "server", coreset.weights, tag="coreset-weights")
        network.send(_SOURCE, "server", float(coreset.shift), tag="coreset-shift")

        # ---------------------------------------------------------- server
        server_start = time.perf_counter()
        reconstructed = payload_coords @ basis.T
        solver = self._server_solver(derive_seed(self._rng))
        result = solver.fit(reconstructed, coreset.weights)
        server_seconds = time.perf_counter() - server_start

        return PipelineReport(
            algorithm=self.name,
            centers=result.centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=coreset.size,
            summary_dimension=basis.shape[1],
            quantizer_bits=self.quantizer_bits,
        )


class JLFSSPipeline(SingleSourcePipeline):
    """Algorithm 1 (DR + CR): JL projection, then FSS, at the data source.

    The JL map is derived from a seed shared with the server, so describing
    it costs nothing; the coreset is built in the projected space and the
    server lifts the computed centers back through the Moore–Penrose inverse.
    """

    name = "JL+FSS (Alg1)"

    def run(self, points: np.ndarray) -> PipelineReport:
        points = check_matrix(points, "points")
        n, d = points.shape
        network = SimulatedNetwork()
        jl_dim = self._resolved_jl_dimension(n, d)
        # The projection seed is pre-shared: both end points can construct it.
        jl_seed = derive_seed(self._rng)

        # ---------------------------------------------------------- source
        source_start = time.perf_counter()
        projection = JLProjection(d, jl_dim, seed=jl_seed)
        projected = projection.transform(points)
        fss = self._fss(n, jl_dim, derive_seed(self._rng))
        built = fss.build(projected)
        coreset = built.coreset
        basis = built.pca.basis                     # (d', t)
        coords = coreset.points @ basis             # (|S|, t)
        payload_coords, bits = self._quantize_for_transmission(coords)
        source_seconds = time.perf_counter() - source_start

        network.send(_SOURCE, "server", payload_coords, tag="coreset-coords",
                     significant_bits=bits)
        network.send(_SOURCE, "server", basis, tag="pca-basis")
        network.send(_SOURCE, "server", coreset.weights, tag="coreset-weights")
        network.send(_SOURCE, "server", float(coreset.shift), tag="coreset-shift")

        # ---------------------------------------------------------- server
        server_start = time.perf_counter()
        server_projection = JLProjection(d, jl_dim, seed=jl_seed)
        reconstructed = payload_coords @ basis.T     # points in the d'-space
        solver = self._server_solver(derive_seed(self._rng))
        result = solver.fit(reconstructed, coreset.weights)
        centers = server_projection.inverse_transform(result.centers)
        server_seconds = time.perf_counter() - server_start

        return PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=coreset.size,
            summary_dimension=basis.shape[1],
            quantizer_bits=self.quantizer_bits,
        )


class FSSJLPipeline(SingleSourcePipeline):
    """Algorithm 2 (CR + DR): FSS on the original data, then a JL projection
    of the (small) coreset.

    Communication becomes independent of ``n`` and ``d`` (only the
    dimension-reduced coreset travels), but the FSS step now runs on the
    full-dimensional data, giving the super-linear source complexity of
    Theorem 4.3.
    """

    name = "FSS+JL (Alg2)"

    def run(self, points: np.ndarray) -> PipelineReport:
        points = check_matrix(points, "points")
        n, d = points.shape
        network = SimulatedNetwork()
        jl_seed = derive_seed(self._rng)

        # ---------------------------------------------------------- source
        source_start = time.perf_counter()
        fss = self._fss(n, d, derive_seed(self._rng))
        built = fss.build(points)
        coreset = built.coreset
        jl_dim = self.jl_dimension or default_jl_dimension(
            max(coreset.size, 2), self.k, d, self.epsilon, self.delta
        )
        jl_dim = min(jl_dim, d)
        projection = JLProjection(d, jl_dim, seed=jl_seed)
        projected_coreset = coreset.transform(projection)
        payload_points, bits = self._quantize_for_transmission(projected_coreset.points)
        source_seconds = time.perf_counter() - source_start

        network.send(_SOURCE, "server", payload_points, tag="coreset-points",
                     significant_bits=bits)
        network.send(_SOURCE, "server", coreset.weights, tag="coreset-weights")
        network.send(_SOURCE, "server", float(coreset.shift), tag="coreset-shift")

        # ---------------------------------------------------------- server
        server_start = time.perf_counter()
        server_projection = JLProjection(d, jl_dim, seed=jl_seed)
        solver = self._server_solver(derive_seed(self._rng))
        result = solver.fit(payload_points, coreset.weights)
        centers = server_projection.inverse_transform(result.centers)
        server_seconds = time.perf_counter() - server_start

        return PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=coreset.size,
            summary_dimension=jl_dim,
            quantizer_bits=self.quantizer_bits,
        )


class JLFSSJLPipeline(SingleSourcePipeline):
    """Algorithm 3 (DR + CR + DR): JL, then FSS, then JL again.

    Combines the near-linear source complexity of Algorithm 1 (the expensive
    coreset step runs in the already-projected space) with the constant
    communication of Algorithm 2 (only a dimension-reduced coreset travels),
    at a small extra approximation factor (Theorem 4.4).
    """

    name = "JL+FSS+JL (Alg3)"

    def run(self, points: np.ndarray) -> PipelineReport:
        points = check_matrix(points, "points")
        n, d = points.shape
        network = SimulatedNetwork()
        first_seed = derive_seed(self._rng)
        second_seed = derive_seed(self._rng)

        # ---------------------------------------------------------- source
        source_start = time.perf_counter()
        first_dim = self._resolved_jl_dimension(n, d)
        first = JLProjection(d, first_dim, seed=first_seed)
        projected = first.transform(points)

        fss = self._fss(n, first_dim, derive_seed(self._rng))
        built = fss.build(projected)
        coreset = built.coreset

        second_dim = default_jl_dimension(
            max(coreset.size, 2), self.k, first_dim, self.epsilon, self.delta
        )
        if self.second_jl_dimension is not None:
            second_dim = min(
                check_positive_int(self.second_jl_dimension, "second_jl_dimension"),
                first_dim,
            )
        second = JLProjection(first_dim, second_dim, seed=second_seed)
        reduced_coreset = coreset.transform(second)
        payload_points, bits = self._quantize_for_transmission(reduced_coreset.points)
        source_seconds = time.perf_counter() - source_start

        network.send(_SOURCE, "server", payload_points, tag="coreset-points",
                     significant_bits=bits)
        network.send(_SOURCE, "server", coreset.weights, tag="coreset-weights")
        network.send(_SOURCE, "server", float(coreset.shift), tag="coreset-shift")

        # ---------------------------------------------------------- server
        server_start = time.perf_counter()
        server_first = JLProjection(d, first_dim, seed=first_seed)
        server_second = JLProjection(first_dim, second_dim, seed=second_seed)
        solver = self._server_solver(derive_seed(self._rng))
        result = solver.fit(payload_points, coreset.weights)
        centers = server_first.lift_through(server_second, result.centers)
        server_seconds = time.perf_counter() - server_start

        return PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=coreset.size,
            summary_dimension=second_dim,
            quantizer_bits=self.quantizer_bits,
        )
