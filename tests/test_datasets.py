"""Tests for repro.datasets — synthetic generators and normalization."""

import numpy as np
import pytest

from repro.datasets.loaders import load_benchmark_dataset, normalize_dataset
from repro.datasets.synthetic import (
    DatasetSpec,
    make_gaussian_mixture,
    make_mnist_like,
    make_neurips_like,
)
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans


class TestNormalization:
    def test_zero_mean(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(5.0, 10.0, size=(100, 8))
        normalized = normalize_dataset(x)
        assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-10)

    def test_range_within_unit_box(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-100.0, 100.0, size=(50, 5))
        normalized = normalize_dataset(x)
        assert normalized.min() >= -1.0 - 1e-12
        assert normalized.max() <= 1.0 + 1e-12

    def test_constant_dataset(self):
        x = np.full((10, 3), 7.0)
        normalized = normalize_dataset(x)
        assert np.allclose(normalized, 0.0)

    def test_does_not_mutate_input(self):
        x = np.ones((5, 2))
        _ = normalize_dataset(x)
        assert np.allclose(x, 1.0)


class TestGaussianMixture:
    def test_shapes(self):
        points, labels, centers = make_gaussian_mixture(200, 10, 4, seed=0)
        assert points.shape == (200, 10)
        assert labels.shape == (200,)
        assert centers.shape == (4, 10)

    def test_labels_in_range(self):
        _, labels, _ = make_gaussian_mixture(100, 5, 3, seed=1)
        assert labels.min() >= 0 and labels.max() < 3

    def test_separation_controls_cluster_structure(self):
        points, labels, centers = make_gaussian_mixture(
            500, 10, 4, separation=20.0, cluster_std=0.5, seed=2
        )
        planted_cost = kmeans_cost(points, centers)
        single = kmeans_cost(points, points.mean(axis=0, keepdims=True))
        assert planted_cost < 0.05 * single

    def test_custom_weights(self):
        _, labels, _ = make_gaussian_mixture(
            1000, 3, 2, weights=np.array([0.9, 0.1]), seed=3
        )
        counts = np.bincount(labels, minlength=2)
        assert counts[0] > counts[1]

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            make_gaussian_mixture(10, 2, 2, weights=np.array([1.0]), seed=0)
        with pytest.raises(ValueError):
            make_gaussian_mixture(10, 2, 2, weights=np.array([-1.0, 2.0]), seed=0)

    def test_reproducible(self):
        a, _, _ = make_gaussian_mixture(50, 4, 2, seed=9)
        b, _, _ = make_gaussian_mixture(50, 4, 2, seed=9)
        assert np.array_equal(a, b)


class TestMnistLike:
    def test_shape_and_spec(self):
        points, spec = make_mnist_like(n=300, d=196, n_prototypes=5, seed=0)
        assert points.shape == (300, 196)
        assert isinstance(spec, DatasetSpec)
        assert spec.name == "mnist-like"
        assert spec.k_hint == 5

    def test_normalized_by_default(self):
        points, _ = make_mnist_like(n=200, d=64, seed=1)
        assert abs(points.mean()) < 1e-8
        assert points.min() >= -1.0 - 1e-12 and points.max() <= 1.0 + 1e-12

    def test_unnormalized_values_in_unit_interval(self):
        points, _ = make_mnist_like(n=100, d=64, seed=2, normalize=False)
        assert points.min() >= 0.0 and points.max() <= 1.0

    def test_has_cluster_structure(self):
        points, spec = make_mnist_like(n=400, d=100, n_prototypes=4, seed=3)
        result = solve_reference_kmeans(points, 4, n_init=3, seed=0)
        single = kmeans_cost(points, points.mean(axis=0, keepdims=True))
        assert result.cost < single

    def test_reproducible(self):
        a, _ = make_mnist_like(n=50, d=49, seed=5)
        b, _ = make_mnist_like(n=50, d=49, seed=5)
        assert np.array_equal(a, b)


class TestNeuripsLike:
    def test_shape_and_spec(self):
        points, spec = make_neurips_like(n=200, d=300, n_topics=8, seed=0)
        assert points.shape == (200, 300)
        assert spec.name == "neurips-like"

    def test_sparse_before_normalization(self):
        points, _ = make_neurips_like(n=150, d=400, density=0.05, seed=1, normalize=False)
        zero_fraction = np.mean(points == 0.0)
        assert zero_fraction > 0.7

    def test_nonnegative_before_normalization(self):
        points, _ = make_neurips_like(n=100, d=200, seed=2, normalize=False)
        assert points.min() >= 0.0

    def test_normalized_by_default(self):
        points, _ = make_neurips_like(n=100, d=200, seed=3)
        assert abs(points.mean()) < 1e-8

    def test_reproducible(self):
        a, _ = make_neurips_like(n=60, d=80, seed=7)
        b, _ = make_neurips_like(n=60, d=80, seed=7)
        assert np.array_equal(a, b)


class TestLoader:
    def test_mnist_alias(self):
        points, spec = load_benchmark_dataset("mnist", n=100, d=64, seed=0)
        assert points.shape == (100, 64)
        assert spec.name == "mnist-like"

    def test_neurips_alias(self):
        points, spec = load_benchmark_dataset("NeurIPS", n=80, d=120, seed=0)
        assert points.shape == (80, 120)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_benchmark_dataset("imagenet")
