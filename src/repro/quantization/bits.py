"""Bit-level accounting for quantized transmissions.

The paper assumes IEEE-754 double precision for unquantized data: 64 bits per
scalar = 1 sign bit + 11 exponent bits + 52 stored significand bits (53
significant bits counting the implicit leading 1).  A rounding quantizer that
keeps ``s`` significant bits transmits ``1 + 11 + s`` bits per scalar.
"""

from __future__ import annotations

DOUBLE_PRECISION_BITS = 64
DOUBLE_EXPONENT_BITS = 11
DOUBLE_SIGN_BITS = 1
#: Significant bits of a double including the implicit leading one.
DOUBLE_SIGNIFICAND_BITS = 53


def bits_per_scalar(significant_bits: int | None = None) -> int:
    """Bits required to transmit one scalar.

    ``significant_bits=None`` (or 53) means full double precision; otherwise
    sign + exponent + the retained significand bits.
    """
    if significant_bits is None or significant_bits >= DOUBLE_SIGNIFICAND_BITS:
        return DOUBLE_PRECISION_BITS
    if significant_bits < 1:
        raise ValueError(
            f"significant_bits must be >= 1, got {significant_bits}"
        )
    return DOUBLE_SIGN_BITS + DOUBLE_EXPONENT_BITS + int(significant_bits)


def scalars_to_bits(scalars: int, significant_bits: int | None = None) -> int:
    """Total bits to transmit ``scalars`` values at the given precision."""
    if scalars < 0:
        raise ValueError(f"scalars must be non-negative, got {scalars}")
    return int(scalars) * bits_per_scalar(significant_bits)
