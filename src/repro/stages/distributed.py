"""Distributed stages: per-shard steps of the multi-source protocols.

A distributed stage operates on a whole :class:`~repro.distributed.cluster.
EdgeCluster` — every local computation runs on a :class:`DataSourceNode` (so
it is timed as the paper's complexity metric) and every transmission goes
through the cluster's :class:`SimulatedNetwork` (so it is metered).  Like the
single-source stages, a distributed stage may register a center lift that the
engine applies server-side after the k-means solve.

Stage inventory:

* :class:`SharedJLStage` — every source applies the same pre-shared-seed JL
  map locally (zero communication); the lift is the pseudo-inverse
  (Algorithm 4's DR step).
* :class:`BKLWStage` — disPCA + disSS (the BKLW CR method, Theorem 5.3).
* :class:`RawGatherStage` — every source ships its raw shard (the
  distributed NR baseline).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.cr.coreset import Coreset
from repro.distributed.bklw import BKLWCoreset
from repro.distributed.cluster import EdgeCluster
from repro.distributed.conditions import DeliveryError
from repro.dr.jl import JLProjection, jl_target_dimension
from repro.stages.base import StageContext
from repro.stages.sizing import default_distributed_samples, default_pca_rank
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_positive_int


@dataclass
class DistributedStageContext(StageContext):
    """Execution context for distributed stages.

    Extends the single-source context with the cluster geometry *as seen
    before any stage ran*: stage parameter defaults are resolved against the
    original shards (matching the paper's analyses, which state summary sizes
    in terms of the input's ``n``, ``d``, and ``m``) even when an earlier DR
    stage already shrank the working dimension.
    """

    quantizer: Optional[object] = None
    original_dimension: int = 0
    total_cardinality: int = 0
    min_cardinality: int = 0
    num_sources: int = 0
    #: Worker threads available for per-source compute sections (1 =
    #: sequential).  Stages must keep network transmissions serial.
    jobs: int = 1


@dataclass
class DistributedStageEffect:
    """Everything one distributed stage application produces."""

    coreset: Optional[Coreset] = None
    lift: Optional[Callable[[np.ndarray], np.ndarray]] = None
    details: Dict[str, float] = field(default_factory=dict)


class DistributedStage(abc.ABC):
    """One composable step of a multi-source summary protocol."""

    name: str = "stage"

    #: See :class:`repro.stages.base.Stage`: stages whose randomness is
    #: pre-shared between all end points take part in the seed handshake.
    requires_shared_seed: bool = False

    def handshake(self, ctx: StageContext) -> None:
        if self.requires_shared_seed:
            self._shared_seed = ctx.derive_seed()

    @abc.abstractmethod
    def apply_to_cluster(
        self, cluster: EdgeCluster, ctx: DistributedStageContext
    ) -> DistributedStageEffect:
        """Run this protocol step over the cluster's sources and server."""

    @property
    def shared_seed(self) -> int:
        seed = getattr(self, "_shared_seed", None)
        if seed is None:
            raise RuntimeError(
                f"{type(self).__name__} requires a seed handshake before use; "
                "run it through a DistributedStagePipeline"
            )
        return seed


class SharedJLStage(DistributedStage):
    """Every source applies the identical pre-shared-seed JL map locally.

    Costs zero communication (the seed handshake stands in for the paper's
    pre-shared seed) and shrinks every subsequent stage's payloads; the
    server lifts the final centers back through the Moore–Penrose inverse.
    """

    name = "JL"
    requires_shared_seed = True

    def __init__(self, dimension: Optional[int] = None, ensemble: str = "gaussian") -> None:
        self.dimension = dimension
        self.ensemble = ensemble

    def resolve_dimension(self, cluster: EdgeCluster, ctx: DistributedStageContext) -> int:
        d = cluster.dimension
        if self.dimension is not None:
            return min(check_positive_int(self.dimension, "jl_dimension"), d)
        return jl_target_dimension(
            ctx.total_cardinality,
            ctx.k,
            min(ctx.epsilon, 0.999),
            ctx.delta,
            constant=1.0,
            max_dimension=d,
        )

    def apply_to_cluster(
        self, cluster: EdgeCluster, ctx: DistributedStageContext
    ) -> DistributedStageEffect:
        d = cluster.dimension
        target = self.resolve_dimension(cluster, ctx)
        seed = self.shared_seed
        projection = JLProjection(d, target, seed=seed, ensemble=self.ensemble)
        # Pure local compute (the projection matrix is pre-shared and every
        # node owns its shard), so the per-source loop parallelises freely.
        # Sources already down skip the projection and are excluded for the
        # run: letting one recover later with an unprojected shard would mix
        # geometries in the fold.
        parallel_map(
            lambda source: source.apply_jl(projection),
            cluster.network.participating(cluster.sources),
            ctx.jobs,
        )

        def lift(centers):
            server_projection = JLProjection(d, target, seed=seed, ensemble=self.ensemble)
            return server_projection.inverse_transform(centers)

        return DistributedStageEffect(lift=lift, details={"jl_dimension": float(target)})


class BKLWStage(DistributedStage):
    """disPCA + disSS over the (possibly already projected) shards.

    Produces the merged coreset at the server (Lemma 5.1's "BKLW-based CR
    method"); the final k-means solve is left to the engine.  Parameter
    defaults are resolved against the *original* cluster geometry recorded in
    the context, exactly as the monolithic pipelines did.
    """

    name = "BKLW"

    def __init__(
        self, pca_rank: Optional[int] = None, total_samples: Optional[int] = None
    ) -> None:
        self.pca_rank = pca_rank
        self.total_samples = total_samples

    def resolve_rank(self, ctx: DistributedStageContext) -> int:
        if self.pca_rank is not None:
            return min(
                check_positive_int(self.pca_rank, "pca_rank"),
                ctx.original_dimension,
                ctx.min_cardinality,
            )
        return default_pca_rank(ctx.min_cardinality, ctx.original_dimension, ctx.k)

    def resolve_samples(self, ctx: DistributedStageContext) -> int:
        if self.total_samples is not None:
            return check_positive_int(self.total_samples, "total_samples")
        return default_distributed_samples(ctx.num_sources, ctx.k)

    def apply_to_cluster(
        self, cluster: EdgeCluster, ctx: DistributedStageContext
    ) -> DistributedStageEffect:
        builder = BKLWCoreset(
            k=ctx.k,
            epsilon=ctx.epsilon,
            delta=ctx.delta,
            pca_rank=self.resolve_rank(ctx),
            total_samples=self.resolve_samples(ctx),
            quantizer=ctx.quantizer,
            jobs=ctx.jobs,
        )
        built = builder.build(cluster.sources, cluster.server)
        return DistributedStageEffect(
            coreset=built.coreset,
            details={
                "dispca_scalars": float(built.dispca.transmitted_scalars),
                "disss_scalars": float(built.disss.transmitted_scalars),
            },
        )


class RawGatherStage(DistributedStage):
    """Every source ships its raw (optionally quantized) shard to the server
    — the distributed NR baseline.

    Fault tolerance: shards whose source is down or exhausts its retry
    budget are excluded from the gathered union (and the source is marked
    failed for the run); at least one shard must arrive.
    """

    name = "NR"

    def apply_to_cluster(
        self, cluster: EdgeCluster, ctx: DistributedStageContext
    ) -> DistributedStageEffect:
        network = cluster.network
        active = network.participating(cluster.sources)
        if not active:
            raise RuntimeError("NR gather: every data source is down")
        bits = None
        if ctx.quantizer is not None:
            # Compute phase (parallel): quantization is node-local work.
            payloads = parallel_map(
                lambda source: source.quantize(source.points, ctx.quantizer),
                active,
                ctx.jobs,
            )
            bits = ctx.quantizer.significant_bits
        else:
            payloads = [source.points for source in active]
        # Transmission phase (serial, source order): metering stays
        # deterministic whatever the compute interleaving was.
        received = 0
        for source, payload in zip(active, payloads):
            try:
                source.send_to_server(payload, tag="raw-data", significant_bits=bits)
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            cluster.server.receive_coreset(
                Coreset(payload, np.ones(payload.shape[0]), shift=0.0)
            )
            received += 1
        network.advance_round()
        if not received:
            raise RuntimeError("NR gather: no shard reached the server")
        return DistributedStageEffect(coreset=cluster.server.merged_coreset())
