"""Tests for repro.cr.coreset — the (S, Δ, w) data structure."""

import numpy as np
import pytest

from repro.cr.coreset import Coreset, merge_coresets
from repro.dr.jl import JLProjection
from repro.kmeans.cost import weighted_kmeans_cost
from repro.quantization.rounding import RoundingQuantizer


def _simple_coreset():
    points = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
    weights = np.array([1.0, 2.0, 3.0])
    return Coreset(points, weights, shift=1.5)


class TestCoresetBasics:
    def test_properties(self):
        c = _simple_coreset()
        assert c.size == 3
        assert c.dimension == 2
        assert c.total_weight == pytest.approx(6.0)
        assert c.shift == pytest.approx(1.5)

    def test_cost_includes_shift_and_weights(self):
        c = _simple_coreset()
        centers = np.array([[0.0, 0.0]])
        expected = 1.0 * 0 + 2.0 * 4.0 + 3.0 * 4.0 + 1.5
        assert c.cost(centers) == pytest.approx(expected)

    def test_cost_matches_weighted_cost_helper(self, blob_points):
        weights = np.linspace(1.0, 2.0, blob_points.shape[0])
        c = Coreset(blob_points, weights, shift=3.0)
        centers = blob_points[:4]
        assert c.cost(centers) == pytest.approx(
            weighted_kmeans_cost(blob_points, centers, weights, shift=3.0)
        )

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            Coreset(np.zeros((2, 2)), np.ones(2), shift=-1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Coreset(np.zeros((2, 2)), np.array([1.0, -1.0]))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Coreset(np.zeros((3, 2)), np.ones(2))


class TestCoresetTransformations:
    def test_transform_applies_dr_and_keeps_weights(self):
        c = _simple_coreset()
        proj = JLProjection(2, 2, seed=0)
        transformed = c.transform(proj)
        assert transformed.size == c.size
        assert np.allclose(transformed.weights, c.weights)
        assert transformed.shift == c.shift
        assert np.allclose(transformed.points, proj.transform(c.points))

    def test_quantize_keeps_weights_and_shift(self):
        c = _simple_coreset()
        q = RoundingQuantizer(4)
        quantized = c.quantize(q)
        assert quantized.shift == c.shift
        assert np.allclose(quantized.weights, c.weights)
        assert np.allclose(quantized.points, q.quantize(c.points))

    def test_merge(self):
        a = _simple_coreset()
        b = Coreset(np.array([[5.0, 5.0]]), np.array([4.0]), shift=0.5)
        merged = a.merged_with(b)
        assert merged.size == 4
        assert merged.total_weight == pytest.approx(10.0)
        assert merged.shift == pytest.approx(2.0)

    def test_merge_dimension_mismatch(self):
        a = _simple_coreset()
        b = Coreset(np.zeros((1, 3)), np.ones(1))
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_coresets_helper(self):
        parts = [_simple_coreset() for _ in range(3)]
        merged = merge_coresets(parts)
        assert merged.size == 9

    def test_merge_empty_collection_raises(self):
        with pytest.raises(ValueError):
            merge_coresets([])


class TestCoresetAccounting:
    def test_scalars_to_transmit(self):
        c = _simple_coreset()
        # 3 points x 2 dims + 3 weights + 1 shift
        assert c.scalars_to_transmit() == 10
        assert c.scalars_to_transmit(include_weights=False) == 7

    def test_empirical_distortion_zero_for_exact_copy(self, blob_points):
        c = Coreset(blob_points, np.ones(blob_points.shape[0]))
        centers = blob_points[:3]
        assert c.empirical_distortion(blob_points, centers) == pytest.approx(0.0)

    def test_empirical_distortion_detects_mismatch(self, blob_points):
        # A coreset that drops half the mass misestimates the cost.
        half = Coreset(blob_points[:200], np.ones(200))
        centers = np.zeros((1, blob_points.shape[1]))
        assert half.empirical_distortion(blob_points, centers) > 0.1
