"""Tests for the fast numerical core: fused kernels, fast samplers,
pruned/accelerated Lloyd, and dtype preservation.

Three contracts are pinned here:

1. **Parity** — the fused assignment/cost kernel, the searchsorted samplers,
   and the incremental bicriteria sweep must match their naive formulations
   bit for bit (the registry's golden communication values depend on the
   exact RNG draw sequence, so "equivalent" is not enough).
2. **Determinism** — seeded runs reproduce exactly, including through the
   greedy k-means++ variant and the float32 compute path.
3. **Equivalence** — the opt-in Hamerly-accelerated Lloyd reaches the same
   labels and cost as the plain loop on separated synthetic data.
"""

import numpy as np
import pytest

from repro.datasets import make_gaussian_mixture
from repro.kmeans.bicriteria import bicriteria_approximation
from repro.kmeans.cost import (
    assign_and_cost,
    assign_to_centers,
    cluster_means,
    weighted_kmeans_cost,
)
from repro.kmeans.lloyd import WeightedKMeans
from repro.kmeans.seeding import d2_sampling, kmeans_plus_plus
from repro.utils.linalg import pairwise_squared_distances
from repro.utils.random import weighted_index_from_scores, weighted_indices


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    points = rng.standard_normal((3000, 17)) * 2.0
    points[1000:2000] += 8.0
    points[2000:] -= 8.0
    weights = rng.random(3000) + 0.05
    return points, weights


class TestFusedAssignCost:
    """The fused kernel must match the naive two-pass computation bit for bit."""

    def test_matches_two_pass_bitwise(self, data):
        points, weights = data
        rng = np.random.default_rng(3)
        centers = points[rng.choice(points.shape[0], size=9, replace=False)]

        labels, d2, cost = assign_and_cost(points, centers, weights)
        naive_labels, naive_d2 = assign_to_centers(points, centers)
        naive_cost = weighted_kmeans_cost(points, centers, weights)

        np.testing.assert_array_equal(labels, naive_labels)
        np.testing.assert_array_equal(d2, naive_d2)
        assert cost == naive_cost  # bitwise, not approx

    def test_shift_carried(self, data):
        points, weights = data
        centers = points[:4]
        _, _, cost = assign_and_cost(points, centers, weights, shift=2.5)
        assert cost == weighted_kmeans_cost(points, centers, weights, shift=2.5)

    def test_unweighted_defaults_to_unit_weights(self, data):
        points, _ = data
        centers = points[:5]
        _, d2, cost = assign_and_cost(points, centers)
        assert cost == float(np.dot(np.ones(points.shape[0]), d2))

    def test_blockwise_matches_single_block(self, data):
        """Inputs larger than the block size produce the same answer."""
        from repro.kmeans import cost as cost_mod

        points, weights = data
        centers = points[:6]
        full = assign_and_cost(points, centers, weights)
        original = cost_mod._BLOCK_ROWS
        try:
            cost_mod._BLOCK_ROWS = 257  # force many ragged blocks
            blocked = assign_and_cost(points, centers, weights)
        finally:
            cost_mod._BLOCK_ROWS = original
        np.testing.assert_array_equal(full[0], blocked[0])
        np.testing.assert_array_equal(full[1], blocked[1])
        assert full[2] == blocked[2]


class TestClusterMeansSegmentSums:
    def test_matches_scatter_add_bitwise(self, data):
        points, weights = data
        labels = np.random.default_rng(5).integers(0, 12, size=points.shape[0])
        means = cluster_means(points, labels, 12, weights)
        reference = np.zeros((12, points.shape[1]))
        totals = np.zeros(12)
        np.add.at(totals, labels, weights)
        np.add.at(reference, labels, points * weights[:, None])
        nonempty = totals > 0
        reference[nonempty] /= totals[nonempty, None]
        np.testing.assert_array_equal(means, reference)

    def test_return_totals(self, data):
        points, weights = data
        labels = np.zeros(points.shape[0], dtype=np.int64)
        means, totals = cluster_means(points, labels, 3, weights, return_totals=True)
        assert totals[0] == pytest.approx(weights.sum())
        assert totals[1] == 0.0 and totals[2] == 0.0
        np.testing.assert_array_equal(means[1], 0.0)


class TestSearchsortedSamplers:
    """The cumsum+searchsorted samplers must be bit-compatible with
    ``Generator.choice`` and deterministic under a fixed seed."""

    def test_weighted_indices_matches_generator_choice(self):
        p = np.abs(np.random.default_rng(0).standard_normal(513))
        p /= p.sum()
        a = np.random.default_rng(42).choice(513, size=100, replace=True, p=p)
        b = weighted_indices(np.random.default_rng(42), p, size=100)
        np.testing.assert_array_equal(a, b)

    def test_scalar_draw_matches_generator_choice(self):
        p = np.random.default_rng(1).random(64)
        p /= p.sum()
        a = int(np.random.default_rng(9).choice(64, p=p))
        b = weighted_index_from_scores(np.random.default_rng(9), p * 13.0)
        assert a == b

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            weighted_indices(np.random.default_rng(0), np.zeros(8))

    def test_kmeans_plus_plus_deterministic(self, data):
        points, weights = data
        a = kmeans_plus_plus(points, 6, weights=weights, seed=11)
        b = kmeans_plus_plus(points, 6, weights=weights, seed=11)
        np.testing.assert_array_equal(a, b)

    def test_d2_sampling_deterministic(self, data):
        points, weights = data
        centers = points[:3]
        ia, _ = d2_sampling(points, centers, 40, weights=weights, seed=13)
        ib, _ = d2_sampling(points, centers, 40, weights=weights, seed=13)
        np.testing.assert_array_equal(ia, ib)

    def test_d2_sampling_all_zero_weights_raise(self, data):
        points, _ = data
        with pytest.raises(ValueError):
            d2_sampling(points, points[:2], 10, weights=np.zeros(points.shape[0]), seed=0)

    def test_d2_sampling_precomputed_distances_match(self, data):
        points, weights = data
        centers = points[:5]
        closest = pairwise_squared_distances(points, centers).min(axis=1)
        ia, _ = d2_sampling(points, centers, 30, weights=weights, seed=3)
        ib, _ = d2_sampling(
            points, None, 30, weights=weights, seed=3, min_squared_distances=closest
        )
        np.testing.assert_array_equal(ia, ib)

    def test_greedy_local_trials_not_worse(self, data):
        """The greedy variant's seeding potential is no worse on average."""
        points, weights = data

        def potential(centers):
            return weighted_kmeans_cost(points, centers, weights)

        plain = np.mean([
            potential(kmeans_plus_plus(points, 8, weights=weights, seed=s))
            for s in range(5)
        ])
        greedy = np.mean([
            potential(kmeans_plus_plus(points, 8, weights=weights, seed=s, local_trials=4))
            for s in range(5)
        ])
        assert greedy <= plain * 1.05

    def test_greedy_local_trials_deterministic(self, data):
        points, weights = data
        a = kmeans_plus_plus(points, 5, weights=weights, seed=2, local_trials=3)
        b = kmeans_plus_plus(points, 5, weights=weights, seed=2, local_trials=3)
        np.testing.assert_array_equal(a, b)


class TestIncrementalBicriteria:
    def test_cost_matches_full_reassignment(self, data):
        points, weights = data
        result = bicriteria_approximation(points, 5, weights=weights, seed=19)
        recomputed = weighted_kmeans_cost(points, result.centers, weights)
        assert result.cost == recomputed  # incremental min == full-pass min

    def test_cached_assignment_matches(self, data):
        points, weights = data
        result = bicriteria_approximation(points, 5, weights=weights, seed=23)
        labels, d2 = assign_to_centers(points, result.centers)
        np.testing.assert_array_equal(result.labels, labels)
        np.testing.assert_array_equal(result.squared_distances, d2)


HAMERLY_DATASETS = [
    dict(n=600, d=8, k=4, separation=10.0, cluster_std=1.0, seed=1),
    dict(n=900, d=15, k=3, separation=8.0, cluster_std=1.5, seed=2),
    dict(n=500, d=25, k=5, separation=12.0, cluster_std=0.8, seed=3),
]


class TestHamerlyEquivalence:
    @pytest.mark.parametrize("spec", HAMERLY_DATASETS, ids=["ds1", "ds2", "ds3"])
    def test_same_labels_and_cost_as_plain(self, spec):
        points, _, _ = make_gaussian_mixture(**spec)
        k = spec["k"]
        # tolerance=0 runs both variants to their common fixed point.
        plain = WeightedKMeans(
            k=k, n_init=2, max_iterations=200, tolerance=0.0, seed=99
        ).fit(points)
        fast = WeightedKMeans(
            k=k, n_init=2, max_iterations=200, tolerance=0.0, seed=99,
            accelerate="hamerly",
        ).fit(points)
        np.testing.assert_array_equal(plain.labels, fast.labels)
        assert fast.cost == pytest.approx(plain.cost, rel=1e-9)
        np.testing.assert_allclose(fast.centers, plain.centers, rtol=1e-9, atol=1e-9)

    def test_invalid_accelerate_mode_rejected(self):
        with pytest.raises(ValueError):
            WeightedKMeans(k=2, accelerate="elkan")

    def test_hamerly_weighted(self, data):
        points, weights = data
        plain = WeightedKMeans(
            k=3, n_init=1, max_iterations=100, tolerance=0.0, seed=4
        ).fit(points, weights)
        fast = WeightedKMeans(
            k=3, n_init=1, max_iterations=100, tolerance=0.0, seed=4,
            accelerate="hamerly",
        ).fit(points, weights)
        assert fast.cost == pytest.approx(plain.cost, rel=1e-9)


class TestFloat32Path:
    def test_pairwise_preserves_float32(self):
        a = np.random.default_rng(0).standard_normal((40, 6)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((5, 6)).astype(np.float32)
        d2 = pairwise_squared_distances(a, b)
        assert d2.dtype == np.float32

    def test_pairwise_no_copy_for_contiguous_float64(self):
        """Regression: float inputs must not be silently copied/promoted."""
        a = np.ascontiguousarray(np.random.default_rng(2).standard_normal((30, 4)))
        b = np.ascontiguousarray(np.random.default_rng(3).standard_normal((7, 4)))
        from repro.utils.linalg import as_float_array

        assert as_float_array(a) is a
        assert as_float_array(b) is b
        f32 = a.astype(np.float32)
        assert as_float_array(f32) is f32  # no promotion copy either

    def test_pairwise_out_buffer_is_used_and_matches(self):
        a = np.random.default_rng(4).standard_normal((25, 9))
        b = np.random.default_rng(5).standard_normal((6, 9))
        out = np.empty((25, 6))
        result = pairwise_squared_distances(a, b, out=out)
        assert result is out
        np.testing.assert_array_equal(out, pairwise_squared_distances(a, b))

    def test_float32_solver_close_to_float64(self, data):
        points, weights = data
        exact = WeightedKMeans(k=3, n_init=2, seed=8).fit(points, weights)
        single = WeightedKMeans(
            k=3, n_init=2, seed=8, compute_dtype=np.float32
        ).fit(points, weights)
        assert single.centers.dtype == np.float64  # reported in full precision
        assert single.cost == pytest.approx(exact.cost, rel=1e-3)

    def test_assign_and_cost_float32_is_opt_in(self, data):
        points, _ = data
        pts32 = points.astype(np.float32)
        labels64, d2_default, _ = assign_and_cost(points, points[:4])
        # Default: float32 input is promoted to float64 at the validation
        # boundary — the expanded distance formula is unsafe in single
        # precision, so low precision must never be implicit.
        _, d2_promoted, _ = assign_and_cost(pts32, pts32[:4])
        assert d2_promoted.dtype == np.float64
        # Opt-in: the caller accepts single-precision compute.
        labels32, d2, cost = assign_and_cost(pts32, pts32[:4], preserve_dtype=True)
        assert d2.dtype == np.float32
        # Separated data: the assignment itself agrees across precisions.
        assert np.mean(labels64 == labels32) > 0.999
