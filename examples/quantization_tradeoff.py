"""Joint DR, CR, and QT: sweeping the quantizer precision (Section 6).

Reproduces the Figure 3 experiment at a small scale, then uses the
Section 6.3 configuration procedure to pick the number of significant bits
automatically for a target error budget.

The device builds a JL+FSS+JL summary of an MNIST-like dataset and quantizes
the coreset points with a rounding quantizer that keeps ``s`` significant
bits.  As ``s`` decreases the transmitted bits shrink while the k-means cost
stays flat — until ``s`` becomes so small that the quantization error
dominates.

Run with:  python examples/quantization_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EvaluationContext,
    JLFSSJLPipeline,
    RoundingQuantizer,
    configure_joint_reduction,
    evaluate_report,
    make_mnist_like,
)
from repro.core.configuration import estimate_optimal_cost_lower_bound

K = 2
CORESET_SIZE = 300
BIT_GRID = (3, 5, 8, 12, 20, 30, 53)


def main() -> None:
    points, spec = make_mnist_like(n=2000, d=784, seed=0)
    n, d = points.shape
    print(f"dataset: {spec.name}, n={n}, d={d}")
    context = EvaluationContext.build(points, k=K, n_init=5, seed=1)

    print(f"\n{'significant bits':>18}{'norm. cost':>14}{'norm. comm.':>14}{'device time (s)':>18}")
    for bits in BIT_GRID:
        quantizer = None if bits >= 53 else RoundingQuantizer(bits)
        pipeline = JLFSSJLPipeline(
            k=K, seed=2, coreset_size=CORESET_SIZE, jl_dimension=d // 2,
            second_jl_dimension=64, quantizer=quantizer,
        )
        evaluation = evaluate_report(pipeline.run(points), context)
        print(
            f"{bits:>18}{evaluation.normalized_cost:>14.4f}"
            f"{evaluation.normalized_communication:>14.5f}"
            f"{evaluation.source_seconds:>18.3f}"
        )

    # Section 6.3: pick the precision automatically for an error budget.
    error_budget = 1.5
    lower_bound = estimate_optimal_cost_lower_bound(points, K, seed=3)
    max_norm = float(np.max(np.linalg.norm(points, axis=1)))
    config = configure_joint_reduction(
        n=n, d=d, k=K, error_bound=error_budget,
        optimal_cost_lower_bound=lower_bound,
        max_norm=max_norm, diameter=2.0 * max_norm,
        use_paper_constants=False,
        coreset_cardinality=CORESET_SIZE, coreset_dimension=64,
    )
    print(
        f"\nSection 6.3 configuration for an error budget of {error_budget}: "
        f"keep s = {config.significant_bits} significant bits "
        f"(predicted error bound {config.predicted_error:.3f}, "
        f"predicted summary size {config.predicted_communication / 8 / 1024:.1f} KiB)"
    )

    pipeline = JLFSSJLPipeline(
        k=K, seed=4, coreset_size=CORESET_SIZE, jl_dimension=d // 2,
        second_jl_dimension=64, quantizer=RoundingQuantizer(config.significant_bits),
    )
    evaluation = evaluate_report(pipeline.run(points), context)
    print(
        f"empirical result with that configuration: normalized cost "
        f"{evaluation.normalized_cost:.4f}, normalized communication "
        f"{evaluation.normalized_communication:.5f}"
    )


if __name__ == "__main__":
    main()
