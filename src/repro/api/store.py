"""Persisted experiment results: JSONL run records with provenance.

Every executed cell becomes one :class:`RunRecord` — the spec that produced
it, a hash of that spec, the per-run Monte-Carlo seeds, the aggregate
:class:`~repro.metrics.experiment.AlgorithmSummary`, every per-run
:class:`~repro.metrics.evaluation.PipelineEvaluation`, and git/version
provenance — appended to a :class:`ResultStore` (one JSON object per line
under ``results/`` by convention).  Stores reload into records, filter on
spec fields, and render paper-style comparison tables.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.metrics.evaluation import PipelineEvaluation
from repro.metrics.experiment import AlgorithmSummary
from repro.utils import faultpoints

#: Record format version, bumped on incompatible layout changes.
STORE_VERSION = 1

#: Default metrics rendered by :meth:`ResultStore.compare` (aggregate
#: AlgorithmSummary fields — the paper's three headline columns).
DEFAULT_COMPARE_METRICS = (
    "mean_normalized_cost",
    "mean_normalized_communication",
    "mean_source_seconds",
)


def spec_hash(spec_dict: Mapping[str, Any]) -> str:
    """Stable content hash of a spec dict (canonical JSON, sha256)."""
    canonical = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: Successful-lookup memo and consecutive-failure budget of
#: :func:`_git_commit`.  Only *successes* are cached forever: a transient
#: failure (a 2s subprocess timeout on a briefly-wedged host, a git racing a
#: checkout) must not stamp every record of a long-running daemon with
#: ``git_commit: null`` for the rest of the process lifetime.  Failures
#: retry on the next lookup, but at most ``_GIT_COMMIT_MAX_ATTEMPTS`` times
#: so a host where git is genuinely absent or hung pays the ``timeout``
#: stall a bounded number of times, not on every append forever.
_GIT_COMMIT_CACHE: Optional[str] = None
_GIT_COMMIT_FAILURES = 0
_GIT_COMMIT_MAX_ATTEMPTS = 3


def _git_commit(timeout: float = 2.0) -> Optional[str]:
    """The current HEAD commit, or ``None`` when git is absent, broken, or
    slow.

    Successes are memoized for the life of the process; failures retry on
    the next call until the attempt budget runs out (see above).  stdin is
    detached so a misconfigured git can never sit waiting for terminal
    input.
    """
    global _GIT_COMMIT_CACHE, _GIT_COMMIT_FAILURES
    if _GIT_COMMIT_CACHE is not None:
        return _GIT_COMMIT_CACHE
    if _GIT_COMMIT_FAILURES >= _GIT_COMMIT_MAX_ATTEMPTS:
        return None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=timeout, check=False,
            stdin=subprocess.DEVNULL,
        )
    except (OSError, subprocess.SubprocessError):
        # Covers a missing binary, a TimeoutExpired hang, and any other
        # subprocess failure — provenance degrades to git_commit: null
        # for this record, and the next lookup tries again.
        commit = None
    else:
        commit = out.stdout.strip()
        commit = commit if out.returncode == 0 and commit else None
    if commit:
        _GIT_COMMIT_CACHE = commit
        _GIT_COMMIT_FAILURES = 0
        return commit
    _GIT_COMMIT_FAILURES += 1
    return None


def _reset_git_commit_cache() -> None:
    """Forget the memoized commit and the failure budget (tests)."""
    global _GIT_COMMIT_CACHE, _GIT_COMMIT_FAILURES
    _GIT_COMMIT_CACHE = None
    _GIT_COMMIT_FAILURES = 0


#: Keep the lru_cache-era reset contract: callers (and the tests) clear the
#: memo with ``_git_commit.cache_clear()``.
_git_commit.cache_clear = _reset_git_commit_cache


def provenance() -> Dict[str, Any]:
    """Version/git provenance stamped on every record."""
    import platform

    import numpy

    import repro

    return {
        "repro_version": getattr(repro, "__version__", "unknown"),
        "numpy_version": numpy.__version__,
        "python_version": platform.python_version(),
        "git_commit": _git_commit(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One persisted experiment cell."""

    algorithm: str
    spec: Dict[str, Any]
    summary: Dict[str, Any]
    evaluations: Tuple[Dict[str, Any], ...] = ()
    run_seeds: Tuple[int, ...] = ()
    cell_id: Optional[str] = None
    spec_hash: str = ""
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: Legacy field, kept so stores written before the sweep journal
    #: existed still load.  New records leave it empty: cache accounting
    #: depends on cache warmth, so persisting it would make a resumed
    #: sweep's store differ from an uncrashed one — it lives in the
    #: journal's ``done`` entries instead.
    cache: Dict[str, Any] = field(default_factory=dict)
    version: int = STORE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "evaluations", tuple(dict(e) for e in self.evaluations))
        object.__setattr__(self, "run_seeds", tuple(int(s) for s in self.run_seeds))
        if not self.spec_hash:
            object.__setattr__(self, "spec_hash", spec_hash(self.spec))

    # -------------------------------------------------------------- views
    def algorithm_summary(self) -> AlgorithmSummary:
        """Rehydrate the aggregate summary dataclass."""
        return AlgorithmSummary(**self.summary)

    def pipeline_evaluations(self) -> List[PipelineEvaluation]:
        """Rehydrate the per-run evaluations."""
        return [PipelineEvaluation.from_dict(e) for e in self.evaluations]

    def spec_field(self, dotted: str) -> Any:
        """Look up a spec value by dotted path (``"pipeline.k"``) or by bare
        field name searched across the spec sections."""
        node: Any = self.spec
        if "." in dotted:
            for part in dotted.split("."):
                if not isinstance(node, Mapping) or part not in node:
                    return None
                node = node[part]
            return node
        if dotted in self.spec:
            return self.spec[dotted]
        for section in ("pipeline", "data", "network"):
            table = self.spec.get(section)
            if isinstance(table, Mapping) and dotted in table:
                return table[dotted]
        return None

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "cell_id": self.cell_id,
            "algorithm": self.algorithm,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "run_seeds": list(self.run_seeds),
            "summary": self.summary,
            "evaluations": [dict(e) for e in self.evaluations],
            "provenance": self.provenance,
            "cache": dict(self.cache),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ValueError(f"unknown RunRecord fields: {unknown}")
        payload = dict(payload)
        payload["evaluations"] = tuple(payload.get("evaluations", ()))
        payload["run_seeds"] = tuple(payload.get("run_seeds", ()))
        return cls(**payload)


@dataclass(frozen=True)
class StoreCheck:
    """What :meth:`ResultStore.verify` found (non-mutating diagnosis)."""

    path: str
    records: int
    #: The file ends in a flushed-but-unterminated line — the crash
    #: signature of a killed append.  Healable: :meth:`ResultStore.repair`.
    torn_tail: bool = False
    #: 1-based numbers of complete lines that are not valid records — real
    #: corruption (quarantined wholesale only by an explicit repair).
    corrupt_lines: Tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.torn_tail and not self.corrupt_lines


class ResultStore:
    """A JSONL file of :class:`RunRecord` objects (append + load + query).

    Appends are *durable and framed*: each record is one line, written,
    flushed, and fsynced before :meth:`append` returns, so a crash can tear
    at most the record being written — never an already-acknowledged one.
    A torn trailing line left by a killed process is healed automatically
    on the next append or tolerant load: a torn line that is a complete
    record gains its missing newline; torn garbage is quarantined into
    ``<store>.corrupt`` and truncated away, so one crash never poisons the
    whole store.  ``repro store verify|repair`` exposes the same machinery
    on the command line.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)

    @property
    def corrupt_path(self) -> Path:
        """Where quarantined (torn / corrupt) lines go: ``<store>.corrupt``."""
        return self.path.with_name(self.path.name + ".corrupt")

    # ------------------------------------------------------------- writing
    def append(self, record: RunRecord) -> RunRecord:
        """Durably append one record (creates the file and parents on first
        write); returns only after the line is flushed and fsynced."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        faultpoints.reach("store.append")
        self._heal_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            if faultpoints.is_armed("store.append.torn"):
                # Crash-injection path: persist a genuine torn line — half
                # the record, flushed and fsynced, no newline — exactly the
                # bytes a kill mid-append leaves behind.
                split = max(1, len(line) // 2)
                handle.write(line[:split])
                handle.flush()
                os.fsync(handle.fileno())
                faultpoints.reach("store.append.torn")
                handle.write(line[split:])
            else:
                handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return record

    def extend(self, records: Sequence[RunRecord]) -> None:
        """Append records one durable line at a time.

        Partial-failure semantics: each record is fully committed before the
        next is attempted, so if append ``i`` raises, records ``0..i-1`` are
        already durable and the file carries no half-written frame from them
        — re-running after the failure may append duplicates but never tears
        the store (resume-style callers should dedupe on ``(spec_hash,
        cell_id)`` as the sweep runner does).
        """
        for record in records:
            self.append(record)

    # ------------------------------------------------------------- reading
    def load(self, strict: bool = False) -> List[RunRecord]:
        """All records in append order (empty list for a missing file).

        A torn trailing line — unterminated, the signature of a killed
        append — is healed by default: completed into a record when its
        bytes parse, otherwise quarantined into ``<store>.corrupt`` and
        truncated away.  With ``strict=True`` the torn tail raises instead.
        A *complete* line that is not a valid record is real corruption and
        always raises (use :meth:`repair` to quarantine those explicitly).
        """
        if not self.path.exists():
            return []
        if not strict:
            self._heal_tail()
        records: List[RunRecord] = []
        with self.path.open("r", encoding="utf-8") as handle:
            text = handle.read()
        if text and not text.endswith("\n"):  # strict=True with a torn tail
            raise ValueError(
                f"{self.path}: torn trailing line (crashed append?); "
                f"load(strict=False) or `repro store repair` heals it"
            )
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(RunRecord.from_dict(payload))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{self.path}:{line_number}: invalid JSONL record: {exc}"
                ) from None
        return records

    # --------------------------------------------------- crash resilience
    def verify(self) -> StoreCheck:
        """Diagnose the store file without modifying it."""
        if not self.path.exists():
            return StoreCheck(path=str(self.path), records=0)
        with self.path.open("r", encoding="utf-8") as handle:
            text = handle.read()
        torn_tail = bool(text) and not text.endswith("\n")
        lines = text.splitlines()
        records = 0
        corrupt: List[int] = []
        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            is_tail = torn_tail and line_number == len(lines)
            try:
                RunRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, ValueError, TypeError):
                if not is_tail:  # the torn tail is healable, not corrupt
                    corrupt.append(line_number)
            else:
                if not is_tail:  # a parseable torn tail is not committed yet
                    records += 1
        return StoreCheck(
            path=str(self.path),
            records=records,
            torn_tail=torn_tail,
            corrupt_lines=tuple(corrupt),
        )

    def repair(self) -> Tuple[int, int]:
        """Heal the torn tail and quarantine every corrupt complete line.

        Returns ``(kept_records, quarantined_lines)``.  Quarantined lines
        are appended verbatim to ``<store>.corrupt``; the store is then
        rewritten atomically with only the valid records, byte-identical
        framing (one sorted-key JSON object per line is preserved because
        valid lines are kept verbatim, not re-serialized).
        """
        self._heal_tail()
        if not self.path.exists():
            return (0, 0)
        with self.path.open("r", encoding="utf-8") as handle:
            text = handle.read()
        kept: List[str] = []
        quarantined: List[str] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                RunRecord.from_dict(json.loads(line))
                kept.append(line)
            except (json.JSONDecodeError, ValueError, TypeError):
                quarantined.append(line)
        if quarantined:
            self._quarantine(quarantined)
            tmp = self.path.with_name(self.path.name + ".repair-tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for line in kept:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        return (len(kept), len(quarantined))

    def _heal_tail(self) -> None:
        """Make the file end on a record boundary.

        A trailing line without a newline is a torn append: if its bytes
        already parse as a complete record the missing newline is added
        (the crash hit between the payload write and the frame end);
        otherwise the partial bytes are moved to ``<store>.corrupt`` and
        the file is truncated back to the previous record boundary.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with self.path.open("r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            body = handle.read()
            boundary = body.rfind(b"\n") + 1  # 0 when the whole file is torn
            tail = body[boundary:]
            try:
                RunRecord.from_dict(json.loads(tail.decode("utf-8")))
                healable = True
            except (UnicodeDecodeError, json.JSONDecodeError, ValueError,
                    TypeError):
                healable = False
            if healable:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(boundary)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if not healable:
            self._quarantine([tail.decode("utf-8", errors="replace")])

    def _quarantine(self, lines: Sequence[str]) -> None:
        with self.corrupt_path.open("a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self.load())

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.load())

    def filter(self, **criteria: Any) -> List[RunRecord]:
        """Records whose fields match every criterion.

        Criteria match record attributes (``algorithm``, ``cell_id``,
        ``spec_hash``) first, then spec fields by bare or dotted name —
        ``store.filter(algorithm="jl-fss", quantize_bits=10)``.  Dotted
        paths use ``__`` in keyword form (``pipeline__k=5``).
        """
        records = self.load()
        for key, wanted in criteria.items():
            dotted = key.replace("__", ".")
            is_attr = key in ("algorithm", "cell_id", "spec_hash")
            if not is_attr and records and all(
                record.spec_field(dotted) is None for record in records
            ):
                # Spec dicts omit unset fields, so a path absent from EVERY
                # record is a typo, not an empty match.
                raise KeyError(
                    f"unknown filter criterion {key!r}: no record has spec "
                    f"field {dotted!r}; criteria match record attributes "
                    f"(algorithm, cell_id, spec_hash) or spec fields by "
                    f"bare/dotted name"
                )
            matched = []
            for record in records:
                actual = (getattr(record, key) if is_attr
                          else record.spec_field(dotted))
                if actual == wanted:
                    matched.append(record)
            records = matched
        return records

    # ------------------------------------------------------------- tables
    def compare(
        self,
        metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
        records: Optional[Sequence[RunRecord]] = None,
    ) -> "ComparisonTable":
        """Build a comparison table of aggregate metrics across records."""
        return compare_records(
            self.load() if records is None else records, metrics
        )


def _comparison_table(
    entries: Sequence[Tuple[str, str, Mapping[str, Any]]],
    metrics: Sequence[str],
) -> "ComparisonTable":
    """Shared core of ``compare_records``/``compare_outcomes``: one row per
    ``(cell, algorithm, summary mapping)`` entry (unknown metric names raise
    ``KeyError`` with the valid set)."""
    available = tuple(
        f.name for f in dataclasses.fields(AlgorithmSummary) if f.name != "algorithm"
    )
    rows: List[Dict[str, Any]] = []
    for cell, algorithm, summary in entries:
        row: Dict[str, Any] = {"cell": cell, "algorithm": algorithm}
        for metric in metrics:
            if metric not in available:
                raise KeyError(
                    f"unknown summary metric {metric!r}; available: "
                    f"{', '.join(available)}"
                )
            row[metric] = summary.get(metric)
        rows.append(row)
    return ComparisonTable(metrics=tuple(metrics), rows=rows)


def compare_records(
    records: Sequence[RunRecord],
    metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
) -> "ComparisonTable":
    """One comparison row per record: cell id, algorithm, chosen aggregate
    metrics (unknown metric names raise ``KeyError`` with the valid set)."""
    return _comparison_table(
        [(r.cell_id or r.algorithm, r.algorithm, r.summary) for r in records],
        metrics,
    )


def compare_outcomes(
    outcomes: Sequence[Any],
    metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
) -> "ComparisonTable":
    """Same table as :func:`compare_records`, built straight from in-memory
    :class:`~repro.api.runner.ExperimentOutcome` objects — no RunRecord
    construction (spec hashing, evaluation copies) or provenance stamp.

    Failed cells (``summary is None`` — :class:`~repro.api.runner
    .FailedCell`) keep their grid row: the algorithm column is tagged
    ``[failed]`` and every metric renders as ``-``.
    """
    entries: List[Tuple[str, str, Mapping[str, Any]]] = []
    for o in outcomes:
        if getattr(o, "summary", None) is None:
            entries.append((o.cell_id or o.label, f"{o.label} [failed]", {}))
        else:
            entries.append((o.cell_id or o.label, o.label, vars(o.summary)))
    return _comparison_table(entries, metrics)


@dataclass(frozen=True)
class ComparisonTable:
    """Rendered-on-demand comparison rows (``str(table)`` → aligned text)."""

    metrics: Tuple[str, ...]
    rows: List[Dict[str, Any]]

    def __str__(self) -> str:
        if not self.rows:
            return "(empty result store)"
        headers = ["cell", "algorithm", *self.metrics]
        formatted = [
            [self._format(row.get(column)) for column in headers]
            for row in self.rows
        ]
        widths = [
            max(len(header), *(len(line[i]) for line in formatted))
            for i, header in enumerate(headers)
        ]
        lines = [
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "  ".join("-" * width for width in widths),
        ]
        for line in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        return "\n".join(lines)

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)


__all__ = [
    "STORE_VERSION",
    "DEFAULT_COMPARE_METRICS",
    "spec_hash",
    "provenance",
    "RunRecord",
    "ResultStore",
    "StoreCheck",
    "ComparisonTable",
    "compare_records",
    "compare_outcomes",
]
