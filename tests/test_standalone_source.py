"""Direct tests for ``StreamingEngine.standalone_source`` — the client half
of a ``repro serve`` deployment, constructed outside the in-process loop."""

import numpy as np
import pytest

from repro.core.streaming import StreamingEngine
from repro.datasets import make_gaussian_mixture
from repro.datasets.streams import iter_batches
from repro.distributed.network import SimulatedNetwork
from repro.stages.cr import FSSStage
from repro.stages.dr import JLStage
from repro.streaming.server import FoldResult, StreamingServer

D = 12
BATCH = 32


@pytest.fixture(scope="module")
def batches():
    points, _, _ = make_gaussian_mixture(n=8 * BATCH, d=D, k=3, seed=17)
    return list(iter_batches(points, BATCH))


def make_engine(**kwargs):
    defaults = dict(k=3, batch_size=BATCH, seed=29)
    defaults.update(kwargs)
    return StreamingEngine([JLStage(6), FSSStage(size=40)], **defaults)


def ingest_all(source, batches):
    return [source.ingest(batch, index) for index, batch in enumerate(batches)]


class TestHandshake:
    def test_two_instances_agree_on_dr_maps(self, batches):
        """Two processes building the same composition from the same seed
        run the same stream-start handshake, so their summaries land in the
        same reduced space — the property that keeps them mergeable."""
        updates_a = ingest_all(
            make_engine().standalone_source("source-0", batches[0].shape), batches
        )
        updates_b = ingest_all(
            make_engine().standalone_source("source-0", batches[0].shape), batches
        )
        for ua, ub in zip(updates_a, updates_b):
            assert ua.batch_index == ub.batch_index
            assert ua.retired_ids == ub.retired_ids
            assert [b.bucket_id for b in ua.added] == [b.bucket_id for b in ub.added]
            for ba, bb in zip(ua.added, ub.added):
                np.testing.assert_array_equal(ba.coreset.points, bb.coreset.points)
                np.testing.assert_array_equal(ba.coreset.weights, bb.coreset.weights)
                assert ba.coreset.shift == bb.coreset.shift

    def test_derived_dimensions_pinned_by_first_batch_shape(self, batches):
        source = make_engine().standalone_source("source-0", batches[0].shape)
        update = source.ingest(batches[0], 0)
        assert update.added, "first batch must ship a bucket"
        # The JL stage was pinned against the handshake shape: the wire
        # coreset lives in the 6-dimensional reduced space.
        assert update.added[0].coreset.points.shape[1] == 6

    def test_source_id_and_default_network(self, batches):
        source = make_engine().standalone_source("edge-7", batches[0].shape)
        assert source.source_id == "edge-7"
        source.ingest(batches[0], 0)
        # Transmissions went through the private default network, metered
        # under the flat streaming tags.
        tags = {m.tag for m in source.network.log.messages}
        assert {"stream-points", "stream-weights", "stream-header"} <= tags


class TestWireFold:
    def test_wire_fold_bit_parity_between_instances(self, batches):
        """Folding one standalone source's wire updates into a daemon-side
        server reproduces, bit for bit, the fold of an identically seeded
        second instance — delivery order and payloads are deterministic."""
        centers = []
        for _ in range(2):
            network = SimulatedNetwork()
            source = make_engine().standalone_source(
                "source-0", batches[0].shape, network=network
            )
            server = StreamingServer(k=3, n_init=2, max_iterations=50, seed=41)
            server.register(source.source_id)
            for index, batch in enumerate(batches):
                result = server.fold(source.ingest(batch, index))
                assert result is FoldResult.APPLIED
            assert server.watermark("source-0") == len(batches) - 1
            answer, coreset, _ = server.query()
            centers.append(answer.centers)
            assert coreset.size > 0
            assert network.log.total_scalars() > 0
        np.testing.assert_array_equal(centers[0], centers[1])

    def test_refolding_an_update_is_a_duplicate(self, batches):
        source = make_engine().standalone_source("source-0", batches[0].shape)
        server = StreamingServer(k=3, n_init=1, max_iterations=20, seed=3)
        server.register(source.source_id)
        update = source.ingest(batches[0], 0)
        assert server.fold(update) is FoldResult.APPLIED
        # At-least-once delivery: the replayed update acks without refolding.
        assert server.fold(update) is FoldResult.DUPLICATE
        assert server.watermark("source-0") == 0


class TestGuards:
    def test_window_mismatch_rejected_on_restore(self, batches):
        windowed = make_engine(window=4).standalone_source(
            "source-0", batches[0].shape
        )
        ingest_all(windowed, batches[:3])
        snapshot = windowed.snapshot()
        unwindowed = make_engine().standalone_source("source-0", batches[0].shape)
        with pytest.raises(ValueError, match="window"):
            unwindowed.restore(snapshot)

    def test_matching_window_restores(self, batches):
        windowed = make_engine(window=4).standalone_source(
            "source-0", batches[0].shape
        )
        ingest_all(windowed, batches[:3])
        snapshot = windowed.snapshot()
        twin = make_engine(window=4).standalone_source("source-0", batches[0].shape)
        twin.restore(snapshot)
        assert twin.batches_ingested == 3
        assert set(twin.tree.live_bucket_ids) == set(windowed.tree.live_bucket_ids)

    def test_tree_topology_refused(self, batches):
        engine = make_engine(topology="tree", fan_in=2)
        with pytest.raises(ValueError, match="star"):
            engine.standalone_source("source-0", batches[0].shape)

    def test_bare_fan_in_refused(self, batches):
        engine = make_engine(fan_in=2)
        with pytest.raises(ValueError, match="star"):
            engine.standalone_source("source-0", batches[0].shape)
