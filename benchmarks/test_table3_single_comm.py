"""E2 — Table 3: single-source normalized communication cost.

The paper reports the ratio between the bits transmitted by the data source
and the size of the raw dataset for NR (=1 by definition), FSS, JL+FSS,
FSS+JL, and JL+FSS+JL.

Expected shape (paper, MNIST / NeurIPS): NR = 1; all coreset-based summaries
are below 1e-2 of the raw size; the JL-based variants are cheaper than plain
FSS because they avoid shipping the d x t PCA basis.
"""

from __future__ import annotations

import time

import pytest

from bench_helpers import (
    print_table,
    record_result,
    run_once,
    single_source_factories,
    summarize_result,
)


def _table(runner, d):
    start = time.perf_counter()
    result = runner.run_single_source(single_source_factories(d, include_nr=True))
    wall = time.perf_counter() - start
    return result, wall, summarize_result(
        result, metrics=("normalized_communication", "normalized_cost")
    )


@pytest.mark.benchmark(group="table3")
def test_table3_mnist(benchmark, mnist_runner, mnist_dataset):
    points, _ = mnist_dataset
    result, wall, rows = run_once(benchmark, lambda: _table(mnist_runner, points.shape[1]))
    record_result("batch", result, wall_seconds=wall, prefix="mnist")
    print_table("Table 3 (MNIST-like): normalized communication cost", rows,
                ["normalized_communication", "normalized_cost"])
    table = result.table("normalized_communication")
    assert table["NR"] == pytest.approx(1.0)
    # All data-reduction pipelines transmit a small fraction of the raw data.
    for name, value in table.items():
        if name != "NR":
            assert value < 0.2, (name, value)
    # JL before FSS avoids shipping the d x t basis, hence cheaper than FSS.
    assert table["JL+FSS (Alg1)"] < table["FSS"]


@pytest.mark.benchmark(group="table3")
def test_table3_neurips(benchmark, neurips_runner, neurips_dataset):
    points, _ = neurips_dataset
    result, wall, rows = run_once(benchmark, lambda: _table(neurips_runner, points.shape[1]))
    record_result("batch", result, wall_seconds=wall, prefix="neurips")
    print_table("Table 3 (NeurIPS-like): normalized communication cost", rows,
                ["normalized_communication", "normalized_cost"])
    table = result.table("normalized_communication")
    assert table["NR"] == pytest.approx(1.0)
    for name, value in table.items():
        if name != "NR":
            assert value < 0.2, (name, value)
    assert table["JL+FSS (Alg1)"] < table["FSS"]
    # For the higher-dimensional dataset the twice-projected summary of
    # Algorithm 3 is the cheapest of the FSS-based pipelines (paper: 2.84e-3
    # vs 3.6e-3), because the transmitted coreset no longer carries any
    # d-dependent component.
    assert table["JL+FSS+JL (Alg3)"] <= table["FSS"]
