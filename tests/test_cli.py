"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro import api
from repro.cli import (
    ALGORITHMS,
    build_parser,
    build_report_parser,
    build_run_parser,
    build_stream_parser,
    build_sweep_parser,
    experiment_spec_from_args,
    main,
    run,
    run_stream,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "mnist"
        assert args.algorithm == "jl-fss-jl"
        assert args.k == 2
        assert args.runs == 1

    def test_all_algorithms_accepted(self):
        parser = build_parser()
        for name in ALGORITHMS:
            args = parser.parse_args(["--algorithm", name])
            assert args.algorithm == name

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "quantum"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestRun:
    def test_single_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss", "--coreset-size", "60", "--runs", "1",
            "--seed", "3",
        ])
        row = run(args)
        captured = capsys.readouterr().out
        assert "normalized k-means cost" in captured
        assert row["normalized_cost"] > 0
        assert 0 < row["normalized_communication"] < 1

    def test_multi_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "neurips", "--n", "240", "--d", "120",
            "--algorithm", "bklw", "--sources", "3", "--total-samples", "40",
            "--pca-rank", "5", "--runs", "1", "--seed", "4",
        ])
        row = run(args)
        assert row["normalized_cost"] > 0
        assert "normalized communication" in capsys.readouterr().out

    def test_quantized_run(self):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss-jl", "--coreset-size", "60",
            "--quantize-bits", "8", "--seed", "5",
        ])
        row = run(args)
        assert row["normalized_communication"] < 1

    def test_main_returns_zero(self):
        assert main([
            "--dataset", "mnist", "--n", "200", "--d", "49",
            "--algorithm", "nr", "--runs", "1", "--seed", "6",
        ]) == 0


class TestStreamSubcommand:
    def test_defaults(self):
        args = build_stream_parser().parse_args([])
        assert args.algorithm == "stream-fss"
        assert args.batch_size == 512
        assert args.window is None
        assert args.query_every is None

    def test_only_streaming_algorithms_accepted(self):
        parser = build_stream_parser()
        assert parser.parse_args(["--algorithm", "stream-jl-ss"]).algorithm == "stream-jl-ss"
        with pytest.raises(SystemExit):
            parser.parse_args(["--algorithm", "jl-fss"])

    def test_stream_run_reports_queries(self, capsys):
        args = build_stream_parser().parse_args([
            "--dataset", "mnist", "--n", "600", "--d", "64",
            "--algorithm", "stream-fss", "--coreset-size", "40",
            "--batch-size", "100", "--query-every", "2", "--sources", "2",
            "--seed", "7",
        ])
        row = run_stream(args)
        captured = capsys.readouterr().out
        assert "norm. cost" in captured
        assert row["normalized_cost"] > 0
        assert row["queries"] >= 2
        assert row["max_live_buckets"] >= 1

    def test_windowed_stream_run(self):
        args = build_stream_parser().parse_args([
            "--dataset", "mnist", "--n", "600", "--d", "36",
            "--algorithm", "stream-uniform-qt", "--coreset-size", "30",
            "--batch-size", "100", "--window", "2", "--sources", "2",
            "--seed", "8",
        ])
        row = run_stream(args)
        assert row["normalized_communication"] > 0

    def test_main_dispatches_stream(self):
        assert main([
            "stream", "--dataset", "mnist", "--n", "400", "--d", "25",
            "--algorithm", "stream-jl-ss", "--coreset-size", "30",
            "--jl-dimension", "10", "--batch-size", "100", "--seed", "9",
        ]) == 0


# ---------------------------------------------------------------------------
# The spec adapter and the rebuilt run/sweep/report subcommands.
# ---------------------------------------------------------------------------

SPEC_TOML = """\
runs = 1
seed = 3

[pipeline]
algorithm = "jl-fss"
k = 2
coreset_size = 60

[data]
name = "mnist"
n = 300
d = 64
"""

SWEEP_TOML = """\
[base]
runs = 1
seed = 3

[base.pipeline]
algorithm = "jl-fss"
k = 2
coreset_size = 60

[base.data]
name = "mnist"
n = 200
d = 30

[axes]
quantize_bits = [8, 12]
"""


class TestSpecAdapter:
    def test_flat_flags_build_a_valid_spec(self):
        args = build_parser().parse_args([
            "--algorithm", "jl-fss", "--n", "300", "--d", "64",
            "--coreset-size", "60", "--runs", "2", "--seed", "3",
        ])
        spec = experiment_spec_from_args(args)
        assert spec.pipeline.algorithm == "jl-fss"
        assert spec.pipeline.coreset_size == 60
        # The flat form always carries both kinds' defaults; the adapter
        # drops the foreign one (total_samples for a single-source kind).
        assert spec.pipeline.total_samples is None
        assert spec.num_sources is None
        assert spec.runs == 2 and spec.seed == 3

    def test_multi_source_flags_set_num_sources(self):
        args = build_parser().parse_args([
            "--algorithm", "bklw", "--sources", "4", "--total-samples", "50",
        ])
        spec = experiment_spec_from_args(args)
        assert spec.num_sources == 4
        assert spec.pipeline.total_samples == 50
        assert spec.pipeline.coreset_size is None

    def test_network_flags_reach_the_spec(self):
        args = build_parser().parse_args([
            "--algorithm", "bklw", "--net-preset", "lossy", "--loss", "0.1",
            "--dropout", "2:1",
        ])
        spec = experiment_spec_from_args(args)
        assert spec.network.preset == "lossy"
        assert spec.network.loss == pytest.approx(0.1)
        assert spec.network.dropout == ("2:1",)

    def test_bad_dropout_is_a_system_exit(self):
        args = build_parser().parse_args([
            "--algorithm", "bklw", "--dropout", "banana",
        ])
        with pytest.raises(SystemExit):
            experiment_spec_from_args(args)


class TestRunSubcommand:
    def test_spec_file_run(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.toml"
        spec_path.write_text(SPEC_TOML)
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "normalized k-means cost" in out
        assert "algorithm: jl-fss" in out

    def test_spec_file_with_flag_overrides_and_store(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.toml"
        spec_path.write_text(SPEC_TOML)
        store_path = tmp_path / "results" / "run.jsonl"
        assert main(["run", str(spec_path), "--runs", "2",
                     "--store", str(store_path)]) == 0
        records = api.ResultStore(store_path).load()
        assert len(records) == 1
        assert records[0].spec["runs"] == 2          # the override won
        assert len(records[0].evaluations) == 2
        assert "stored run record" in capsys.readouterr().out

    def test_flags_only_run(self, capsys):
        assert main(["run", "--algorithm", "uniform", "--n", "200",
                     "--d", "40", "--coreset-size", "50", "--seed", "1"]) == 0
        assert "algorithm: uniform" in capsys.readouterr().out

    def test_json_spec_run(self, tmp_path):
        spec = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="uniform", k=2,
                                        coreset_size=40),
            data=api.DataSpec(name="mnist", n=200, d=30),
            seed=2,
        )
        path = api.dump_spec(spec, tmp_path / "spec.json")
        assert main(["run", str(path)]) == 0

    def test_sweep_file_redirected(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(SWEEP_TOML)
        with pytest.raises(SystemExit, match="repro sweep"):
            main(["run", str(path)])

    def test_run_parser_suppresses_defaults(self):
        args = build_run_parser().parse_args(["spec.toml"])
        assert not hasattr(args, "k")
        assert not hasattr(args, "runs")


class TestSweepSubcommand:
    def test_sweep_end_to_end(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(SWEEP_TOML)
        store_path = tmp_path / "results" / "sweep.jsonl"
        assert main(["sweep", str(spec_path),
                     "--store", str(store_path),
                     "--cache-dir", str(tmp_path / "stage_cache")]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "quantize_bits=8" in out and "quantize_bits=12" in out
        assert "stage cache" in out and "miss(es)" in out
        records = api.ResultStore(store_path).load()
        assert len(records) == 2
        assert records[0].run_seeds == records[1].run_seeds  # paired seeds
        # Cache accounting lives in the journal (not the records, which
        # must stay identical between cold and resumed runs).
        journal = api.SweepJournal.for_store(store_path)
        done = [e for e in journal.entries() if e["event"] == "done"]
        assert len(done) == 2
        assert sum(e["cache"]["misses"] for e in done) > 0

    def test_plain_spec_runs_as_one_cell(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.toml"
        spec_path.write_text(SPEC_TOML)
        assert main(["sweep", str(spec_path), "--store", "", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "1 cell(s)" in out
        assert "stage cache" not in out  # --no-cache runs (and prints) none

    def test_warm_rerun_hits_the_cache(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(SWEEP_TOML)
        cache_dir = str(tmp_path / "stage_cache")
        assert main(["sweep", str(spec_path), "--store", "",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["sweep", str(spec_path), "--store", "",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "0 miss(es)" in out
        assert "100% hit rate" in out
        assert "2/2 cell(s) reused cached stages" in out

    def test_sweep_parser_defaults(self):
        args = build_sweep_parser().parse_args(["sweep.toml"])
        assert args.store == "results/sweep.jsonl"
        assert args.jobs is None
        assert args.cache is True
        assert args.cache_dir == "results/stage_cache"


class TestCacheSubcommand:
    def _prime(self, tmp_path):
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(SWEEP_TOML)
        cache_dir = tmp_path / "stage_cache"
        main(["sweep", str(spec_path), "--store", "",
              "--cache-dir", str(cache_dir)])
        return cache_dir

    def test_cache_stats(self, tmp_path, capsys):
        cache_dir = self._prime(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "stage cache" in out and "entries" in out

    def test_cache_gc_to_budget_and_clear(self, tmp_path, capsys):
        cache_dir = self._prime(tmp_path)
        before = len(list(cache_dir.glob("*.npz")))
        assert before > 0
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(cache_dir),
                     "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert len(list(cache_dir.glob("*.npz"))) < before
        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("*.npz")) == []

    def test_cache_gc_rejects_negative_budget(self, tmp_path):
        with pytest.raises(SystemExit, match="max-bytes"):
            main(["cache", "gc", "--cache-dir", str(tmp_path),
                  "--max-bytes", "-5"])

    def test_cache_stats_on_missing_directory(self, tmp_path, capsys):
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestReportSubcommand:
    @pytest.fixture()
    def store_path(self, tmp_path):
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(SWEEP_TOML)
        store_path = tmp_path / "sweep.jsonl"
        main(["sweep", str(spec_path), "--store", str(store_path),
              "--cache-dir", str(tmp_path / "stage_cache")])
        return store_path

    def test_report_table(self, store_path, capsys):
        capsys.readouterr()
        assert main(["report", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "mean_normalized_cost" in out
        assert "quantize_bits=8" in out

    def test_report_cdf(self, store_path, capsys):
        capsys.readouterr()
        assert main(["report", str(store_path),
                     "--cdf", "normalized_cost"]) == 0
        out = capsys.readouterr().out
        assert "empirical CDF" in out
        assert "@1.00" in out

    def test_report_missing_store(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "none.jsonl")]) == 0
        assert "no records" in capsys.readouterr().out

    def test_report_unknown_cdf_metric(self, store_path):
        with pytest.raises(SystemExit, match="normalized_cost"):
            main(["report", str(store_path), "--cdf", "bogus_metric"])

    def test_report_parser_defaults(self):
        args = build_report_parser().parse_args(["store.jsonl"])
        assert args.cdf is None
        assert "mean_normalized_cost" in args.metrics


class TestCleanCliErrors:
    """User input mistakes must exit with a one-line message, not a
    traceback (code-review regression tests)."""

    def test_missing_spec_file(self):
        with pytest.raises(SystemExit, match="cannot read spec file"):
            main(["run", "/nonexistent/spec.toml"])

    def test_malformed_spec_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("this is not = [valid toml\n")
        with pytest.raises(SystemExit, match="invalid spec"):
            main(["run", str(path)])

    def test_invalid_spec_values(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"pipeline": {"algorithm": "fss", "k": 0}}
        ))
        with pytest.raises(SystemExit, match="invalid spec"):
            main(["run", str(path)])

    def test_invalid_flag_override_over_spec(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(SPEC_TOML)
        with pytest.raises(SystemExit, match="invalid override"):
            main(["run", str(path), "--loss", "1.5"])

    def test_invalid_flags_only_run(self):
        with pytest.raises(SystemExit, match="invalid experiment flags"):
            main(["run", "--algorithm", "fss", "--k", "0"])

    def test_sweep_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read spec file"):
            main(["sweep", "/nonexistent/sweep.toml"])

    def test_typed_kind_foreign_knob_flag_rejected(self):
        # fss is single-source; an explicitly typed --total-samples must
        # raise, not be silently dropped (the original footgun).
        with pytest.raises(SystemExit, match="total_samples"):
            main(["run", "--algorithm", "fss", "--total-samples", "99"])

    def test_report_unknown_metrics_column(self, tmp_path):
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.append(api.RunRecord(
            algorithm="fss", spec={"pipeline": {"algorithm": "fss", "k": 2}},
            summary={"mean_normalized_cost": 1.0},
        ))
        with pytest.raises(SystemExit, match="available"):
            main(["report", str(store.path), "--metrics", "bogus"])

    def test_sweep_cell_expansion_error(self, tmp_path):
        # Loads fine, fails at expansion: algorithm axis sweeps onto a
        # multi-source kind but the base has no num_sources.
        path = tmp_path / "sweep.toml"
        path.write_text(
            "[base.pipeline]\nalgorithm = \"jl-fss\"\nk = 2\n"
            "[base.data]\nname = \"mnist\"\nn = 200\nd = 30\n"
            "[axes]\nalgorithm = [\"bklw\"]\n"
        )
        with pytest.raises(SystemExit, match="invalid sweep"):
            main(["sweep", str(path)])

    def test_cdf_rejects_non_numeric_metric(self, tmp_path):
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.append(api.RunRecord(
            algorithm="fss", spec={"pipeline": {"algorithm": "fss", "k": 2}},
            summary={"mean_normalized_cost": 1.0},
            evaluations=({"algorithm": "FSS", "normalized_cost": 1.0},),
        ))
        with pytest.raises(SystemExit, match="not a numeric per-run metric"):
            main(["report", str(store.path), "--cdf", "algorithm"])

    def test_toml_spec_without_tomllib(self, tmp_path, monkeypatch):
        # On Python < 3.11 load_spec raises RuntimeError for .toml files;
        # the CLI must turn that into a clean exit, not a traceback.
        from repro.api import serialization
        monkeypatch.setattr(serialization, "tomllib", None)
        path = tmp_path / "spec.toml"
        path.write_text(SPEC_TOML)
        with pytest.raises(SystemExit, match="cannot load spec"):
            main(["run", str(path)])

    def test_cdf_skips_records_without_evaluations(self, tmp_path, capsys):
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.append(api.RunRecord(
            algorithm="fss", spec={"pipeline": {"algorithm": "fss", "k": 2}},
            summary={"mean_normalized_cost": 1.0,
                     "mean_normalized_communication": 0.1,
                     "mean_source_seconds": 0.0},
        ))
        assert main(["report", str(store.path),
                     "--cdf", "normalized_cost"]) == 0
        assert "no per-run evaluations" in capsys.readouterr().out
