"""Seeding strategies for k-means: k-means++ and D²-sampling.

k-means++ provides an ``O(log k)``-approximate initialisation in expectation
and is used by the weighted Lloyd solver.  Plain D²-sampling (sampling
proportional to the current squared distance without updating the running
minimum per chosen point) is exposed separately because the bicriteria
approximation of Aggarwal–Deshpande–Kannan (paper reference [36]/[42])
repeatedly draws batches with it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.linalg import pairwise_squared_distances
from repro.utils.random import SeedLike, as_generator
from repro.utils.validation import check_matrix, check_positive_int, check_weights


def _weighted_choice(rng: np.random.Generator, probabilities: np.ndarray) -> int:
    """Draw one index according to ``probabilities`` (assumed to sum to 1)."""
    return int(rng.choice(probabilities.shape[0], p=probabilities))


def kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """k-means++ seeding on a weighted point set.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    k:
        Number of centers to select (capped at ``n``).
    weights:
        Optional non-negative point weights; the selection probability of a
        point is proportional to ``weight * D(point)^2``.
    seed:
        RNG seed or generator.

    Returns
    -------
    numpy.ndarray
        ``(k, d)`` array of selected centers (actual data points).
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n = points.shape[0]
    weights = check_weights(weights, n)
    rng = as_generator(seed)
    k = min(k, n)

    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("weights must contain at least one positive entry")

    first = _weighted_choice(rng, weights / total_weight)
    chosen = [first]
    closest = pairwise_squared_distances(points, points[[first]]).ravel()

    for _ in range(1, k):
        scores = weights * closest
        total = scores.sum()
        if total <= 0:
            # All remaining mass is on already-covered points; pick uniformly
            # among not-yet-chosen indices to keep centers distinct if possible.
            remaining = np.setdiff1d(np.arange(n), np.asarray(chosen))
            pick = int(rng.choice(remaining)) if remaining.size else int(rng.integers(n))
        else:
            pick = _weighted_choice(rng, scores / total)
        chosen.append(pick)
        new_d = pairwise_squared_distances(points, points[[pick]]).ravel()
        np.minimum(closest, new_d, out=closest)

    return points[np.asarray(chosen, dtype=int)].copy()


def d2_sampling(
    points: np.ndarray,
    current_centers: Optional[np.ndarray],
    batch_size: int,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a batch of points with probability proportional to weighted D².

    Used by the adaptive-sampling bicriteria algorithm: given the centers
    selected so far, each point is sampled with probability proportional to
    its weighted squared distance to the nearest current center (uniformly by
    weight if no centers have been selected yet).

    Returns
    -------
    (indices, sampled_points):
        Indices into ``points`` (with replacement) and the corresponding rows.
    """
    points = check_matrix(points, "points")
    batch_size = check_positive_int(batch_size, "batch_size")
    n = points.shape[0]
    weights = check_weights(weights, n)
    rng = as_generator(seed)

    if current_centers is None or len(current_centers) == 0:
        scores = weights.copy()
    else:
        centers = check_matrix(current_centers, "current_centers")
        closest = pairwise_squared_distances(points, centers).min(axis=1)
        scores = weights * closest

    total = scores.sum()
    if total <= 0:
        probabilities = weights / weights.sum()
    else:
        probabilities = scores / total
    indices = rng.choice(n, size=batch_size, replace=True, p=probabilities)
    return indices, points[indices].copy()
