"""E1 — Figure 1: single-source normalized k-means cost and running time.

The paper plots, for MNIST and NeurIPS, the CDF over 10 Monte-Carlo runs of
(a) the normalized k-means cost and (b) the running time at the data source
for FSS, JL+FSS (Alg. 1), FSS+JL (Alg. 2), and JL+FSS+JL (Alg. 3).

Expected shape (paper): all four algorithms reach a similar normalized cost
(1.0–1.1 on MNIST, 1.0–1.25 on NeurIPS); JL+FSS and JL+FSS+JL are clearly
faster than FSS and FSS+JL because the expensive coreset step runs on
dimension-reduced data.
"""

from __future__ import annotations

import pytest

from bench_helpers import print_cdf, print_table, run_once, single_source_factories, summarize_result


def _run(runner, d):
    return runner.run_single_source(single_source_factories(d))


@pytest.mark.benchmark(group="fig1")
def test_fig1_mnist(benchmark, mnist_runner, mnist_dataset):
    points, _ = mnist_dataset
    result = run_once(benchmark, lambda: _run(mnist_runner, points.shape[1]))
    print_cdf(
        "Fig. 1(a) MNIST-like: normalized k-means cost",
        {label: result.metric_samples(label, "normalized_cost") for label in result.evaluations},
    )
    print_cdf(
        "Fig. 1(a) MNIST-like: data-source running time (s)",
        {label: result.metric_samples(label, "source_seconds") for label in result.evaluations},
    )
    print_table(
        "Fig. 1(a) MNIST-like: means",
        summarize_result(result),
        ["normalized_cost", "normalized_communication", "source_seconds"],
    )
    summary = result.summary()
    # Shape check from the paper: the DR-first pipelines are not slower than
    # the CR-first/FSS pipelines, and every algorithm stays within a modest
    # factor of the optimal cost.
    assert summary["JL+FSS (Alg1)"].mean_source_seconds <= summary["FSS"].mean_source_seconds * 1.5
    assert all(s.mean_normalized_cost < 2.0 for s in summary.values())


@pytest.mark.benchmark(group="fig1")
def test_fig1_neurips(benchmark, neurips_runner, neurips_dataset):
    points, _ = neurips_dataset
    result = run_once(benchmark, lambda: _run(neurips_runner, points.shape[1]))
    print_cdf(
        "Fig. 1(b) NeurIPS-like: normalized k-means cost",
        {label: result.metric_samples(label, "normalized_cost") for label in result.evaluations},
    )
    print_cdf(
        "Fig. 1(b) NeurIPS-like: data-source running time (s)",
        {label: result.metric_samples(label, "source_seconds") for label in result.evaluations},
    )
    print_table(
        "Fig. 1(b) NeurIPS-like: means",
        summarize_result(result),
        ["normalized_cost", "normalized_communication", "source_seconds"],
    )
    summary = result.summary()
    # Paper observation (iii): for the higher-dimensional dataset, JL+FSS is
    # substantially faster than FSS+JL at similar cost and communication.
    assert summary["JL+FSS (Alg1)"].mean_source_seconds <= summary["FSS+JL (Alg2)"].mean_source_seconds
    assert all(s.mean_normalized_cost < 2.5 for s in summary.values())
