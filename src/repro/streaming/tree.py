"""The merge-and-reduce coreset tree: bounded-memory stream summarization.

The classic merge-and-reduce scheme (Bentley–Saxe, as used by every
streaming-coreset construction since Har-Peled–Mazumdar): each arriving batch
is compressed into a level-0 *bucket* (a generalized coreset, Definition 3.2
of the paper); whenever two buckets of the same level exist, they are merged
(coreset union — exact, by the mergeability of coresets) and *reduced* back
to bucket size by re-applying a CR stage, producing one bucket one level up.
After ``b`` batches at most ``⌈log₂ b⌉ + 1`` buckets are alive, so a source's
resident memory is ``O(coreset_size · log(n / batch_size))`` while the union
of the live buckets summarizes the entire prefix of the stream.

Sliding-window mode (``window=W`` batches) adds two rules:

* a merge is *blocked* when the merged bucket would span more than ``W``
  batches — the older operand is frozen (it only awaits expiry), so no
  bucket ever covers a range that cannot fully leave the window;
* a bucket *expires* — is dropped from the tree — as soon as its entire
  batch range ``[first_batch, last_batch]`` has left the window, i.e. when
  ``last_batch ≤ current_batch − W``.

Buckets whose range straddles the window boundary are retained whole (the
standard windowed-coreset approximation); because merges are span-capped,
every bucket fully expires at most ``W`` steps after its newest batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cr.coreset import Coreset, merge_coresets
from repro.utils.validation import check_positive_int


@dataclass
class Bucket:
    """One node of the merge-and-reduce tree.

    Attributes
    ----------
    bucket_id:
        Identifier unique within one tree; the incremental wire protocol
        addresses buckets by id (add / retire).
    level:
        Number of merge generations below this bucket (0 for a fresh batch).
    coreset:
        The generalized coreset summarizing the covered batches.
    first_batch, last_batch:
        Inclusive range of batch indices this bucket covers.
    frozen:
        Sliding-window mode only: True once a span-capped merge was blocked
        on this bucket — it will never merge again, only expire.
    """

    bucket_id: int
    level: int
    coreset: Coreset
    first_batch: int
    last_batch: int
    frozen: bool = False

    @property
    def span(self) -> int:
        """Number of batches covered (inclusive range width)."""
        return self.last_batch - self.first_batch + 1


@dataclass
class TreeDelta:
    """Net change of one tree operation: buckets created and ids dropped."""

    added: List[Bucket] = field(default_factory=list)
    removed_ids: List[int] = field(default_factory=list)


class CoresetTree:
    """Bounded-memory merge-and-reduce tree over a stream of batch coresets.

    Parameters
    ----------
    reduce:
        ``Coreset -> Coreset`` re-compression applied to every merged pair
        (the streaming engine passes the composition's CR stage); must not
        change the coreset's space.
    window:
        Optional sliding window, in batches.  ``None`` streams over the full
        prefix (no expiry).
    """

    def __init__(
        self,
        reduce: Callable[[Coreset], Coreset],
        window: Optional[int] = None,
    ) -> None:
        self._reduce = reduce
        self.window = None if window is None else check_positive_int(window, "window")
        self._buckets: Dict[int, Bucket] = {}
        self._next_id = 0
        self.merges = 0
        self.max_live_buckets = 0
        self.max_resident_points = 0

    # ------------------------------------------------------------ properties
    @property
    def live_buckets(self) -> List[Bucket]:
        """Live buckets, oldest first."""
        return sorted(self._buckets.values(), key=lambda b: b.first_batch)

    @property
    def live_bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def live_bucket_ids(self) -> List[int]:
        return sorted(self._buckets)

    @property
    def resident_points(self) -> int:
        """Total coreset points currently held — the memory the tree bounds."""
        return sum(b.coreset.size for b in self._buckets.values())

    def merged_coreset(self) -> Coreset:
        """Union of all live buckets (the source's current stream summary)."""
        if not self._buckets:
            raise RuntimeError("the tree holds no buckets (empty or fully expired)")
        return merge_coresets(b.coreset for b in self.live_buckets)

    # ------------------------------------------------------------------ API
    def insert(self, coreset: Coreset, batch_index: int) -> TreeDelta:
        """Add one batch coreset at ``batch_index`` and cascade merges.

        Returns the *net* delta (buckets alive now that were not alive
        before, ids alive before that are gone) — intermediate buckets
        created and consumed within one cascade never appear, which is what
        makes the delta directly transmittable as an incremental summary.
        """
        before = set(self._buckets)
        leaf = Bucket(
            bucket_id=self._allocate_id(),
            level=0,
            coreset=coreset,
            first_batch=int(batch_index),
            last_batch=int(batch_index),
        )
        self._buckets[leaf.bucket_id] = leaf
        self._cascade(leaf.level)
        self._track_peaks()
        return self._delta_since(before)

    def expire(self, current_batch: int) -> List[int]:
        """Drop buckets whose whole range left the window; return their ids.

        No-op (empty list) when the tree is unwindowed.
        """
        if self.window is None:
            return []
        cutoff = int(current_batch) - self.window
        expired = [bid for bid, b in self._buckets.items() if b.last_batch <= cutoff]
        for bid in expired:
            del self._buckets[bid]
        return sorted(expired)

    # ------------------------------------------------------- snapshotting
    def snapshot(self) -> dict:
        """JSON-able snapshot of the tree's complete mutable state.

        Captures every live bucket (coresets serialized exactly — float64
        survives the list round trip bit-for-bit), the id allocator, and
        the accounting counters.  The ``reduce`` callable and ``window``
        are *configuration*, re-supplied by the constructor on restore.
        """
        return {
            "window": self.window,
            "next_id": self._next_id,
            "merges": self.merges,
            "max_live_buckets": self.max_live_buckets,
            "max_resident_points": self.max_resident_points,
            "buckets": [
                {
                    "bucket_id": b.bucket_id,
                    "level": b.level,
                    "first_batch": b.first_batch,
                    "last_batch": b.last_batch,
                    "frozen": b.frozen,
                    "coreset": b.coreset.to_state(),
                }
                for b in self.live_buckets
            ],
        }

    def restore(self, snapshot: dict) -> "CoresetTree":
        """Replace this tree's state with a :meth:`snapshot`'s.

        The tree must be *configured* compatibly (same ``window``) — the
        snapshot carries state, not configuration; a mismatch raises before
        any state is touched.  Returns ``self`` for chaining.
        """
        snap_window = snapshot.get("window")
        if snap_window != self.window:
            raise ValueError(
                f"snapshot was taken with window={snap_window!r}, this tree "
                f"has window={self.window!r}; construct the tree with the "
                f"snapshot's configuration before restoring"
            )
        self._buckets = {
            int(b["bucket_id"]): Bucket(
                bucket_id=int(b["bucket_id"]),
                level=int(b["level"]),
                coreset=Coreset.from_state(b["coreset"]),
                first_batch=int(b["first_batch"]),
                last_batch=int(b["last_batch"]),
                frozen=bool(b.get("frozen", False)),
            )
            for b in snapshot.get("buckets", ())
        }
        self._next_id = int(snapshot.get("next_id", 0))
        self.merges = int(snapshot.get("merges", 0))
        self.max_live_buckets = int(snapshot.get("max_live_buckets", 0))
        self.max_resident_points = int(snapshot.get("max_resident_points", 0))
        return self

    # ------------------------------------------------------------ internals
    def _allocate_id(self) -> int:
        bid = self._next_id
        self._next_id += 1
        return bid

    def _mergeable_at(self, level: int) -> List[Bucket]:
        return sorted(
            (b for b in self._buckets.values() if b.level == level and not b.frozen),
            key=lambda b: b.first_batch,
        )

    def _cascade(self, level: int) -> None:
        # Invariant: every level holds at most one unfrozen bucket between
        # insertions, so each merge can only overflow the next level up.
        while True:
            peers = self._mergeable_at(level)
            if len(peers) < 2:
                return
            older, newer = peers[0], peers[1]
            span = newer.last_batch - older.first_batch + 1
            if self.window is not None and span > self.window:
                # Span-capped: the older bucket can never merge again inside
                # the window — freeze it until it expires.
                older.frozen = True
                continue
            merged = older.coreset.merged_with(newer.coreset)
            reduced = self._reduce(merged)
            del self._buckets[older.bucket_id]
            del self._buckets[newer.bucket_id]
            parent = Bucket(
                bucket_id=self._allocate_id(),
                level=level + 1,
                coreset=reduced,
                first_batch=older.first_batch,
                last_batch=newer.last_batch,
            )
            self._buckets[parent.bucket_id] = parent
            self.merges += 1
            level += 1

    def _delta_since(self, before: set) -> TreeDelta:
        after = set(self._buckets)
        return TreeDelta(
            added=[self._buckets[bid] for bid in sorted(after - before)],
            removed_ids=sorted(before - after),
        )

    def _track_peaks(self) -> None:
        self.max_live_buckets = max(self.max_live_buckets, len(self._buckets))
        self.max_resident_points = max(self.max_resident_points, self.resident_points)
