"""BKLW — the distributed FSS baseline (paper ref. [27], Algorithm 1).

BKLW = disPCA followed by disSS on the dimension-reduced shards.  The paper
uses it as the state-of-the-art baseline for the multi-source setting
(Theorem 5.3) and improves on it by prepending a JL projection (Algorithm 4).

When used as a *CR method* inside Algorithm 4 (the "BKLW-based CR method" of
Lemma 5.1), only the two coreset-construction steps run — the final k-means
solve is left to the caller's server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cr.coreset import Coreset
from repro.distributed.dispca import DisPCAResult, DistributedPCA
from repro.distributed.disss import DisSSResult, DistributedSensitivitySampler, disss_sample_size
from repro.distributed.node import DataSourceNode
from repro.distributed.server import EdgeServer
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class BKLWResult:
    """Outcome of the BKLW coreset construction.

    Attributes
    ----------
    coreset:
        The merged coreset held at the server.
    dispca:
        Result of the distributed PCA stage.
    disss:
        Result of the distributed sensitivity sampling stage.
    transmitted_scalars:
        Total uplink scalars of both stages.
    """

    coreset: Coreset
    dispca: DisPCAResult
    disss: DisSSResult

    @property
    def transmitted_scalars(self) -> int:
        return self.dispca.transmitted_scalars + self.disss.transmitted_scalars


class BKLWCoreset:
    """BKLW coreset construction (disPCA + disSS).

    Parameters
    ----------
    k:
        Number of clusters.
    epsilon:
        Accuracy parameter shared by both stages.
    delta:
        Failure probability (used only when the sample budget is derived).
    pca_rank:
        Override for the disPCA rank ``t1 = t2``.
    total_samples:
        Override for the disSS global sample budget.
    quantizer:
        Optional rounding quantizer applied to the outgoing summaries
        (BKLW+QT of Section 6).
    jobs:
        Worker threads for the per-source compute steps of both stages
        (results are identical for any value).
    """

    def __init__(
        self,
        k: int,
        epsilon: float = 1.0 / 3.0,
        delta: float = 0.1,
        pca_rank: Optional[int] = None,
        total_samples: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon", high=1.0 / 3.0, inclusive_high=True)
        self.delta = check_fraction(delta, "delta")
        self.pca_rank = pca_rank
        self.total_samples = total_samples
        self.quantizer = quantizer
        self.jobs = jobs

    def resolved_samples(self, sources: Sequence[DataSourceNode]) -> int:
        if self.total_samples is not None:
            return check_positive_int(self.total_samples, "total_samples")
        d = sources[0].dimension
        m = len(sources)
        return disss_sample_size(self.k, d, m, self.epsilon, self.delta)

    def build(self, sources: Sequence[DataSourceNode], server: EdgeServer) -> BKLWResult:
        """Run disPCA then disSS over the (possibly JL-projected) shards."""
        if not sources:
            raise ValueError("BKLW requires at least one data source")

        dispca = DistributedPCA(
            k=self.k, epsilon=self.epsilon, rank=self.pca_rank, jobs=self.jobs
        )
        dispca_result = dispca.run(sources, server)

        disss = DistributedSensitivitySampler(
            k=self.k,
            total_samples=self.resolved_samples(sources),
            quantizer=self.quantizer,
            jobs=self.jobs,
        )
        disss_result = disss.run(sources, server)

        return BKLWResult(
            coreset=disss_result.coreset,
            dispca=dispca_result,
            disss=disss_result,
        )
