"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import ALGORITHMS, build_parser, main, run


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "mnist"
        assert args.algorithm == "jl-fss-jl"
        assert args.k == 2
        assert args.runs == 1

    def test_all_algorithms_accepted(self):
        parser = build_parser()
        for name in ALGORITHMS:
            args = parser.parse_args(["--algorithm", name])
            assert args.algorithm == name

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithm", "quantum"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestRun:
    def test_single_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss", "--coreset-size", "60", "--runs", "1",
            "--seed", "3",
        ])
        row = run(args)
        captured = capsys.readouterr().out
        assert "normalized k-means cost" in captured
        assert row["normalized_cost"] > 0
        assert 0 < row["normalized_communication"] < 1

    def test_multi_source_run(self, capsys):
        args = build_parser().parse_args([
            "--dataset", "neurips", "--n", "240", "--d", "120",
            "--algorithm", "bklw", "--sources", "3", "--total-samples", "40",
            "--pca-rank", "5", "--runs", "1", "--seed", "4",
        ])
        row = run(args)
        assert row["normalized_cost"] > 0
        assert "normalized communication" in capsys.readouterr().out

    def test_quantized_run(self):
        args = build_parser().parse_args([
            "--dataset", "mnist", "--n", "300", "--d", "64",
            "--algorithm", "jl-fss-jl", "--coreset-size", "60",
            "--quantize-bits", "8", "--seed", "5",
        ])
        row = run(args)
        assert row["normalized_communication"] < 1

    def test_main_returns_zero(self):
        assert main([
            "--dataset", "mnist", "--n", "200", "--d", "49",
            "--algorithm", "nr", "--runs", "1", "--seed", "6",
        ]) == 0
