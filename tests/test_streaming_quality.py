"""Acceptance tests for the streaming subsystem (ISSUE 2 criteria).

Streaming FSS on a 50k-point Gaussian mixture must reach a normalized
k-means cost within 10% of the one-shot FSS pipeline while per-source
resident memory stays ``O(coreset_size · log(n / batch_size))`` — verified
through the tree's live-bucket accounting — and sliding-window mode must
drop expired batches from both the cost and the communication totals.
"""

import math

import numpy as np
import pytest

from repro.core.pipelines import FSSPipeline
from repro.core.streaming import StreamingEngine
from repro.datasets import make_gaussian_mixture
from repro.kmeans.cost import kmeans_cost
from repro.metrics.evaluation import EvaluationContext
from repro.stages.cr import FSSStage

N = 50_000
D = 16
K = 4
CORESET_SIZE = 400
BATCH_SIZE = 2048
NUM_SOURCES = 2


@pytest.fixture(scope="module")
def mixture():
    points, _, _ = make_gaussian_mixture(n=N, d=D, k=K, separation=5.0, seed=40)
    return points


@pytest.fixture(scope="module")
def context(mixture):
    return EvaluationContext.build(mixture, K, n_init=5, seed=41)


def normalized(points, centers, context):
    return kmeans_cost(points, centers) / context.reference_cost


@pytest.fixture(scope="module")
def streamed_report(mixture):
    engine = StreamingEngine(
        [FSSStage(size=CORESET_SIZE)],
        k=K,
        batch_size=BATCH_SIZE,
        seed=42,
    )
    shards = np.array_split(mixture, NUM_SOURCES)
    return engine.run(shards)


def test_streaming_fss_cost_within_10_percent_of_one_shot(
    mixture, context, streamed_report
):
    one_shot = FSSPipeline(k=K, coreset_size=CORESET_SIZE, seed=42).run(mixture)
    one_shot_cost = normalized(mixture, one_shot.centers, context)
    streamed_cost = normalized(mixture, streamed_report.centers, context)
    assert streamed_cost <= one_shot_cost * 1.10, (streamed_cost, one_shot_cost)


def test_resident_memory_is_logarithmic_in_stream_length(streamed_report):
    batches_per_source = math.ceil((N / NUM_SOURCES) / BATCH_SIZE)
    bucket_bound = math.ceil(math.log2(batches_per_source)) + 1
    assert streamed_report.details["max_live_buckets"] <= bucket_bound
    # Each bucket holds one coreset, so resident memory is O(m · log(n/b)).
    assert (
        streamed_report.details["max_resident_points"]
        <= bucket_bound * CORESET_SIZE
    )


def test_sliding_window_drops_expired_batches():
    # Two regimes: early batches sample a cluster at +offset, late batches a
    # cluster at -offset.  A window covering only the late batches must (a)
    # place its center near the late cluster — expired batches leave the
    # cost — and (b) report less communication than was cumulatively sent.
    rng = np.random.default_rng(43)
    offset = 60.0
    early = rng.standard_normal((8 * 500, 6)) + offset
    late = rng.standard_normal((8 * 500, 6)) - offset
    batches = list(np.vstack([early, late]).reshape(16, 500, 6))

    engine = StreamingEngine(
        [FSSStage(size=100)], k=1, batch_size=500, window=4, query_every=4, seed=44
    )
    report = engine.run_streams([batches])

    center = report.centers[0]
    assert np.allclose(center, -offset * np.ones(6), atol=3.0)
    # Expired batches also leave the communication totals.
    assert report.communication_bits < report.details["cumulative_bits"]
    assert report.communication_scalars < report.details["cumulative_scalars"]
    # Mid-stream queries saw the early regime before it expired.
    first_query = report.queries[0]
    assert first_query.time == 3
    assert np.allclose(first_query.centers[0], offset * np.ones(6), atol=3.0)


def test_live_bucket_trace_stays_within_window(mixture):
    window = 4
    engine = StreamingEngine(
        [FSSStage(size=120)],
        k=K,
        batch_size=BATCH_SIZE,
        window=window,
        query_every=2,
        seed=45,
    )
    report = engine.run([mixture[: 10 * BATCH_SIZE]])
    for query in report.queries:
        # Windowed accounting never exceeds the cumulative totals.
        assert query.windowed_bits <= query.bits
    # Once the stream outgrows the window, retired + expired buckets keep the
    # live count small even though ten batches were ingested.
    assert report.queries[-1].live_buckets <= window
