"""Tests for repro.quantization — rounding quantizer and bit accounting."""

import numpy as np
import pytest

from repro.quantization.bits import (
    DOUBLE_PRECISION_BITS,
    DOUBLE_SIGNIFICAND_BITS,
    bits_per_scalar,
    scalars_to_bits,
)
from repro.quantization.rounding import IdentityQuantizer, RoundingQuantizer


class TestBitsAccounting:
    def test_full_precision(self):
        assert bits_per_scalar(None) == DOUBLE_PRECISION_BITS
        assert bits_per_scalar(53) == DOUBLE_PRECISION_BITS
        assert bits_per_scalar(60) == DOUBLE_PRECISION_BITS

    def test_reduced_precision(self):
        # sign (1) + exponent (11) + s significand bits
        assert bits_per_scalar(10) == 22
        assert bits_per_scalar(1) == 13

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            bits_per_scalar(0)

    def test_scalars_to_bits(self):
        assert scalars_to_bits(100, None) == 6400
        assert scalars_to_bits(100, 10) == 2200
        with pytest.raises(ValueError):
            scalars_to_bits(-1)


class TestRoundingQuantizer:
    def test_error_within_analytical_bound(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(-1.0, 1.0, size=(200, 30))
        for s in (1, 3, 8, 16, 30):
            quantizer = RoundingQuantizer(s)
            assert quantizer.max_error(points) <= quantizer.error_bound(points) + 1e-15

    def test_per_element_relative_error(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-10, 10, size=(100, 5))
        s = 6
        q = RoundingQuantizer(s).quantize(x)
        rel = np.abs(x - q) / np.maximum(np.abs(x), 1e-300)
        # |x - Γ(x)| <= |x| 2^{-s}
        assert np.all(rel <= 2.0 ** (-s) + 1e-12)

    def test_error_decreases_with_more_bits(self):
        rng = np.random.default_rng(2)
        points = rng.standard_normal((100, 10))
        errors = [RoundingQuantizer(s).max_error(points) for s in (2, 6, 12, 24)]
        assert all(errors[i] >= errors[i + 1] for i in range(len(errors) - 1))

    def test_high_precision_is_exact(self):
        rng = np.random.default_rng(3)
        points = rng.standard_normal((50, 4))
        assert np.array_equal(RoundingQuantizer(53).quantize(points), points)

    def test_sign_preserved(self):
        x = np.array([[-1.234, 5.678, -0.0001]])
        q = RoundingQuantizer(4).quantize(x)
        assert np.all(np.sign(q) == np.sign(x))

    def test_zero_maps_to_zero(self):
        assert RoundingQuantizer(3).quantize(np.array([[0.0]]))[0, 0] == 0.0

    def test_powers_of_two_exact_at_any_precision(self):
        x = np.array([[1.0, 2.0, 0.5, -4.0, 0.25]])
        assert np.array_equal(RoundingQuantizer(1).quantize(x), x)

    def test_idempotent(self):
        rng = np.random.default_rng(4)
        points = rng.standard_normal((30, 6))
        q = RoundingQuantizer(7)
        once = q.quantize(points)
        twice = q.quantize(once)
        assert np.array_equal(once, twice)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            RoundingQuantizer(4).quantize(np.array([[np.nan]]))

    def test_invalid_bit_counts(self):
        with pytest.raises(ValueError):
            RoundingQuantizer(0)
        with pytest.raises(ValueError):
            RoundingQuantizer(54)

    def test_empty_input(self):
        out = RoundingQuantizer(5).quantize(np.zeros((0, 3)))
        assert out.shape == (0, 3)
        assert RoundingQuantizer(5).max_error(np.zeros((0, 3))) == 0.0

    def test_transmission_bits(self):
        q = RoundingQuantizer(10)
        assert q.bits_per_scalar == 22
        assert q.transmission_bits(5) == 110


class TestIdentityQuantizer:
    def test_exact_copy(self):
        rng = np.random.default_rng(5)
        points = rng.standard_normal((20, 3))
        q = IdentityQuantizer()
        out = q.quantize(points)
        assert np.array_equal(out, points)
        assert out is not points

    def test_full_precision_accounting(self):
        q = IdentityQuantizer()
        assert q.significant_bits == DOUBLE_SIGNIFICAND_BITS
        assert q.bits_per_scalar == DOUBLE_PRECISION_BITS
