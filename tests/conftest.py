"""Shared fixtures for the test suite.

Datasets are deliberately small so that the full suite remains fast; the
paper-scale configurations are exercised by the benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_gaussian_mixture


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blobs():
    """Well-separated 4-cluster Gaussian mixture in 20 dimensions."""
    points, labels, centers = make_gaussian_mixture(
        n=400, d=20, k=4, separation=8.0, cluster_std=0.5, seed=7
    )
    return points, labels, centers


@pytest.fixture(scope="session")
def blob_points(blobs) -> np.ndarray:
    return blobs[0]


@pytest.fixture(scope="session")
def high_dim_blobs():
    """Higher-dimensional mixture where DR is actually meaningful."""
    points, labels, centers = make_gaussian_mixture(
        n=500, d=120, k=3, separation=10.0, cluster_std=1.0, seed=11
    )
    return points, labels, centers


@pytest.fixture(scope="session")
def high_dim_points(high_dim_blobs) -> np.ndarray:
    return high_dim_blobs[0]


@pytest.fixture()
def tiny_points() -> np.ndarray:
    """A fixed tiny dataset for exact, hand-checkable assertions."""
    return np.array(
        [
            [0.0, 0.0],
            [0.0, 1.0],
            [1.0, 0.0],
            [10.0, 10.0],
            [10.0, 11.0],
            [11.0, 10.0],
        ]
    )
