"""Monte-Carlo experiment harness.

The paper repeats every measurement over 10 Monte-Carlo runs (Section 7.1)
and reports CDFs of the per-run normalized cost and running time, plus
tables of normalized communication.  :class:`ExperimentRunner` reproduces
that workflow for any set of pipelines, in both the single-source and the
multi-source setting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import DistributedStagePipeline, StagePipeline
from repro.distributed.partition import partition_dataset
from repro.metrics.evaluation import (
    EvaluationContext,
    PipelineEvaluation,
    evaluate_report,
)
from repro.utils.random import SeedLike, as_generator, derive_seed, spawn_generators
from repro.utils.validation import check_matrix, check_positive_int

#: A factory that builds a fresh pipeline for one Monte-Carlo run, given the
#: run's seed.  Fresh construction per run keeps runs statistically
#: independent while remaining reproducible.
PipelineFactory = Callable[[int], object]


@dataclass
class AlgorithmSummary:
    """Aggregate statistics of one algorithm over all Monte-Carlo runs."""

    algorithm: str
    mean_normalized_cost: float
    max_normalized_cost: float
    mean_normalized_communication: float
    mean_source_seconds: float
    runs: int
    #: Mean sources contributing to the fold (== the deployment size on
    #: healthy runs; smaller under simulated link loss or dropout).
    mean_participating_sources: float = 1.0
    total_failed_sources: int = 0
    total_retransmissions: int = 0
    total_messages_lost: int = 0
    mean_simulated_network_seconds: float = 0.0

    @classmethod
    def from_evaluations(cls, evaluations: Sequence[PipelineEvaluation]) -> "AlgorithmSummary":
        if not evaluations:
            raise ValueError("cannot summarize zero evaluations")
        costs = np.array([e.normalized_cost for e in evaluations])
        comms = np.array([e.normalized_communication for e in evaluations])
        times = np.array([e.source_seconds for e in evaluations])
        return cls(
            algorithm=evaluations[0].algorithm,
            mean_normalized_cost=float(costs.mean()),
            max_normalized_cost=float(costs.max()),
            mean_normalized_communication=float(comms.mean()),
            mean_source_seconds=float(times.mean()),
            runs=len(evaluations),
            mean_participating_sources=float(
                np.mean([e.participating_sources for e in evaluations])
            ),
            total_failed_sources=int(sum(e.failed_sources for e in evaluations)),
            total_retransmissions=int(sum(e.retransmissions for e in evaluations)),
            total_messages_lost=int(sum(e.messages_lost for e in evaluations)),
            mean_simulated_network_seconds=float(
                np.mean([e.simulated_network_seconds for e in evaluations])
            ),
        )


@dataclass
class ExperimentResult:
    """All per-run evaluations of one experiment, keyed by algorithm label."""

    evaluations: Dict[str, List[PipelineEvaluation]] = field(default_factory=dict)

    def add(self, label: str, evaluation: PipelineEvaluation) -> None:
        self.evaluations.setdefault(label, []).append(evaluation)

    def summary(self) -> Dict[str, AlgorithmSummary]:
        return {
            label: AlgorithmSummary.from_evaluations(evals)
            for label, evals in self.evaluations.items()
        }

    def metric_samples(self, label: str, metric: str) -> np.ndarray:
        """Per-run samples of one metric for one algorithm (CDF material)."""
        evals = self.evaluations.get(label)
        if not evals:
            raise KeyError(
                f"no evaluations recorded for {label!r}; "
                f"available labels: {sorted(self.evaluations) or 'none'}"
            )
        _check_metric_name(metric)
        return np.array([getattr(e, metric) for e in evals], dtype=float)

    def table(self, metric: str) -> Dict[str, float]:
        """Mean of one metric per algorithm (the paper's table format)."""
        _check_metric_name(metric)
        return {
            label: float(np.mean([getattr(e, metric) for e in evals]))
            for label, evals in self.evaluations.items()
        }


#: Metric names :meth:`ExperimentResult.metric_samples` / ``table`` accept —
#: the fields of one per-run :class:`PipelineEvaluation`.
EVALUATION_METRICS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(PipelineEvaluation) if f.name != "algorithm"
)


def _check_metric_name(metric: str) -> None:
    """Reject unknown metric names with the available set (a bare
    ``AttributeError`` from ``getattr`` used to surface here)."""
    if metric not in EVALUATION_METRICS:
        raise KeyError(
            f"unknown metric {metric!r}; available metrics: "
            f"{', '.join(EVALUATION_METRICS)}"
        )


def empirical_cdf(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample vector: returns ``(sorted values, F)``."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("cannot compute the CDF of an empty sample")
    values = np.sort(samples)
    fractions = np.arange(1, values.size + 1) / values.size
    return values, fractions


class ExperimentRunner:
    """Repeats a set of pipelines for several Monte-Carlo runs.

    Parameters
    ----------
    points:
        The full dataset P.
    k:
        Number of clusters.
    monte_carlo_runs:
        Number of independent repetitions (the paper uses 10).
    seed:
        Master seed; run seeds and the reference solver's seed derive from it.
    reference_n_init:
        Restarts used for the reference centers X*.
    context:
        Optional pre-built :class:`EvaluationContext` to evaluate against
        (the sweep runner shares one reference solution per ``(dataset, k)``
        cell group so paired cells are judged against identical X*).  The
        reference-solver seed is still drawn from the master generator, so
        the per-run Monte-Carlo seeds are identical whether or not a
        context is supplied.
    """

    def __init__(
        self,
        points: np.ndarray,
        k: int,
        monte_carlo_runs: int = 10,
        seed: SeedLike = None,
        reference_n_init: int = 10,
        context: Optional[EvaluationContext] = None,
    ) -> None:
        self.points = check_matrix(points, "points")
        self.k = check_positive_int(k, "k")
        self.monte_carlo_runs = check_positive_int(monte_carlo_runs, "monte_carlo_runs")
        self._rng = as_generator(seed)
        reference_seed = derive_seed(self._rng)
        if context is None:
            context = EvaluationContext.build(
                self.points, self.k, n_init=reference_n_init, seed=reference_seed
            )
        self.context = context
        self._run_seeds = [derive_seed(rng) for rng in spawn_generators(self._rng, monte_carlo_runs)]

    @property
    def run_seeds(self) -> List[int]:
        """The per-run Monte-Carlo seeds (recorded by the result store so
        paired sweep cells can prove they shared seeds)."""
        return list(self._run_seeds)

    # ------------------------------------------------------------------ API
    def run_single_source(
        self, factories: Dict[str, PipelineFactory]
    ) -> ExperimentResult:
        """Run single-source pipelines: every factory is called once per
        Monte-Carlo run with that run's seed."""
        result = ExperimentResult()
        for run_seed in self._run_seeds:
            for label, factory in factories.items():
                pipeline = factory(run_seed)
                if not isinstance(pipeline, StagePipeline):
                    raise TypeError(
                        f"factory {label!r} must build a single-source StagePipeline"
                    )
                report = pipeline.run(self.points)
                result.add(label, evaluate_report(report, self.context))
        return result

    def run_multi_source(
        self,
        factories: Dict[str, PipelineFactory],
        num_sources: int,
        strategy: str = "random",
    ) -> ExperimentResult:
        """Run multi-source pipelines over a fresh random partition per run.

        The same partition is shared by all algorithms within a run so the
        comparison is paired, as in the paper.
        """
        check_positive_int(num_sources, "num_sources")
        result = ExperimentResult()
        for run_seed in self._run_seeds:
            indices = partition_dataset(
                self.points, num_sources, strategy=strategy, seed=run_seed
            )
            shards = [self.points[idx] for idx in indices]
            for label, factory in factories.items():
                pipeline = factory(run_seed)
                if not isinstance(pipeline, DistributedStagePipeline):
                    raise TypeError(
                        f"factory {label!r} must build a DistributedStagePipeline"
                    )
                report = pipeline.run(shards)
                result.add(label, evaluate_report(report, self.context))
        return result

    def run_registered(
        self,
        names: Sequence[str],
        num_sources: Optional[int] = None,
        strategy: str = "random",
        **overrides,
    ) -> ExperimentResult:
        """Run registry compositions by name (single- and multi-source mixed).

        Every name is resolved through :mod:`repro.core.registry`; the
        ``overrides`` (``coreset_size``, ``jl_dimension``, ``quantizer``, …)
        are forwarded to each factory, which picks the arguments its kind
        accepts.  An override no kind among ``names`` accepts raises
        ``TypeError`` (the silent-typo footgun: ``jl_dim=20`` used to run
        the wrong experiment without a warning); each factory is then
        invoked strictly with the subset its kind accepts.  ``k`` and
        ``seed`` are owned by the runner (the evaluation context is built
        for ``self.k``; seeds are the per-run Monte-Carlo seeds) and cannot
        be overridden here.  Multi-source compositions require
        ``num_sources``.
        """
        from repro.core import registry

        reserved = {"k", "seed"} & overrides.keys()
        if reserved:
            raise ValueError(
                f"run_registered controls {sorted(reserved)}; configure them "
                "on the ExperimentRunner instead"
            )

        accepted_union = {
            key for name in names for key in registry.accepted_kwargs(name)
        }
        unknown = sorted(set(overrides) - accepted_union)
        if unknown:
            raise TypeError(
                f"run_registered got overrides no requested pipeline kind "
                f"accepts: {unknown}; accepted across {sorted(set(names))}: "
                f"{sorted(accepted_union - {'k', 'seed'})}"
            )

        single: Dict[str, PipelineFactory] = {}
        multi: Dict[str, PipelineFactory] = {}

        def factory_for(name: str) -> PipelineFactory:
            accepted = registry.accepted_kwargs(name)
            kind_overrides = {
                key: value for key, value in overrides.items() if key in accepted
            }
            return lambda seed: registry.create_pipeline(
                name, k=self.k, seed=seed, strict=True, **kind_overrides
            )

        for name in names:
            target = multi if registry.is_multi_source(name) else single
            target[name] = factory_for(name)
        if multi and num_sources is None:
            raise ValueError(
                f"num_sources is required for multi-source pipelines: {sorted(multi)}"
            )

        result = ExperimentResult()
        if single:
            for label, evals in self.run_single_source(single).evaluations.items():
                for evaluation in evals:
                    result.add(label, evaluation)
        if multi:
            multi_result = self.run_multi_source(
                multi, num_sources=num_sources, strategy=strategy
            )
            for label, evals in multi_result.evaluations.items():
                for evaluation in evals:
                    result.add(label, evaluation)
        return result
