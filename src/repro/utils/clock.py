"""Wall-clock indirection for byte-stable experiment records.

Every timed section in the library reads the clock through
:func:`perf_counter`.  Normally that is :func:`time.perf_counter`
verbatim; with ``REPRO_FROZEN_CLOCK=1`` in the environment (or after
:func:`freeze`), the clock returns a constant, so every measured duration
collapses to exactly ``0.0``.

Why anyone would want a broken stopwatch: the crash-recovery acceptance
test compares the JSONL result store of a killed-then-resumed sweep
*byte-for-byte* against an uninterrupted baseline run.  All record fields
are deterministic functions of the seeds — except the wall-clock timings,
which differ between any two processes.  Freezing the clock removes the
only nondeterministic bytes, making "resumed == uncrashed" a literal
file comparison instead of a field-by-field almost-equality.
"""

from __future__ import annotations

import os
import time

_FROZEN = os.environ.get("REPRO_FROZEN_CLOCK", "").strip() not in ("", "0")


def frozen() -> bool:
    """Whether the clock is currently frozen."""
    return _FROZEN


def freeze(value: bool = True) -> None:
    """Freeze (or thaw) the clock in-process (tests; env wins at import)."""
    global _FROZEN
    _FROZEN = bool(value)


def perf_counter() -> float:
    """:func:`time.perf_counter`, or a constant when the clock is frozen."""
    if _FROZEN:
        return 0.0
    return time.perf_counter()


__all__ = ["frozen", "freeze", "perf_counter"]
