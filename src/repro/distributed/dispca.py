"""disPCA — distributed principal component analysis (paper ref. [35]).

Protocol (Section 5.1):

1. Every data source ``i`` computes a local SVD ``A_{P_i} = U_i Σ_i V_i^T``
   and transmits the top ``t1`` singular values and right singular vectors
   ``(Σ_i^{(t1)}, V_i^{(t1)})`` — ``t1 · (d + 1)`` scalars.
2. The server stacks ``Y_i = Σ_i^{(t1)} (V_i^{(t1)})^T`` into ``Y`` and
   computes a global SVD ``Y = U Σ V^T``.
3. The first ``t2`` columns of ``V`` are broadcast back; each source projects
   its local shard onto that subspace (``A -> A V V^T``).

With ``t1 = t2 = k + ⌈4k/ε²⌉ − 1`` the projected union approximates the
k-means cost of the original union up to ``1 ± ε`` plus a constant shift Δ
(Theorem 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.distributed.conditions import DeliveryError
from repro.distributed.node import DataSourceNode
from repro.distributed.server import EdgeServer
from repro.dr.pca import pca_target_dimension
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class DisPCAResult:
    """Outcome of the disPCA protocol.

    Attributes
    ----------
    basis:
        The global top-``t2`` right singular subspace basis, ``(d, t2)``.
    rank:
        The rank ``t2`` actually used.
    transmitted_scalars:
        Scalars transmitted uplink by all sources during the protocol.
    """

    basis: np.ndarray
    rank: int
    transmitted_scalars: int


class DistributedPCA:
    """disPCA protocol driver.

    Parameters
    ----------
    k:
        Number of clusters the downstream k-means targets.
    epsilon:
        PCA accuracy parameter ε in Theorem 5.1.
    rank:
        Explicit ``t1 = t2`` override; default ``k + ⌈4k/ε²⌉ − 1``.
    """

    def __init__(
        self,
        k: int,
        epsilon: float = 1.0 / 3.0,
        rank: int | None = None,
        jobs: int | None = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon", high=1.0 / 3.0, inclusive_high=True)
        self.rank = rank if rank is None else check_positive_int(rank, "rank")
        self.jobs = jobs

    def resolved_rank(self, d: int, n: int) -> int:
        rank = self.rank or pca_target_dimension(self.k, self.epsilon)
        return max(1, min(rank, d, n))

    def run(self, sources: Sequence[DataSourceNode], server: EdgeServer) -> DisPCAResult:
        """Execute the protocol; each source's local shard is replaced by its
        projection onto the global principal subspace.

        Fault tolerance: sources that are down (per the network's fault
        plan) or exhaust their retry budget are excluded from the round —
        the global SVD stacks only the sketches that arrived, and sources
        that miss the basis broadcast are marked failed (their shards would
        be geometrically inconsistent with the projected survivors).  At
        least one source must complete each phase.
        """
        if not sources:
            raise ValueError("disPCA requires at least one data source")
        network = server.network
        active = network.participating(sources)
        if not active:
            raise RuntimeError("disPCA: every data source is down")
        d = active[0].dimension
        min_local_n = min(s.cardinality for s in active)
        rank = self.resolved_rank(d, min_local_n)

        before = network.uplink_scalars()

        # Step 1: local SVDs (parallel per-source compute), then transmit to
        # the server serially in source order so metering is deterministic.
        local_svds = parallel_map(lambda source: source.local_svd(rank), active, self.jobs)
        sketches: List[np.ndarray] = []
        survivors: List[DataSourceNode] = []
        for source, (singular_values, basis) in zip(active, local_svds):
            payload = {"singular_values": singular_values, "basis": basis}
            try:
                source.send_to_server(payload, tag="dispca-local-svd")
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            sketches.append((singular_values[:, None] * basis.T))  # Σ_t V_t^T
            survivors.append(source)
        network.advance_round()
        if not sketches:
            raise RuntimeError("disPCA: no local SVD sketch reached the server")

        # Step 2: global SVD of the stacked sketches (survivors only).
        stacked = np.vstack(sketches)
        global_basis = server.global_svd(stacked, rank)

        # Step 3: broadcast the basis (downlink; not counted in the paper's
        # source-side communication metric but still logged, hence serial)
        # and project the local shards (parallel: node-local compute).
        receivers: List[DataSourceNode] = []
        for source in network.participating(survivors):
            try:
                server.send_to_source(source.node_id, global_basis, tag="dispca-basis")
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            receivers.append(source)
        network.advance_round()
        if not receivers:
            raise RuntimeError("disPCA: no source received the global basis")
        parallel_map(lambda source: source.project_onto(global_basis), receivers, self.jobs)

        transmitted = network.uplink_scalars() - before
        return DisPCAResult(basis=global_basis, rank=rank, transmitted_scalars=transmitted)
