"""Batch iterators: turn datasets into timestamped streams.

The streaming engine consumes one batch iterator per source.  These helpers
produce them from in-memory arrays (contiguous or shuffled batching of a
shard) and generate non-stationary streams whose cluster structure drifts
over time — the scenario where sliding-window clustering visibly beats
clustering the full prefix.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.random import SeedLike, as_generator
from repro.utils.validation import check_matrix, check_positive_int


def iter_batches(
    points: np.ndarray,
    batch_size: int,
    shuffle: bool = False,
    seed: SeedLike = None,
) -> Iterator[np.ndarray]:
    """Yield consecutive row batches of ``points`` (final batch may be short).

    With ``shuffle=True`` the rows are visited in a random order, emulating
    arrival order independent of storage order.
    """
    points = check_matrix(points, "points")
    batch_size = check_positive_int(batch_size, "batch_size")
    n = points.shape[0]
    order = as_generator(seed).permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield points[order[start:start + batch_size]]


def batch_count(n: int, batch_size: int) -> int:
    """Number of batches :func:`iter_batches` yields for ``n`` rows."""
    check_positive_int(n, "n")
    check_positive_int(batch_size, "batch_size")
    return -(-n // batch_size)


def make_drifting_stream(
    num_batches: int,
    batch_size: int,
    d: int,
    k: int,
    drift: float = 1.0,
    separation: float = 6.0,
    cluster_std: float = 1.0,
    seed: SeedLike = None,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """A non-stationary stream: cluster centers translate a little per batch.

    Every batch is a ``k``-component Gaussian mixture whose centers have
    moved by ``drift`` (in units of ``cluster_std``) along a fixed random
    direction since the previous batch, so the optimal centers of the recent
    window diverge from those of the full prefix — the workload the
    sliding-window mode exists for.

    Returns ``(batches, final_centers)`` where ``final_centers`` are the
    mixture centers of the *last* batch.
    """
    num_batches = check_positive_int(num_batches, "num_batches")
    batch_size = check_positive_int(batch_size, "batch_size")
    d = check_positive_int(d, "d")
    k = check_positive_int(k, "k")
    rng = as_generator(seed)

    centers = rng.standard_normal((k, d)) * separation
    direction = rng.standard_normal(d)
    direction /= np.linalg.norm(direction)
    step = direction * drift * cluster_std

    batches: List[np.ndarray] = []
    for _ in range(num_batches):
        labels = rng.integers(0, k, size=batch_size)
        batch = centers[labels] + rng.standard_normal((batch_size, d)) * cluster_std
        batches.append(batch)
        centers = centers + step
    return batches, centers - step
