"""Composable DR / CR / QT stages — the building blocks of every pipeline.

The paper's algorithms are compositions of dimensionality reduction,
cardinality reduction, and quantization.  This package defines the
:class:`Stage` protocol plus the concrete stages, and
:mod:`repro.core.engine` provides the pipelines that execute any composition
with unified timing, network metering, server-side solving, and center
lift-back.  See :mod:`repro.core.registry` for the named compositions.
"""

from repro.stages.base import (
    CenterLift,
    SourceState,
    Stage,
    StageContext,
    StageEffect,
)
from repro.stages.cr import FSSStage, SensitivityStage, UniformStage
from repro.stages.distributed import (
    BKLWStage,
    DistributedStage,
    DistributedStageContext,
    DistributedStageEffect,
    RawGatherStage,
    SharedJLStage,
)
from repro.stages.dr import JLStage, PCAStage
from repro.stages.qt import QuantizeStage
from repro.stages.sizing import (
    default_coreset_size,
    default_distributed_samples,
    default_jl_dimension,
    default_pca_rank,
)

__all__ = [
    "Stage",
    "StageContext",
    "StageEffect",
    "SourceState",
    "CenterLift",
    "JLStage",
    "PCAStage",
    "FSSStage",
    "SensitivityStage",
    "UniformStage",
    "QuantizeStage",
    "DistributedStage",
    "DistributedStageContext",
    "DistributedStageEffect",
    "SharedJLStage",
    "BKLWStage",
    "RawGatherStage",
    "default_coreset_size",
    "default_jl_dimension",
    "default_pca_rank",
    "default_distributed_samples",
]
