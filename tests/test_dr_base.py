"""Tests for repro.dr.base — the DR interface and identity reducer."""

import numpy as np
import pytest

from repro.dr.base import IdentityReducer
from repro.dr.jl import JLProjection


class TestIdentityReducer:
    def test_roundtrip(self, blob_points):
        reducer = IdentityReducer(blob_points.shape[1])
        assert np.allclose(reducer.transform(blob_points), blob_points)
        assert np.allclose(reducer.inverse_transform(blob_points), blob_points)

    def test_dimensions(self):
        reducer = IdentityReducer(13)
        assert reducer.input_dimension == 13
        assert reducer.output_dimension == 13
        assert reducer.transmitted_scalars == 0

    def test_wrong_dimension_rejected(self):
        reducer = IdentityReducer(4)
        with pytest.raises(ValueError):
            reducer.transform(np.zeros((2, 5)))

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            IdentityReducer(0)

    def test_callable_interface(self, blob_points):
        reducer = IdentityReducer(blob_points.shape[1])
        assert np.allclose(reducer(blob_points), blob_points)


class TestLiftThrough:
    def test_composed_lift_matches_sequential(self, high_dim_points):
        d = high_dim_points.shape[1]
        first = JLProjection(d, 30, seed=0)
        second = JLProjection(30, 10, seed=1)
        low = second.transform(first.transform(high_dim_points[:5]))
        composed = first.lift_through(second, low)
        sequential = first.inverse_transform(second.inverse_transform(low))
        assert np.allclose(composed, sequential)
        assert composed.shape == (5, d)
