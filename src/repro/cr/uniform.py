"""Uniform-sampling coreset — an ablation baseline.

Uniform sampling has no worst-case ε-coreset guarantee for k-means (a single
far-away point can carry most of the cost yet be missed), but it is the
natural naive alternative to sensitivity sampling and is used by the ablation
benchmark to demonstrate why importance sampling matters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cr.coreset import Coreset
from repro.utils.random import SeedLike, as_generator
from repro.utils.validation import check_matrix, check_positive_int, check_weights


class UniformCoreset:
    """Coreset by uniform sampling with inverse-probability weights.

    Parameters
    ----------
    size:
        Number of points to sample.
    seed:
        RNG seed or generator.
    replace:
        Sample with replacement (True, default) or without.
    """

    def __init__(self, size: int, seed: SeedLike = None, replace: bool = True) -> None:
        self.size = check_positive_int(size, "size")
        self.replace = bool(replace)
        self._rng = as_generator(seed)

    def build(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
        shift: float = 0.0,
    ) -> Coreset:
        """Draw the uniform coreset; weights scale so total weight equals the
        total input weight."""
        points = check_matrix(points, "points")
        n = points.shape[0]
        weights = check_weights(weights, n)
        size = min(self.size, n) if not self.replace else self.size

        indices = self._rng.choice(n, size=size, replace=self.replace)
        total_weight = float(weights.sum())
        sample_weights = np.full(size, total_weight / size, dtype=float)
        return Coreset(points[indices].copy(), sample_weights, shift=shift)

    def __call__(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> Coreset:
        return self.build(points, weights)
