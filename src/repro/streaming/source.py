"""The streaming data source: per-batch compression + incremental uplink.

A :class:`StreamingSource` turns the one-shot source protocol of
:class:`~repro.core.engine.StagePipeline` into an online one.  For every
timestamped batch it

1. runs the stage composition on the batch (timed, exactly like the one-shot
   engine's source section) to obtain a leaf coreset in the reduced space —
   DR stages use the seeds agreed at the stream-wide handshake, so every
   batch of every source lands in the *same* reduced space and summaries
   stay mergeable;
2. inserts the leaf into its bounded-memory
   :class:`~repro.streaming.tree.CoresetTree` (merges run locally, inside
   the timed section — they are source work);
3. transmits the *delta* between the buckets the server already holds and
   the buckets now alive, through the metered
   :class:`~repro.distributed.network.SimulatedNetwork`: new buckets travel
   as quantized points + full-precision weights + a 5-scalar header, retired
   bucket ids as one scalar each.  Re-transmitting a merged bucket replaces
   the buckets it subsumes, so the server's view stays consistent while the
   per-batch uplink stays amortized ``O(coreset_size)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cr.coreset import Coreset
from repro.distributed.conditions import DeliveryError
from repro.distributed.network import SimulatedNetwork
from repro.stages.base import CenterLift, SourceState, Stage, StageContext
from repro.streaming.tree import Bucket, CoresetTree
from repro.utils.clock import perf_counter


@dataclass
class BucketUpdate:
    """One bucket as it crossed the wire (points possibly quantized)."""

    bucket_id: int
    coreset: Coreset
    first_batch: int
    last_batch: int
    level: int


@dataclass
class SourceUpdate:
    """Incremental summary of one ingest step, for the server to fold."""

    source_id: str
    batch_index: int
    added: List[BucketUpdate] = field(default_factory=list)
    retired_ids: List[int] = field(default_factory=list)


class StreamingSource:
    """One data source of a streaming deployment.

    Parameters
    ----------
    source_id:
        Network identifier (``"source-<i>"``).
    stages:
        The (already handshaken) stage composition applied to every batch.
    reduce_stage:
        The composition's CR stage, re-applied to merged tree buckets.
    ctx:
        The stream-wide stage context (shared master generator).
    network:
        The metered network all transmissions go through.
    window:
        Optional sliding window in batches, forwarded to the tree.
    receiver:
        Fold target this source transmits to: the server (default, the
        flat star) or a mid-tree aggregator id under a tree topology.
    """

    def __init__(
        self,
        source_id: str,
        stages: Sequence[Stage],
        reduce_stage: Stage,
        ctx: StageContext,
        network: SimulatedNetwork,
        window: Optional[int] = None,
        receiver: str = "server",
    ) -> None:
        self.source_id = str(source_id)
        self.receiver = str(receiver)
        self.stages = list(stages)
        self.reduce_stage = reduce_stage
        self.ctx = ctx
        self.network = network
        self.tree = CoresetTree(reduce=self._reduce, window=window)
        self.compute_seconds = 0.0
        self.batches_ingested = 0
        self.lifts: Optional[List[CenterLift]] = None
        self.quantizer_bits: Optional[int] = None
        #: Ingest steps whose bucket delta could not be fully delivered
        #: (the pending part ships on the next successful flush).
        self.delivery_failures = 0
        self._shipped: set = set()
        self._pending_quantizer = None

    # ------------------------------------------------------------------ API
    def ingest(self, batch: np.ndarray, batch_index: int) -> SourceUpdate:
        """Compress one batch, update the tree, and uplink the delta."""
        self.compress(batch, batch_index)
        return self.flush(batch_index)

    def compress(self, batch: np.ndarray, batch_index: int) -> None:
        """The compute half of :meth:`ingest`: run the stage composition on
        the batch and update the local tree — no network activity.

        Touches only source-local state (the tree, the timing counter, and
        this source's stage context / generator), so the engine may run the
        ``compress`` steps of all sources in parallel; the network delta is
        shipped afterwards by :meth:`flush`, serially, in source order.
        """
        start = perf_counter()
        state = SourceState(points=np.asarray(batch, dtype=float))
        lifts: List[CenterLift] = []
        for stage in self.stages:
            effect = stage.apply_at_source(state, self.ctx)
            state = effect.state
            if effect.lift is not None:
                lifts.append(effect.lift)
        if state.weights is None:
            raise RuntimeError(
                "streaming requires a CR stage in the composition: the batch "
                "state still has no coreset weights after all stages"
            )
        if self.lifts is None:
            # DR maps are fixed for the whole stream (shared handshake seeds,
            # pinned dimensions), so the lift chain of the first batch is the
            # lift chain of every batch.
            self.lifts = lifts
        leaf = Coreset(state.points, state.weights, state.shift)
        self.tree.insert(leaf, batch_index)
        self.tree.expire(batch_index)
        self.compute_seconds += perf_counter() - start
        self.batches_ingested += 1

        self._pending_quantizer = state.wire_quantizer
        if state.wire_quantizer is not None:
            self.quantizer_bits = int(state.wire_quantizer.significant_bits)

    def flush(self, batch_index: int) -> SourceUpdate:
        """The transmit half of :meth:`ingest`: uplink the bucket delta."""
        return self._transmit_delta(batch_index, self._pending_quantizer)

    def advance(self, batch_index: int) -> SourceUpdate:
        """Advance stream time without new data: expire and retire only.

        Sliding-window streams call this for sources whose stream already
        ended while others keep ingesting — their out-of-window buckets must
        leave the tree and the server view exactly as if they were still
        producing batches.
        """
        self.tree.expire(batch_index)
        return self._transmit_delta(batch_index, None)

    # ------------------------------------------------------- snapshotting
    def snapshot(self) -> dict:
        """JSON-able snapshot of the source's mutable stream state.

        Covers the coreset tree, the wire bookkeeping (which buckets the
        server already holds), and the counters.  The stage composition,
        context, and network are configuration — re-supplied by the
        constructor on restore.  The center-lift chain is *not* serialized
        (lifts are closures): it is deterministic given the handshaken
        stage seeds and rebuilds on the first batch compressed after a
        restore, exactly as it was built on the stream's first batch.
        """
        return {
            "source_id": self.source_id,
            "tree": self.tree.snapshot(),
            "compute_seconds": self.compute_seconds,
            "batches_ingested": self.batches_ingested,
            "quantizer_bits": self.quantizer_bits,
            "delivery_failures": self.delivery_failures,
            "shipped": sorted(self._shipped),
        }

    def restore(self, snapshot: dict) -> "StreamingSource":
        """Replace this source's stream state with a :meth:`snapshot`'s
        (the source must be constructed with the same configuration);
        returns ``self`` for chaining."""
        if snapshot.get("source_id") != self.source_id:
            raise ValueError(
                f"snapshot belongs to source {snapshot.get('source_id')!r}, "
                f"this is {self.source_id!r}"
            )
        self.tree.restore(snapshot["tree"])
        self.compute_seconds = float(snapshot.get("compute_seconds", 0.0))
        self.batches_ingested = int(snapshot.get("batches_ingested", 0))
        bits = snapshot.get("quantizer_bits")
        self.quantizer_bits = None if bits is None else int(bits)
        self.delivery_failures = int(snapshot.get("delivery_failures", 0))
        self._shipped = {int(b) for b in snapshot.get("shipped", ())}
        self.lifts = None
        self._pending_quantizer = None
        return self

    # ------------------------------------------------------------ internals
    def _reduce(self, coreset: Coreset) -> Coreset:
        """Re-compress a merged bucket with the composition's CR stage."""
        state = SourceState(
            points=coreset.points, weights=coreset.weights, shift=coreset.shift
        )
        state = self.reduce_stage.apply_at_source(state, self.ctx).state
        return Coreset(state.points, state.weights, state.shift)

    def _transmit_delta(self, batch_index: int, quantizer) -> SourceUpdate:
        """Ship exactly the difference between server view and live buckets.

        Delivery failures are tolerated per bucket: a bucket joins the
        server update (and :attr:`_shipped`) only when all three of its
        messages arrive; anything undelivered stays pending and retries on
        the next flush, so a flaky link catches the server up once it
        recovers.  Every failed attempt is still metered by the network.
        """
        live = set(self.tree.live_bucket_ids)
        to_retire = sorted(self._shipped - live)
        to_add = [b for b in self.tree.live_buckets if b.bucket_id not in self._shipped]

        update = SourceUpdate(source_id=self.source_id, batch_index=batch_index)
        link_up = True
        for bucket in to_add:
            wire_coreset, bits = self._encode_bucket(bucket, quantizer)
            header = [
                float(bucket.bucket_id), float(bucket.level),
                float(bucket.first_batch), float(bucket.last_batch),
                float(wire_coreset.shift),
            ]
            try:
                # One batched call per bucket: the recorded messages (and
                # loss draws) are bit-identical to three sequential sends,
                # but the per-call link/fault-plan resolution is hoisted —
                # the difference between feasible and not at 10k sources.
                self.network.send_many(
                    self.source_id, self.receiver,
                    [
                        ("stream-points", wire_coreset.points, bits),
                        ("stream-weights", wire_coreset.weights, None),
                        ("stream-header", header, None),
                    ],
                )
            except DeliveryError:
                self.delivery_failures += 1
                link_up = False
                break
            self._shipped.add(bucket.bucket_id)
            update.added.append(
                BucketUpdate(
                    bucket_id=bucket.bucket_id,
                    coreset=wire_coreset,
                    first_batch=bucket.first_batch,
                    last_batch=bucket.last_batch,
                    level=bucket.level,
                )
            )
        if to_retire and link_up:
            try:
                self.network.send(
                    self.source_id, self.receiver, to_retire, tag="stream-retire"
                )
            except DeliveryError:
                self.delivery_failures += 1
            else:
                update.retired_ids = to_retire
                self._shipped -= set(to_retire)
        return update

    @staticmethod
    def _encode_bucket(bucket: Bucket, quantizer) -> Tuple[Coreset, Optional[int]]:
        """Quantize-on-send: points at reduced precision, weights and Δ at
        full precision (Section 6.2's coreset wire format)."""
        coreset = bucket.coreset
        if quantizer is None:
            return coreset, None
        return (
            Coreset(quantizer.quantize(coreset.points), coreset.weights, coreset.shift),
            int(quantizer.significant_bits),
        )
