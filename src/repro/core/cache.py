"""Content-addressed caching of intermediate stage outputs.

A paper-scale sweep is a grid of algorithms × datasets × tuning knobs ×
network conditions, and its cells overwhelmingly share work: every
``quantize_bits`` setting reuses the same compressed coreset (quantization
is applied on send, after the stage chain), every network condition reuses
the same summary (network randomness never touches the pipeline's master
generator), and every algorithm sharing a JL prefix reuses the same
projection.  :class:`StageCache` makes that sharing explicit: each stage
invocation is addressed by a *prefix key*

    ``key_i = H(key_{i-1}, stage fingerprint, shared seed, rng position)``

rooted in a content digest of the input matrix and the clustering
parameters ``(k, epsilon, delta)``.  Because the key chain includes the
master generator's bit-generator state at the stage's position, two cells
share an entry exactly when the stage would compute bit-identical output —
same upstream bytes, same configuration, same seed stream.

Cache semantics
---------------
* **Hits are bit-exact.**  Stage outputs (coreset points/weights/shift,
  projected matrices, fitted subspace bases) are float64 arrays persisted
  via ``npz``, which round-trips exactly; on a hit the engine burns the
  same number of master-generator draws the stage would have consumed
  (recorded per entry), so every downstream draw — later stages, the
  server solver seed — is bit-identical to a cache-cold run.
* **Concurrent cells dedupe.**  A per-key in-process lock makes racing
  cells compute a missing entry once (the first computes, the rest block
  and hit); on disk, entries are written to a temp file and atomically
  renamed, so a concurrent *process* can at worst double-compute, never
  observe a torn file.
* **Corruption recovers.**  An unreadable entry is deleted, counted in
  ``corrupt``, and recomputed — never raised to the caller.
* **Eviction is size-capped.**  :meth:`gc` deletes oldest-first (mtime)
  until the directory fits the byte budget (``repro cache gc``).

The cache directory lives beside the JSONL result store by convention
(``results/stage_cache/``) and is never committed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import weakref
import zipfile
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.stages.base import SourceState, StageEffect
from repro.utils import faultpoints

#: Entry layout version; bumped on incompatible payload changes (old
#: entries then simply miss and are recomputed).
CACHE_VERSION = 1

#: Default in-memory payload budget (bytes).  The disk directory is the
#: source of truth; the memory layer only short-circuits repeated reads of
#: the same entry within one sweep process.
DEFAULT_MEMORY_BYTES = 256 * 1024 * 1024

#: Exceptions that mark an entry as corrupt rather than a bug: truncated
#: zip members, missing keys, bad dtypes, filesystem races.
_CORRUPT_ERRORS = (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile)

#: How long :meth:`StageCache.locked` waits on a per-key lock before giving
#: up and double-computing.  A holder wedged mid-compute (hung BLAS call,
#: stuck debugger) must degrade dedupe to double-work, never deadlock the
#: sweep.
DEFAULT_LOCK_TIMEOUT = 120.0

#: Age past which an orphaned ``.tmp-*.npz`` file (left by a process killed
#: between write and rename) is garbage — comfortably longer than any
#: legitimate in-flight write, far shorter than a sweep.
STALE_TMP_SECONDS = 3600.0


# ---------------------------------------------------------------------------
# Content digests.
# ---------------------------------------------------------------------------

#: id(array) -> (weakref, shape, dtype, digest).  Sweeps hand the same
#: dataset object to every cell and every Monte-Carlo run; hashing ~40MB of
#: float64 once instead of once per run keeps root-key derivation out of
#: the profile.  The weakref guards against id() reuse after collection.
_DIGEST_MEMO: Dict[int, Tuple[Any, Tuple[int, ...], str, str]] = {}
_DIGEST_LOCK = threading.Lock()


def content_digest(array: np.ndarray) -> str:
    """Stable sha256 digest of an array's dtype, shape, and bytes."""
    key = id(array)
    with _DIGEST_LOCK:
        memo = _DIGEST_MEMO.get(key)
        if memo is not None:
            ref, shape, dtype, digest = memo
            if ref() is array and array.shape == shape and array.dtype.str == dtype:
                return digest
    hasher = hashlib.sha256()
    hasher.update(array.dtype.str.encode("ascii"))
    hasher.update(repr(array.shape).encode("ascii"))
    hasher.update(np.ascontiguousarray(array).tobytes())
    digest = hasher.hexdigest()
    try:
        ref = weakref.ref(array)
    except TypeError:  # pragma: no cover - exotic array subclasses
        return digest
    with _DIGEST_LOCK:
        if len(_DIGEST_MEMO) > 64:
            _DIGEST_MEMO.clear()
        _DIGEST_MEMO[key] = (ref, array.shape, array.dtype.str, digest)
    return digest


def _digest_parts(*parts: Any) -> str:
    """sha256 over a canonical JSON encoding of ``parts``."""
    canonical = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def rng_position(rng: np.random.Generator) -> str:
    """Digest of a generator's bit-generator state — the *position* in the
    master seed stream.  Two pipelines at the same position will draw the
    same values, which is what makes the position a valid key component."""
    state = rng.bit_generator.state
    return _digest_parts(state)[:32]


# ---------------------------------------------------------------------------
# Counters and statistics.
# ---------------------------------------------------------------------------

@dataclass
class CacheCounters:
    """Hit/miss accounting (one shared instance per cache, one per view)."""

    hits: int = 0
    misses: int = 0
    stored: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "corrupt": self.corrupt,
        }

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of the cache directory plus the live counters."""

    directory: str
    entries: int
    total_bytes: int
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class CachedSubspace:
    """The persisted identity of a fitted PCA-like map: exactly the fields
    the wire format and downstream stages consume (basis + rank)."""

    basis: np.ndarray
    effective_rank: int


# ---------------------------------------------------------------------------
# The cache proper.
# ---------------------------------------------------------------------------

class StageCache:
    """Content-addressed, persisted memoization of stage outputs.

    Parameters
    ----------
    directory:
        Where ``<key>.npz`` entries live (created lazily on first store).
    memory_bytes:
        Budget of the in-process payload layer (0 disables it).
    """

    def __init__(self, directory: Union[str, Path],
                 memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 lock_timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self.directory = Path(directory)
        self.counters = CacheCounters()
        self.lock_timeout = float(lock_timeout)
        #: Times :meth:`locked` gave up waiting on a wedged holder and let
        #: the caller double-compute instead of deadlocking.
        self.lock_timeouts = 0
        self._memory_bytes = int(memory_bytes)
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._memory_used = 0
        self._lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._swept_stale_tmp = False

    # -------------------------------------------------------------- views
    def view(self) -> "StageCacheView":
        """A per-cell handle sharing this cache's storage but counting its
        own hits/misses (the sweep runner attributes cache statistics to
        individual cells this way)."""
        return StageCacheView(self)

    # --------------------------------------------------------------- keys
    def root_key(self, points: np.ndarray, k: int, epsilon: float,
                 delta: float) -> str:
        """Key of the raw input: content digest + clustering parameters
        (stages derive default sizes from ``k``/``epsilon``/``delta``)."""
        return _digest_parts(
            "root", CACHE_VERSION, content_digest(points),
            int(k), float(epsilon), float(delta),
        )

    def chain_key(self, parent: str, stage: Any,
                  rng: np.random.Generator) -> str:
        """Extend a prefix key by one stage invocation.

        The key covers the stage's configuration (:meth:`~repro.stages.
        base.Stage.fingerprint`), its pre-shared seed when it performed a
        handshake, and the master generator's position before the stage
        runs — together these determine the stage's output bit-for-bit
        given the upstream bytes already pinned by ``parent``.
        """
        shared = getattr(stage, "_shared_seed", None)
        return _digest_parts(
            parent, list(stage.fingerprint()),
            None if shared is None else int(shared),
            rng_position(rng),
        )

    def reference_key(self, points: np.ndarray, k: int, n_init: int,
                      seed: int) -> str:
        """Key of a reference k-means solution (the sweep runner caches
        the shared evaluation denominator alongside stage outputs)."""
        return _digest_parts(
            "reference", CACHE_VERSION, content_digest(points),
            int(k), int(n_init), int(seed),
        )

    # ------------------------------------------------------------ entries
    def lookup(self, key: str,
               counters: Optional[CacheCounters] = None) -> Optional[Dict[str, Any]]:
        """Load a payload by key (memory layer first, then disk).  Returns
        ``None`` on miss or corruption; counts neither hit nor miss — use
        :meth:`count_hit` / :meth:`count_miss` from the caller once the
        outcome is known (a payload that fails unpacking is still a miss).
        """
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                return payload
        path = self._entry_path(key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                payload = {name: archive[name] for name in archive.files}
            if int(payload["version"]) != CACHE_VERSION:
                return None
        except FileNotFoundError:
            return None
        except _CORRUPT_ERRORS:
            self._discard_corrupt(path, counters)
            return None
        self._remember(key, payload)
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist a payload atomically (write-then-rename) and remember it
        in the memory layer.  A crash between write and rename leaves only
        a ``.tmp-*.npz`` orphan — never a torn entry — which
        :meth:`sweep_stale_tmp` reclaims on a later run."""
        faultpoints.reach("cache.store")
        payload = dict(payload)
        payload["version"] = np.int64(CACHE_VERSION)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp_once()
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".npz", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            faultpoints.reach("cache.store.tmp")
            os.replace(tmp_path, self._entry_path(key))
        except faultpoints.FaultInjected:
            # Simulated crash between write and rename: leave the orphan
            # on disk exactly as a kill would.
            raise
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._remember(key, payload)

    def key_lock(self, key: str) -> threading.Lock:
        """The per-key lock concurrent cells serialize on, so a shared
        prefix is computed once per process (dedupe, not double-compute)."""
        with self._lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    @contextmanager
    def locked(self, key: str,
               timeout: Optional[float] = None) -> Iterator[bool]:
        """Hold ``key``'s dedupe lock for the duration of the block —
        *bounded*: after ``timeout`` seconds (default
        :attr:`lock_timeout`) waiting on a wedged holder, the block runs
        anyway without the lock (yielding ``False``), trading dedupe for
        liveness.  Entry stores are atomic, so two racing computations can
        at worst duplicate work, never corrupt the cache."""
        timeout = self.lock_timeout if timeout is None else float(timeout)
        lock = self.key_lock(key)
        acquired = lock.acquire(timeout=timeout)
        if not acquired:
            with self._lock:
                self.lock_timeouts += 1
        try:
            yield acquired
        finally:
            if acquired:
                lock.release()

    def sweep_stale_tmp(self,
                        max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Delete orphaned ``.tmp-*.npz`` files older than
        ``max_age_seconds`` (left by processes killed mid-store); returns
        the number removed.  Young temp files are left alone — they may be
        another live process's in-flight write."""
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - float(max_age_seconds)
        removed = 0
        for path in self.directory.glob(".tmp-*.npz"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def _sweep_stale_tmp_once(self) -> None:
        with self._lock:
            if self._swept_stale_tmp:
                return
            self._swept_stale_tmp = True
        self.sweep_stale_tmp()

    def count_hit(self, counters: Optional[CacheCounters] = None) -> None:
        with self._lock:
            self.counters.hits += 1
            if counters is not None:
                counters.hits += 1

    def count_miss(self, counters: Optional[CacheCounters] = None,
                   stored: bool = False) -> None:
        with self._lock:
            self.counters.misses += 1
            if counters is not None:
                counters.misses += 1
            if stored:
                self.counters.stored += 1
                if counters is not None:
                    counters.stored += 1

    # ------------------------------------------------------ housekeeping
    def stats(self) -> CacheStats:
        """Entry count and byte total of the directory + live counters."""
        entries = 0
        total = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    continue
        return CacheStats(
            directory=str(self.directory),
            entries=entries,
            total_bytes=total,
            counters=self.counters.as_dict(),
        )

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Evict oldest entries (by mtime) until the directory fits
        ``max_bytes``.  Returns ``(removed_entries, freed_bytes)``."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if not self.directory.is_dir():
            return (0, 0)
        self.sweep_stale_tmp()
        entries: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self.directory.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        if removed:
            with self._lock:
                self._memory.clear()
                self._memory_used = 0
        return (removed, freed)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        with self._lock:
            self._memory.clear()
            self._memory_used = 0
        return removed

    # ------------------------------------------------------------ internal
    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        if self._memory_bytes <= 0:
            return
        size = sum(
            value.nbytes for value in payload.values()
            if isinstance(value, np.ndarray)
        )
        if size > self._memory_bytes:
            return
        with self._lock:
            old = self._memory.pop(key, None)
            if old is not None:
                self._memory_used -= sum(
                    v.nbytes for v in old.values() if isinstance(v, np.ndarray)
                )
            self._memory[key] = payload
            self._memory_used += size
            while self._memory_used > self._memory_bytes and self._memory:
                _, evicted = self._memory.popitem(last=False)
                self._memory_used -= sum(
                    v.nbytes for v in evicted.values()
                    if isinstance(v, np.ndarray)
                )

    def _discard_corrupt(self, path: Path,
                         counters: Optional[CacheCounters]) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            self.counters.corrupt += 1
            if counters is not None:
                counters.corrupt += 1


class StageCacheView:
    """A thin handle over a shared :class:`StageCache` with private
    hit/miss counters — one per sweep cell, so per-cell cache statistics
    are exact even when cells share one store across threads."""

    def __init__(self, cache: StageCache) -> None:
        self.cache = cache
        self.counters = CacheCounters()

    # Key derivation and storage delegate verbatim; only counting differs.
    def root_key(self, *args, **kwargs) -> str:
        return self.cache.root_key(*args, **kwargs)

    def chain_key(self, *args, **kwargs) -> str:
        return self.cache.chain_key(*args, **kwargs)

    def reference_key(self, *args, **kwargs) -> str:
        return self.cache.reference_key(*args, **kwargs)

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        return self.cache.lookup(key, counters=self.counters)

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        self.cache.store(key, payload)

    def key_lock(self, key: str) -> threading.Lock:
        return self.cache.key_lock(key)

    def locked(self, key: str, timeout: Optional[float] = None):
        return self.cache.locked(key, timeout=timeout)

    def count_hit(self) -> None:
        self.cache.count_hit(self.counters)

    def count_miss(self, stored: bool = False) -> None:
        self.cache.count_miss(self.counters, stored=stored)


CacheLike = Union[StageCache, StageCacheView]


# ---------------------------------------------------------------------------
# Stage-effect (de)serialization.
# ---------------------------------------------------------------------------

def pack_effect(effect: StageEffect, seed_draws: int) -> Dict[str, Any]:
    """Flatten a :class:`StageEffect` into an npz-ready payload.

    ``seed_draws`` is the number of master-generator draws the stage
    consumed; a cache hit replays that many draws so downstream randomness
    stays bit-identical to a cold run.
    """
    state = effect.state
    payload: Dict[str, Any] = {
        "points": state.points,
        "shift": np.float64(state.shift),
        "seed_draws": np.int64(seed_draws),
        "has_lift": np.int64(effect.lift is not None),
        "detail_keys": np.array(sorted(effect.details), dtype=str),
        "detail_values": np.array(
            [float(effect.details[k]) for k in sorted(effect.details)],
            dtype=np.float64,
        ),
    }
    if state.weights is not None:
        payload["weights"] = state.weights
    if state.subspace is not None:
        payload["subspace_basis"] = np.asarray(state.subspace.basis)
        payload["subspace_rank"] = np.int64(state.subspace.effective_rank)
    return payload


def unpack_effect(payload: Dict[str, Any], stage: Any,
                  state_in: SourceState) -> Optional[Tuple[StageEffect, int]]:
    """Rebuild ``(StageEffect, seed_draws)`` from a stored payload.

    Arrays are copied so a downstream in-place transform (``PCAStage``
    projects in place) can never poison the shared memory layer.  Returns
    ``None`` when the entry cannot be honoured (e.g. a recorded lift the
    stage cannot rebuild) — the caller then recomputes.
    """
    points = np.array(payload["points"])
    weights = np.array(payload["weights"]) if "weights" in payload else None
    subspace = None
    if "subspace_basis" in payload:
        subspace = CachedSubspace(
            basis=np.array(payload["subspace_basis"]),
            effective_rank=int(payload["subspace_rank"]),
        )
    lift = None
    if int(payload["has_lift"]):
        rebuild = getattr(stage, "rebuild_lift", None)
        lift = rebuild(state_in.dimension, int(points.shape[1])) if rebuild else None
        if lift is None:
            return None
    details = {
        str(key): float(value)
        for key, value in zip(payload["detail_keys"], payload["detail_values"])
    }
    state = state_in.evolve(
        points=points,
        weights=weights,
        shift=float(payload["shift"]),
        subspace=subspace,
    )
    return (
        StageEffect(state=state, lift=lift, details=details),
        int(payload["seed_draws"]),
    )


# ---------------------------------------------------------------------------
# Reference-solution entries (the sweep's shared evaluation denominator).
# ---------------------------------------------------------------------------

def pack_reference(centers: np.ndarray, cost: float) -> Dict[str, Any]:
    return {
        "reference_centers": np.asarray(centers),
        "reference_cost": np.float64(cost),
    }


def unpack_reference(payload: Dict[str, Any]) -> Tuple[np.ndarray, float]:
    return (
        np.array(payload["reference_centers"]),
        float(payload["reference_cost"]),
    )


__all__ = [
    "CACHE_VERSION",
    "DEFAULT_LOCK_TIMEOUT",
    "STALE_TMP_SECONDS",
    "CacheCounters",
    "CacheStats",
    "CachedSubspace",
    "CacheLike",
    "StageCache",
    "StageCacheView",
    "content_digest",
    "rng_position",
    "pack_effect",
    "unpack_effect",
    "pack_reference",
    "unpack_reference",
]
