"""Bicriteria approximation for k-means via adaptive sampling.

Implements the Aggarwal–Deshpande–Kannan adaptive-sampling scheme (paper
references [36]/[42]): repeatedly draw batches of ``O(k)`` points with
D²-sampling.  The selected set ``B`` has more than ``k`` points but its cost
is within a constant factor of the optimal k-means cost with constant
probability; repeating ``log(1/δ)`` times and keeping the best run boosts the
confidence.

Two consumers in this library:

* sensitivity sampling (:mod:`repro.cr.sensitivity`) uses the bicriteria set
  to upper-bound point sensitivities;
* the quantizer configuration of Section 6.3 uses ``cost(P, B)/20`` as the
  lower bound ``E`` on the optimal k-means cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kmeans.cost import assign_to_centers, weighted_kmeans_cost
from repro.kmeans.seeding import d2_sampling
from repro.utils.random import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_matrix, check_positive_int, check_weights


@dataclass
class BicriteriaResult:
    """A bicriteria solution: more than ``k`` centers, constant-factor cost.

    Attributes
    ----------
    centers:
        Selected points (shape ``(b, d)`` with ``b >= k`` typically).
    cost:
        Weighted k-means cost of the original data against ``centers``.
    labels:
        Nearest-center assignment of the input points.
    rounds:
        Number of adaptive-sampling rounds used by the winning repetition.
    """

    centers: np.ndarray
    cost: float
    labels: np.ndarray
    rounds: int

    @property
    def size(self) -> int:
        return int(self.centers.shape[0])

    def optimal_cost_lower_bound(self, slack: float = 20.0) -> float:
        """Lower bound ``E = cost / slack`` on the optimal k-means cost.

        The adaptive-sampling guarantee states the bicriteria cost is at most
        a constant (the paper uses 20) times the optimum, hence dividing by
        that constant yields a valid lower bound with high probability.
        """
        return self.cost / float(slack)


def bicriteria_approximation(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    rounds: Optional[int] = None,
    batch_factor: int = 3,
    repetitions: int = 3,
    seed: SeedLike = None,
) -> BicriteriaResult:
    """Adaptive-sampling bicriteria approximation for weighted k-means.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    k:
        Target number of clusters.
    weights:
        Optional non-negative point weights.
    rounds:
        Number of adaptive sampling rounds; defaults to
        ``ceil(log2(n)) + 1`` capped to keep the selected set small.
    batch_factor:
        Points drawn per round = ``batch_factor * k``.
    repetitions:
        Independent repetitions; the lowest-cost selection wins (this is the
        ``log(1/δ)`` boosting described in Section 6.3).
    seed:
        RNG seed or generator.
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n = points.shape[0]
    weights = check_weights(weights, n)
    check_positive_int(batch_factor, "batch_factor")
    check_positive_int(repetitions, "repetitions")
    rng = as_generator(seed)

    if rounds is None:
        rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    rounds = check_positive_int(rounds, "rounds")

    best: Optional[BicriteriaResult] = None
    for rep_rng in spawn_generators(rng, repetitions):
        centers = _single_adaptive_run(points, k, weights, rounds, batch_factor, rep_rng)
        cost = weighted_kmeans_cost(points, centers, weights)
        if best is None or cost < best.cost:
            labels, _ = assign_to_centers(points, centers)
            best = BicriteriaResult(
                centers=centers, cost=float(cost), labels=labels, rounds=rounds
            )
    return best


def _single_adaptive_run(
    points: np.ndarray,
    k: int,
    weights: np.ndarray,
    rounds: int,
    batch_factor: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One adaptive-sampling pass: iteratively add D²-sampled batches."""
    n = points.shape[0]
    batch = min(batch_factor * k, n)
    selected_indices: list[int] = []
    centers: Optional[np.ndarray] = None

    for _ in range(rounds):
        indices, _ = d2_sampling(points, centers, batch, weights=weights, seed=rng)
        selected_indices.extend(int(i) for i in indices)
        unique = np.unique(np.asarray(selected_indices, dtype=int))
        centers = points[unique]
        # Early exit: once the residual cost is (numerically) zero every
        # point coincides with a selected center and further rounds are moot.
        residual = weighted_kmeans_cost(points, centers, weights)
        if residual <= 0.0:
            break
    return centers if centers is not None else points[:1].copy()
