"""E7/E8 — Figures 5 and 6: multi-source pipelines with quantization.

Same sweep as Figures 3–4 but for BKLW+QT and JL+BKLW+QT over 10 data
sources.

Expected shape (paper): communication decreases with fewer significant bits
(about 10 % saving at the optimum relative to s = 53, smaller than in the
single-source case because the disPCA basis transfer is not quantized);
normalized cost and running time remain flat except for very small ``s``;
JL+BKLW+QT dominates BKLW+QT in both communication and running time at
similar cost.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from bench_helpers import (
    MONTE_CARLO_RUNS,
    NUM_SOURCES,
    QT_BITS_GRID,
    multi_source_factories,
    print_series,
    run_once,
)
from repro.metrics import ExperimentRunner


def _sweep(points) -> Dict[str, Dict[str, List[float]]]:
    runner = ExperimentRunner(points, k=2, monte_carlo_runs=max(1, MONTE_CARLO_RUNS - 1), seed=33)
    cost_series: Dict[str, List[float]] = {}
    comm_series: Dict[str, List[float]] = {}
    time_series: Dict[str, List[float]] = {}
    for bits in QT_BITS_GRID:
        factories = multi_source_factories(points.shape[1], quantizer_bits=bits)
        result = runner.run_multi_source(factories, num_sources=NUM_SOURCES)
        for label in factories:
            cost_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "normalized_cost")))
            )
            comm_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "normalized_communication")))
            )
            time_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "source_seconds")))
            )
    return {"cost": cost_series, "comm": comm_series, "time": time_series}


def _check_shape(series: Dict[str, Dict[str, List[float]]]) -> None:
    grid = list(QT_BITS_GRID)
    s20 = grid.index(20)
    for label, comm in series["comm"].items():
        assert comm[0] < comm[-1], (label, comm)
        cost = series["cost"][label]
        assert cost[s20] <= cost[-1] * 1.3 + 0.1, (label, cost)
    # Algorithm 4 transmits less than BKLW at every precision level.
    bklw = series["comm"]["BKLW"]
    alg4 = series["comm"]["JL+BKLW (Alg4)"]
    assert all(a <= b for a, b in zip(alg4, bklw))


@pytest.mark.benchmark(group="fig5")
def test_fig5_mnist_multi_qt_sweep(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    series = run_once(benchmark, lambda: _sweep(points))
    print_series("Fig. 5(a) MNIST-like: normalized k-means cost vs s",
                 "s (bits)", QT_BITS_GRID, series["cost"])
    print_series("Fig. 5(b) MNIST-like: normalized communication vs s",
                 "s (bits)", QT_BITS_GRID, series["comm"])
    print_series("Fig. 5(c) MNIST-like: per-source running time (s) vs s",
                 "s (bits)", QT_BITS_GRID, series["time"])
    _check_shape(series)


@pytest.mark.benchmark(group="fig6")
def test_fig6_neurips_multi_qt_sweep(benchmark, neurips_dataset):
    points, _ = neurips_dataset
    series = run_once(benchmark, lambda: _sweep(points))
    print_series("Fig. 6(a) NeurIPS-like: normalized k-means cost vs s",
                 "s (bits)", QT_BITS_GRID, series["cost"])
    print_series("Fig. 6(b) NeurIPS-like: normalized communication vs s",
                 "s (bits)", QT_BITS_GRID, series["comm"])
    print_series("Fig. 6(c) NeurIPS-like: per-source running time (s) vs s",
                 "s (bits)", QT_BITS_GRID, series["time"])
    _check_shape(series)
