"""Helpers shared by the benchmark files: pipeline factories tuned to the
paper's experimental regime, and table/series printers.

The parameter choices mirror Section 7.1: the paper tunes the summary sizes
of all algorithms so that they land in a comparable empirical error regime,
then compares communication and running time.  The same tuning philosophy is
applied here at laptop scale.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.pipelines import (
    FSSJLPipeline,
    FSSPipeline,
    JLFSSJLPipeline,
    JLFSSPipeline,
    NoReductionPipeline,
)
from repro.core.distributed_pipelines import BKLWPipeline, JLBKLWPipeline
from repro.quantization.rounding import RoundingQuantizer

#: Scale factor for dataset sizes (1.0 = default laptop scale).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Monte-Carlo repetitions per benchmark (the paper uses 10).
MONTE_CARLO_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
#: Number of data sources in the multi-source experiments (paper: 10).
NUM_SOURCES = int(os.environ.get("REPRO_BENCH_SOURCES", "10"))
#: Number of clusters (the paper uses k = 2 throughout Section 7).
K = 2

#: Coreset cardinality shared by all single-source coreset algorithms.
CORESET_SIZE = 300
#: PCA rank (the intrinsic-dimension parameter t of FSS) in the single-source
#: benchmarks.  Chosen large enough that FSS's d x t basis transfer — the term
#: the JL-based pipelines eliminate — is visible at laptop scale, as it is at
#: the paper's scale.
PCA_RANK = 64
#: disPCA rank used by the multi-source benchmarks (each of the m sources
#: ships a d x rank sketch, so a smaller rank keeps BKLW's absolute cost in a
#: realistic range at laptop scale).
DISTRIBUTED_PCA_RANK = 20
#: disSS global sample budget for the multi-source algorithms.
DISTRIBUTED_SAMPLES = 300
#: Dimension of the final (coreset-space) JL projection used by Algorithms 2
#: and 3; this is the d'' of Lemma 4.2 after the paper-style tuning.
CORESET_JL_DIMENSION = 64
#: Grid of significant-bit settings for the quantization sweeps (the paper
#: sweeps s = 1..53; a coarse grid keeps the harness fast while covering the
#: same range and shape).
QT_BITS_GRID = (5, 10, 15, 20, 30, 40, 53)


def jl_dimension_for(d: int) -> int:
    """JL target dimension used by the benchmarks: roughly half the ambient
    dimension, matching the d'/d ratio implied by the paper's settings."""
    return max(32, d // 2)


# ---------------------------------------------------------------------------
# Factories for the single-source algorithms (Fig. 1 / Table 3 / Figs. 3-4).
# ---------------------------------------------------------------------------

def single_source_factories(
    d: int,
    quantizer_bits: Optional[int] = None,
    include_nr: bool = False,
) -> Dict[str, Callable[[int], object]]:
    """Build the labelled pipeline factories for the single-source setting."""
    quantizer = None
    if quantizer_bits is not None and quantizer_bits < 53:
        quantizer = RoundingQuantizer(quantizer_bits)
    common = dict(k=2, coreset_size=CORESET_SIZE, pca_rank=PCA_RANK, quantizer=quantizer)
    jl_dim = jl_dimension_for(d)

    factories: Dict[str, Callable[[int], object]] = {}
    if include_nr:
        factories["NR"] = lambda seed: NoReductionPipeline(k=2, seed=seed, quantizer=quantizer)
    factories["FSS"] = lambda seed: FSSPipeline(seed=seed, **common)
    factories["JL+FSS (Alg1)"] = lambda seed: JLFSSPipeline(
        seed=seed, jl_dimension=jl_dim, **common
    )
    factories["FSS+JL (Alg2)"] = lambda seed: FSSJLPipeline(
        seed=seed, jl_dimension=CORESET_JL_DIMENSION, **common
    )
    factories["JL+FSS+JL (Alg3)"] = lambda seed: JLFSSJLPipeline(
        seed=seed,
        jl_dimension=jl_dim,
        second_jl_dimension=CORESET_JL_DIMENSION,
        **common,
    )
    return factories


# ---------------------------------------------------------------------------
# Factories for the multi-source algorithms (Fig. 2 / Table 4 / Figs. 5-6).
# ---------------------------------------------------------------------------

def multi_source_factories(
    d: int,
    quantizer_bits: Optional[int] = None,
) -> Dict[str, Callable[[int], object]]:
    """Build the labelled pipeline factories for the multi-source setting."""
    quantizer = None
    if quantizer_bits is not None and quantizer_bits < 53:
        quantizer = RoundingQuantizer(quantizer_bits)
    common = dict(
        k=2,
        total_samples=DISTRIBUTED_SAMPLES,
        pca_rank=DISTRIBUTED_PCA_RANK,
        quantizer=quantizer,
    )
    jl_dim = jl_dimension_for(d)
    return {
        "BKLW": lambda seed: BKLWPipeline(seed=seed, **common),
        "JL+BKLW (Alg4)": lambda seed: JLBKLWPipeline(seed=seed, jl_dimension=jl_dim, **common),
    }


# ---------------------------------------------------------------------------
# Printing helpers.
# ---------------------------------------------------------------------------

def print_table(title: str, rows: Dict[str, Dict[str, float]], column_order: Sequence[str]) -> None:
    """Print a dictionary-of-rows table in a fixed column order."""
    print(f"\n=== {title} ===")
    header = f"{'algorithm':<22}" + "".join(f"{c:>24}" for c in column_order)
    print(header)
    for name, metrics in rows.items():
        line = f"{name:<22}"
        for column in column_order:
            value = metrics.get(column, float("nan"))
            line += f"{value:>24.6g}"
        print(line)


def print_series(title: str, x_label: str, xs: Iterable, series: Dict[str, Sequence[float]]) -> None:
    """Print aligned per-algorithm series against a common x axis."""
    print(f"\n=== {title} ===")
    names = list(series)
    print(f"{x_label:<12}" + "".join(f"{n:>24}" for n in names))
    for i, x in enumerate(xs):
        row = f"{x:<12}" + "".join(f"{series[n][i]:>24.6g}" for n in names)
        print(row)


def print_cdf(title: str, samples_by_algorithm: Dict[str, np.ndarray]) -> None:
    """Print the sorted per-run samples that the paper plots as CDFs."""
    print(f"\n=== {title} (per-run samples, sorted — the paper's CDF) ===")
    for name, samples in samples_by_algorithm.items():
        values = ", ".join(f"{v:.4g}" for v in np.sort(np.asarray(samples)))
        print(f"{name:<22} [{values}]")


def summarize_result(result, metrics=("normalized_cost", "normalized_communication", "source_seconds")):
    """Collapse an ExperimentResult into mean-per-metric rows for printing."""
    rows: Dict[str, Dict[str, float]] = {}
    for label in result.evaluations:
        rows[label] = {m: float(np.mean(result.metric_samples(label, m))) for m in metrics}
    return rows


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing (the experiment
    repeats measurements internally via Monte-Carlo runs)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# ---------------------------------------------------------------------------
# Machine-readable benchmark persistence (perf trajectory across PRs).
# ---------------------------------------------------------------------------

#: Directory the BENCH_<category>.json files are written to; CI uploads it as
#: an artifact so the perf trajectory is comparable across PRs.
RESULTS_DIR = os.environ.get(
    "REPRO_BENCH_RESULTS_DIR", os.path.join(os.path.dirname(__file__), "results")
)


def bench_rows(result, wall_seconds: Optional[float] = None) -> Dict[str, Dict[str, float]]:
    """Collapse an ExperimentResult into persistable per-algorithm rows:
    normalized cost, communication in scalars and bits, source compute time,
    and (optionally) the wall-clock time of the whole experiment."""
    rows = summarize_result(
        result,
        metrics=(
            "normalized_cost",
            "normalized_communication",
            "communication_scalars",
            "communication_bits",
            "source_seconds",
        ),
    )
    for label, metrics in rows.items():
        metrics["runs"] = float(len(result.evaluations[label]))
        if wall_seconds is not None:
            metrics["wall_seconds"] = float(wall_seconds)
    return rows


def record_bench(
    category: str,
    rows: Dict[str, Dict[str, float]],
    num_sources: Optional[int] = None,
) -> str:
    """Merge ``rows`` into ``BENCH_<category>.json`` and return its path.

    Several tests contribute to one category file (each merges its own
    algorithm rows); re-running a test overwrites its rows in place.  The
    run configuration (scale, Monte-Carlo runs, sources, timestamp) is
    recorded *per row*, so rows written under different configurations keep
    their own provenance when merged into the same file.

    The ``num_sources`` provenance defaults to the module-level
    :data:`NUM_SOURCES`; pass ``num_sources=`` to override it for the whole
    call, or put a ``num_sources`` key in a row's metrics to pin that row's
    actual source count (scaling curves sweep the count per row).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{category}.json")
    payload = {"meta": {"category": category}, "algorithms": {}}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing.get("algorithms"), dict):
                payload["algorithms"].update(existing["algorithms"])
        except (OSError, ValueError):
            pass  # a corrupt previous file is replaced wholesale
    provenance = {
        "scale": SCALE,
        "monte_carlo_runs": float(MONTE_CARLO_RUNS),
        "num_sources": float(NUM_SOURCES if num_sources is None else num_sources),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    for name, metrics in rows.items():
        # Provenance first, metrics second: a row that reports its own
        # num_sources (a scaling-curve row) keeps it.
        row = dict(provenance)
        row.update({k: float(v) for k, v in metrics.items()})
        payload["algorithms"][name] = row
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def record_result(category: str, result, wall_seconds: Optional[float] = None,
                  prefix: str = "") -> str:
    """Persist an ExperimentResult under ``category`` (labels optionally
    prefixed, e.g. with the dataset name)."""
    rows = bench_rows(result, wall_seconds=wall_seconds)
    if prefix:
        rows = {f"{prefix}:{label}": metrics for label, metrics in rows.items()}
    return record_bench(category, rows)


# ---------------------------------------------------------------------------
# Primitive/pipeline perf timing (the BENCH_perf.json trajectory).
# ---------------------------------------------------------------------------

def time_best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()`` (warm caches win)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_perf(rows: Dict[str, Dict[str, float]]) -> str:
    """Merge timing rows into ``BENCH_perf.json``.

    Rows are keyed ``<tag>:<subject>`` — ``baseline:fss`` vs ``post:fss`` for
    a before/after pair inside one PR, or plain subjects for the recurring CI
    perf smoke.  Each row carries the usual provenance (scale, timestamp), so
    the file accumulates a comparable perf trajectory across PRs.
    """
    return record_bench("perf", rows)
