"""The :class:`TopologyRouter`: wire sources → aggregators → server.

The router owns a tree run's delivery schedule.  Each batch step it

1. folds ended sources' window advances into their parents (uncounted, as
   in the flat path — retirements ship no payload scalars);
2. folds every live source's flushed delta into its parent;
3. walks the aggregators in ascending level order — every child has
   already emitted — folding each aggregator's upward update into *its*
   parent, so a summary reaches the server through ``hops`` metered,
   re-compressed hops within the same step;
4. charges the step's uplink delta (sources *and* aggregator hops) to the
   engine's per-step ledger.

Fault awareness: a dead aggregator takes exactly its subtree with it.  Its
descendants are marked failed (their links lead nowhere), its own last
shipped bucket stays at its parent as stale-but-valid data, and the rest
of the tree keeps streaming — mirroring the flat path's dead-source
semantics one level up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.distributed.conditions import SERVER_ID, FaultPlan
from repro.distributed.network import SimulatedNetwork
from repro.streaming.server import StreamingServer
from repro.streaming.source import SourceUpdate, StreamingSource
from repro.topology.aggregator import AggregatorNode
from repro.topology.spec import Topology, is_aggregator_id


class TopologyRouter:
    """Delivery router for one tree-topology streaming run.

    Parameters
    ----------
    topology:
        The (non-star) tree; its source ids must match the run's sources.
    sources:
        The run's :class:`StreamingSource`\\ s in index order, already
        constructed to transmit to their topology parent.
    aggregators:
        One :class:`AggregatorNode` per ``topology.aggregator_ids``, in
        that order.
    server:
        The root fold target.
    network:
        The shared metered network.
    fault_plan:
        The run's scripted faults, consulted per step for aggregator
        dropout.
    """

    def __init__(
        self,
        topology: Topology,
        sources: Sequence[StreamingSource],
        aggregators: Sequence[AggregatorNode],
        server: StreamingServer,
        network: SimulatedNetwork,
        fault_plan: FaultPlan,
    ) -> None:
        self.topology = topology
        self.sources = list(sources)
        self.aggregators = list(aggregators)
        self.server = server
        self.network = network
        self.fault_plan = fault_plan
        self._aggregators_by_id: Dict[str, AggregatorNode] = {
            agg.agg_id: agg for agg in self.aggregators
        }
        self._source_index = {s.source_id: i for i, s in enumerate(self.sources)}
        self._dead_aggregators: set = set()
        # Registration handshake, one hop at a time: the server admits its
        # direct children, every aggregator admits its own.
        for child in topology.children(SERVER_ID):
            server.register(child)
        for agg in self.aggregators:
            for child in topology.children(agg.agg_id):
                agg.register(child)

    # ------------------------------------------------------------- delivery
    def _fold_into_parent(self, node_id: str, update: SourceUpdate) -> None:
        parent = self.topology.parent(node_id)
        if parent == SERVER_ID:
            self.server.fold(update)
        else:
            self._aggregators_by_id[parent].fold(update)

    def apply_faults(self, t: int) -> List[int]:
        """Kill aggregators the fault plan drops at step ``t``.

        Marks the dead aggregator and its whole subtree failed on the
        network and returns the *source indexes* newly cut off, so the
        engine stops their ingestion.  The parent keeps the dead
        aggregator's last shipped bucket — stale but valid data, exactly
        like a dead source's last summary in the flat path.
        """
        severed: List[int] = []
        for agg in self.aggregators:
            if agg.agg_id in self._dead_aggregators:
                continue
            if self.fault_plan.is_permanently_down(agg.agg_id, t):
                for node in self.topology.subtree_nodes(agg.agg_id):
                    self.network.mark_failed(node)
                    if is_aggregator_id(node):
                        self._dead_aggregators.add(node)
                    else:
                        severed.append(self._source_index[node])
        return severed

    def deliver_step(
        self,
        t: int,
        arrivals: Sequence[Optional[object]],
        ledger: Dict[int, List[int]],
        window: Optional[int],
    ) -> None:
        """Run one step's transmission phase through the tree."""
        network = self.network
        # Window advances first, outside the ledger capture: an ended
        # stream still ages while others ingest, and its retirements ship
        # no payload scalars — matching the flat path's accounting.
        if window is not None:
            for source, batch in zip(self.sources, arrivals):
                if batch is None and not network.is_failed(source.source_id):
                    self._fold_into_parent(source.source_id, source.advance(t))
        scalars_before = network.uplink_scalars()
        bits_before = network.uplink_bits()
        for source, batch in zip(self.sources, arrivals):
            if batch is not None:
                self._fold_into_parent(source.source_id, source.flush(t))
        # Ascending level order: every child — source or lower aggregator —
        # has already emitted this step, so each hop forwards fresh data.
        for agg in self.aggregators:
            if network.is_failed(agg.agg_id):
                continue
            self._fold_into_parent(agg.agg_id, agg.emit(t))
        step = ledger.setdefault(t, [0, 0])
        step[0] += network.uplink_scalars() - scalars_before
        step[1] += network.uplink_bits() - bits_before

    # ------------------------------------------------------------ reporting
    @property
    def failed_aggregators(self) -> int:
        return len(self._dead_aggregators)

    @property
    def aggregator_seconds(self) -> float:
        """Max per-aggregator compute — the tree analogue of the paper's
        max-per-source metric (hops run serially, peers in parallel)."""
        return max((a.compute_seconds for a in self.aggregators), default=0.0)

    @property
    def total_aggregator_seconds(self) -> float:
        return sum(a.compute_seconds for a in self.aggregators)

    @property
    def aggregator_merges(self) -> int:
        return sum(a.merges for a in self.aggregators)

    @property
    def aggregator_delivery_failures(self) -> int:
        return sum(a.delivery_failures for a in self.aggregators)
