"""Chaos suite: every registered pipeline survives an unreliable edge.

Marked ``chaos`` (CI runs it as a dedicated job: ``pytest -m chaos``); the
tests also run in the default collection because they are fast.

The scenario is the ISSUE's acceptance bar: 20% per-message Bernoulli loss
on every link plus one source dropped mid-protocol.  Every registered
distributed and streaming composition must terminate with a valid report
that flags the degraded participation, and identical seeds must yield
identical degraded reports (loss draws come from per-link generators derived
from the network seed, never from global state).
"""

import numpy as np
import pytest

from repro.core import registry
from repro.distributed.conditions import FaultPlan, LinkModel, NetworkCondition

pytestmark = pytest.mark.chaos

NUM_SOURCES = 3
#: 20% loss with a retry budget deep enough that a *permanent* per-message
#: failure is a ~1e-5 event — rare, deterministic per seed, and survivable
#: (the protocol excludes the source rather than crashing).
CHAOS_CONDITION = NetworkCondition(
    name="chaos",
    default_link=LinkModel(loss=0.2, latency_seconds=0.01,
                           bandwidth_bits_per_second=10e6),
    retries=6,
)

MULTI_NAMES = registry.registered_names(multi_source=True, streaming=False)
STREAMING_NAMES = registry.registered_names(streaming=True)
SINGLE_NAMES = registry.registered_names(multi_source=False)

PIPELINE_KWARGS = dict(
    coreset_size=40, total_samples=60, pca_rank=4, jl_dimension=8, batch_size=32,
)


def _dropout_round(name: str) -> int:
    # nr-distributed completes in a single communication round, so the drop
    # must hit round 0; the multi-round protocols lose the source mid-way.
    return 0 if name == "nr-distributed" else 1


def _run(name: str, points, network_seed: int = 99, drop: bool = True):
    fault_plan = (
        FaultPlan(dropout={"source-1": _dropout_round(name)}) if drop else None
    )
    pipeline = registry.create_pipeline(
        name,
        strict=False,  # merged kwargs cover both kinds deliberately
        k=3,
        seed=123,
        network=CHAOS_CONDITION,
        fault_plan=fault_plan,
        network_seed=network_seed,
        **PIPELINE_KWARGS,
    )
    if registry.is_multi_source(name):
        return pipeline.run_on_dataset(points, num_sources=NUM_SOURCES,
                                       partition_seed=7)
    return pipeline.run(points)


def _report_signature(report):
    """Everything that must be identical between same-seed degraded runs."""
    return (
        report.centers.tobytes(),
        report.communication_scalars,
        report.communication_bits,
        report.participating_sources,
        report.failed_sources,
        report.retransmissions,
        report.messages_lost,
        round(report.simulated_network_seconds, 12),
        tuple(sorted((report.tag_scalars or {}).items())),
    )


@pytest.mark.parametrize("name", MULTI_NAMES + STREAMING_NAMES)
class TestChaosMultiSource:
    def test_completes_and_flags_degraded_participation(self, name, blob_points):
        report = _run(name, blob_points)
        assert np.all(np.isfinite(report.centers))
        assert report.centers.shape[0] == 3
        # The dropped source must be visible in the report.
        assert report.failed_sources >= 1
        assert report.participating_sources < NUM_SOURCES
        assert report.participating_sources >= 1
        assert report.degraded
        # 20% loss on every link forces visible retransmissions.
        assert report.retransmissions > 0
        assert report.messages_lost > 0
        assert report.messages_lost >= report.retransmissions
        assert report.simulated_network_seconds > 0.0

    def test_identical_seed_identical_degraded_report(self, name, blob_points):
        first = _report_signature(_run(name, blob_points))
        second = _report_signature(_run(name, blob_points))
        assert first == second

    def test_different_network_seed_changes_loss_pattern_only(self, name, blob_points):
        # Different loss draws may change retry counts, yet the run still
        # terminates with a valid degraded report.
        report = _run(name, blob_points, network_seed=12345)
        assert np.all(np.isfinite(report.centers))
        assert report.failed_sources >= 1


@pytest.mark.parametrize("name", SINGLE_NAMES)
class TestChaosSingleSource:
    def test_completes_under_loss(self, name, blob_points):
        # One source cannot drop out (there would be no protocol left), but
        # its link is just as lossy: the run completes through retries.
        report = _run(name, blob_points, drop=False)
        assert np.all(np.isfinite(report.centers))
        assert report.participating_sources == 1
        assert report.failed_sources == 0
        assert report.messages_lost >= 0
        assert report.simulated_network_seconds > 0.0

    def test_deterministic_under_loss(self, name, blob_points):
        first = _report_signature(_run(name, blob_points, drop=False))
        second = _report_signature(_run(name, blob_points, drop=False))
        assert first == second


class TestChaosStreamingSemantics:
    def test_dropped_source_stops_contributing_batches(self, blob_points):
        ideal = registry.create_pipeline(
            "stream-fss", strict=False, k=3, seed=123, **PIPELINE_KWARGS
        )
        healthy = ideal.run_on_dataset(blob_points, num_sources=NUM_SOURCES,
                                       partition_seed=7)
        degraded = _run("stream-fss", blob_points)
        assert degraded.details["num_batches"] < healthy.details["num_batches"]

    def test_flaky_source_recovers_and_catches_up(self, blob_points):
        # A flaky window loses steps 1-2; pending deltas ship on recovery,
        # so the source is never excluded and participation stays full.
        pipeline = registry.create_pipeline(
            "stream-fss",
            strict=False,
            k=3,
            seed=123,
            network=CHAOS_CONDITION,
            fault_plan=FaultPlan(flaky={"source-2": (1, 3)}),
            network_seed=99,
            **PIPELINE_KWARGS,
        )
        report = pipeline.run_on_dataset(blob_points, num_sources=NUM_SOURCES,
                                         partition_seed=7)
        assert report.failed_sources == 0
        assert report.participating_sources == NUM_SOURCES
        assert report.details["delivery_failures"] > 0
        assert np.all(np.isfinite(report.centers))
