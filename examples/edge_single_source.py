"""Single data source at the edge: compare every algorithm of Section 4.

Reproduces the Figure 1 / Table 3 comparison at a small scale: one device
holds an MNIST-like dataset; we run NR (raw data), FSS, JL+FSS (Alg. 1),
FSS+JL (Alg. 2), and JL+FSS+JL (Alg. 3), each over several Monte-Carlo runs,
and report the paper's three metrics: normalized k-means cost, normalized
communication cost, and data-source running time.

Run with:  python examples/edge_single_source.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FSSJLPipeline,
    FSSPipeline,
    JLFSSJLPipeline,
    JLFSSPipeline,
    NoReductionPipeline,
    make_mnist_like,
)
from repro.metrics import ExperimentRunner

MONTE_CARLO_RUNS = 3
CORESET_SIZE = 300
PCA_RANK = 48
K = 2


def main() -> None:
    points, spec = make_mnist_like(n=2000, d=784, seed=0)
    d = points.shape[1]
    print(f"dataset: {spec.name}, n={spec.n}, d={spec.d}  (substitute for MNIST)")

    runner = ExperimentRunner(points, k=K, monte_carlo_runs=MONTE_CARLO_RUNS, seed=42)
    common = dict(k=K, coreset_size=CORESET_SIZE, pca_rank=PCA_RANK)
    factories = {
        "NR (raw data)": lambda s: NoReductionPipeline(k=K, seed=s),
        "FSS": lambda s: FSSPipeline(seed=s, **common),
        "JL+FSS (Alg1)": lambda s: JLFSSPipeline(seed=s, jl_dimension=d // 2, **common),
        "FSS+JL (Alg2)": lambda s: FSSJLPipeline(seed=s, jl_dimension=64, **common),
        "JL+FSS+JL (Alg3)": lambda s: JLFSSJLPipeline(
            seed=s, jl_dimension=d // 2, second_jl_dimension=64, **common
        ),
    }

    result = runner.run_single_source(factories)

    print(f"\n{'algorithm':<18}{'norm. cost':>14}{'norm. comm.':>14}{'source time (s)':>18}")
    for label, summary in result.summary().items():
        print(
            f"{label:<18}{summary.mean_normalized_cost:>14.4f}"
            f"{summary.mean_normalized_communication:>14.5f}"
            f"{summary.mean_source_seconds:>18.3f}"
        )

    print("\nPer-run normalized costs (the paper plots these as CDFs):")
    for label in factories:
        samples = np.sort(result.metric_samples(label, "normalized_cost"))
        print(f"  {label:<18} {np.array2string(samples, precision=4)}")


if __name__ == "__main__":
    main()
