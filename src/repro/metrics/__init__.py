"""Metrics and the Monte-Carlo experiment harness.

Implements the three performance metrics of Section 7.1 —

* normalized k-means cost ``cost(P, X)/cost(P, X*)``,
* normalized communication cost (bits transmitted / bits of the raw data),
* running time at the data source(s),

— and a small experiment harness (:class:`ExperimentRunner`) that repeats a
set of pipelines for several Monte-Carlo runs, producing the per-run samples
from which the paper's CDF figures and summary tables are built.
"""

from repro.metrics.evaluation import (
    EvaluationContext,
    PipelineEvaluation,
    evaluate_report,
)
from repro.metrics.experiment import (
    ExperimentRunner,
    ExperimentResult,
    AlgorithmSummary,
    EVALUATION_METRICS,
    empirical_cdf,
)
from repro.metrics.profile import GOLDEN_CONFIG, communication_profile

__all__ = [
    "EvaluationContext",
    "PipelineEvaluation",
    "evaluate_report",
    "ExperimentRunner",
    "ExperimentResult",
    "AlgorithmSummary",
    "EVALUATION_METRICS",
    "empirical_cdf",
    "GOLDEN_CONFIG",
    "communication_profile",
]
