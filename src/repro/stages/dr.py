"""Dimensionality-reduction stages: JL projections and in-place PCA.

``JLStage`` is data-oblivious: its matrix is a function of ``(d, d', seed)``
only, so the seed handshake lets the server re-derive the identical map and
describing it costs zero communication.  Its lift is the Moore–Penrose
pseudo-inverse (Section 3.1).

``PCAStage`` is the FSS-style *in-place* projection ``A -> A V Vᵀ``: the
points stay in ambient coordinates but now span the rank-``t`` principal
subspace, the discarded tail energy ``‖A − A V Vᵀ‖²_F`` joins the coreset
shift Δ, and the fitted basis is recorded on the state so the wire format can
send ``t`` coordinates per point plus the basis (``d·t`` scalars) — the term
that dominates FSS's communication and that a subsequent JL stage removes.
"""

from __future__ import annotations

from typing import Optional

from repro.dr.jl import JLProjection
from repro.dr.pca import PCAProjection
from repro.stages.base import Stage, StageContext, StageEffect, SourceState
from repro.stages.sizing import default_jl_dimension, default_pca_rank
from repro.utils.validation import check_positive_int


class JLStage(Stage):
    """Apply a shared-seed JL projection to the current point set.

    Parameters
    ----------
    dimension:
        Explicit target dimension ``d'`` (capped at the input dimension);
        when omitted it is derived from the state via Lemma 4.1 (raw data,
        cardinality ``n``) or Lemma 4.2 (coreset, cardinality ``|S|``).
    ensemble:
        Matrix ensemble, ``"gaussian"`` or ``"rademacher"``.
    """

    name = "JL"
    requires_shared_seed = True
    cacheable = True

    def __init__(self, dimension: Optional[int] = None, ensemble: str = "gaussian") -> None:
        self.dimension = dimension
        self.ensemble = ensemble

    def fingerprint(self):
        return ("JL", self.dimension, self.ensemble)

    def rebuild_lift(self, input_dimension: int, output_dimension: int):
        # The lift is a pure function of (d, d', shared seed, ensemble): the
        # server re-derives the identical map, so a cached application can
        # rebuild it without ever persisting the projection matrix.
        seed = self.shared_seed
        ensemble = self.ensemble

        def lift(centers):
            server_projection = JLProjection(
                input_dimension, output_dimension, seed=seed, ensemble=ensemble
            )
            return server_projection.inverse_transform(centers)

        return lift

    def resolve_dimension(self, state: SourceState, ctx: StageContext) -> int:
        d = state.dimension
        if self.dimension is not None:
            return min(check_positive_int(self.dimension, "jl_dimension"), d)
        reference_n = state.cardinality if state.is_raw else max(state.cardinality, 2)
        return default_jl_dimension(reference_n, ctx.k, d, ctx.epsilon, ctx.delta)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        d = state.dimension
        target = self.resolve_dimension(state, ctx)
        projection = JLProjection(d, target, seed=self.shared_seed, ensemble=self.ensemble)
        projected = projection.transform(state.points)
        return StageEffect(
            # The projection moves the points out of any recorded subspace.
            state=state.evolve(points=projected, subspace=None),
            lift=self.rebuild_lift(d, target),
            details={"jl_dimension": float(target)},
        )


class PCAStage(Stage):
    """Project the points in place onto their top-``rank`` principal subspace.

    The stage records the fitted basis on the state (so the engine can use
    the compact FSS wire format) and adds the discarded tail energy to the
    shift Δ, exactly as FSS does (Theorem 3.2 / Definition 3.2).  Composing
    ``PCAStage`` with ``SensitivityStage`` recreates FSS from primitive
    stages.
    """

    name = "PCA"
    cacheable = True

    def __init__(self, rank: Optional[int] = None, approximate: bool = False) -> None:
        self.rank = rank
        self.approximate = approximate

    def fingerprint(self):
        return ("PCA", self.rank, self.approximate)

    def resolve_rank(self, state: SourceState, ctx: StageContext) -> int:
        n, d = state.cardinality, state.dimension
        if self.rank is not None:
            return min(check_positive_int(self.rank, "pca_rank"), n, d)
        return default_pca_rank(n, d, ctx.k)

    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        rank = self.resolve_rank(state, ctx)
        pca = PCAProjection(rank=rank, approximate=self.approximate, seed=ctx.derive_seed())
        pca.fit(state.points)
        projected = pca.project_in_place(state.points)
        tail_energy = pca.residual_energy(state.points)
        return StageEffect(
            state=state.evolve(
                points=projected,
                shift=state.shift + tail_energy,
                subspace=pca,
            ),
            details={"pca_rank": float(pca.effective_rank)},
        )
