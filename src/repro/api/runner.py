"""Execute declarative specs through the existing experiment harness.

``run_experiment`` resolves an :class:`~repro.api.specs.ExperimentSpec`
into exactly the call the imperative API would make —
:meth:`repro.metrics.experiment.ExperimentRunner.run_registered` with the
spec's overrides — so results are bit-identical to hand-written harness
code (the golden-spec test pins this).  ``run_sweep`` expands a
:class:`~repro.api.specs.SweepSpec` into its cell grid and executes every
cell with *paired* Monte-Carlo seeds and one shared reference solution per
``(dataset, k)`` group, optionally fanning cells out over a thread pool
and appending each cell's :class:`~repro.api.store.RunRecord` to a
:class:`~repro.api.store.ResultStore`.

With ``cache=`` the sweep resolves single-source stage executions through
a content-addressed :class:`~repro.core.cache.StageCache`: cells sharing a
stage-chain prefix (paired seeds make them common — every quantization
level reuses one compression, every network condition reuses everything)
cost their distinct work, not their cell count.  Cells are *executed* in
prefix-grouped order to maximize sharing but always *returned* in grid
order; outputs are bit-identical with the cache on or off, warm or cold.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.specs import ExperimentSpec, SweepCell, SweepSpec
from repro.api.store import ResultStore, RunRecord, provenance
from repro.core.cache import (
    StageCache,
    StageCacheView,
    pack_reference,
    unpack_reference,
)
from repro.metrics.evaluation import EvaluationContext, PipelineEvaluation
from repro.metrics.experiment import (
    AlgorithmSummary,
    ExperimentResult,
    ExperimentRunner,
)
from repro.utils.parallel import parallel_map, resolve_jobs
from repro.utils.random import as_generator, derive_seed


@dataclass
class ExperimentOutcome:
    """Everything one executed cell produced."""

    spec: ExperimentSpec
    label: str
    result: ExperimentResult
    summary: AlgorithmSummary
    run_seeds: Tuple[int, ...]
    dataset: Any = None  # the DatasetSpec describing the generated matrix
    cell_id: Optional[str] = None
    #: Stage-cache accounting for this cell (hits/misses/stored/corrupt);
    #: empty when the cell ran uncached.
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def evaluations(self) -> List[PipelineEvaluation]:
        return list(self.result.evaluations[self.label])

    def to_record(self, stamp: Optional[Dict[str, Any]] = None) -> RunRecord:
        """Convert to a persistable :class:`RunRecord` (``stamp`` lets a
        sweep share one provenance dict across cells)."""
        return RunRecord(
            algorithm=self.label,
            spec=self.spec.to_dict(),
            summary=self.summary.__dict__.copy(),
            evaluations=tuple(e.to_dict() for e in self.evaluations),
            run_seeds=self.run_seeds,
            cell_id=self.cell_id,
            provenance=provenance() if stamp is None else stamp,
            cache=dict(self.cache_stats),
        )


def _reference_seed(master_seed: int) -> int:
    """The reference-solver seed an ExperimentRunner would derive first
    from this master seed (kept in lockstep with its constructor)."""
    return derive_seed(as_generator(master_seed))


def run_experiment(
    spec: ExperimentSpec,
    *,
    points: Optional[np.ndarray] = None,
    dataset: Any = None,
    context: Optional[EvaluationContext] = None,
    reference_n_init: int = 10,
    cell_id: Optional[str] = None,
    stage_cache: Optional[Union[StageCache, StageCacheView]] = None,
) -> ExperimentOutcome:
    """Run one experiment spec end-to-end.

    ``points``/``dataset``/``context`` let the sweep runner share generated
    data and reference solutions across cells; results are identical with
    or without them because the runner's seed stream is independent of
    whether the reference solve is cached.  ``stage_cache`` memoizes stage
    outputs for single-source pipelines (the only kind that accepts it —
    other kinds simply run uncached); outcomes are bit-identical either
    way, and the outcome's ``cache_stats`` records this call's hits/misses.
    """
    if points is None:
        points, dataset = spec.data.load(spec.seed)
    runner = ExperimentRunner(
        points,
        k=spec.pipeline.k,
        monte_carlo_runs=spec.runs,
        seed=spec.seed,
        reference_n_init=reference_n_init,
        context=context,
    )
    label = spec.pipeline.algorithm
    cache_view: Optional[StageCacheView] = None
    extra: Dict[str, Any] = {}
    if stage_cache is not None and spec.pipeline.kind == "single-source":
        cache_view = (stage_cache.view() if isinstance(stage_cache, StageCache)
                      else stage_cache)
        extra["stage_cache"] = cache_view
    result = runner.run_registered(
        [label],
        num_sources=spec.num_sources,
        strategy=spec.strategy,
        **spec.overrides(),
        **extra,
    )
    return ExperimentOutcome(
        spec=spec,
        label=label,
        result=result,
        summary=result.summary()[label],
        run_seeds=tuple(runner.run_seeds),
        dataset=dataset,
        cell_id=cell_id,
        cache_stats={} if cache_view is None else cache_view.counters.as_dict(),
    )


def _prefix_signature(cell: SweepCell) -> str:
    """Grouping key for cache-friendly execution order.

    Cells with equal signatures share their entire pre-wire stage chain:
    everything except the network section (network randomness never touches
    the pipeline's master generator) and ``quantize_bits`` (quantization is
    applied on send, after the cached stages).  Executing a group
    adjacently keeps its entries warm in the cache's memory layer, and
    under ``jobs > 1`` racing group members dedupe on the per-key locks.
    """
    spec = cell.spec
    pipeline = spec.pipeline.to_dict()
    pipeline.pop("quantize_bits", None)
    return json.dumps(
        [list(spec.data.cache_key(spec.seed)), pipeline, spec.seed, spec.runs],
        sort_keys=True, default=str,
    )


def _resolve_cache(
    cache: Optional[Union[StageCache, str, Path]]
) -> Optional[StageCache]:
    if cache is None or isinstance(cache, StageCache):
        return cache
    return StageCache(cache)


def run_sweep(
    sweep: SweepSpec,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    reference_n_init: int = 10,
    cache: Optional[Union[StageCache, str, Path]] = None,
) -> List[ExperimentOutcome]:
    """Execute every cell of a sweep grid.

    Datasets and reference solutions are computed once per unique
    ``(dataset, k, seed)`` group and shared across the group's cells, so
    cells differing only in tuning knobs are judged against identical
    reference centers — the paper's paired-comparison methodology.  With
    ``jobs > 1`` cells run on one hoisted thread pool (cells are
    independent; the heavy work is GIL-releasing BLAS).  When ``store`` is
    given, every cell's record is appended in grid order after execution.

    ``cache`` — a :class:`~repro.core.cache.StageCache` or a directory path
    to build one from — memoizes stage outputs and reference solutions
    across cells *and* across sweep invocations: a warm re-run costs its
    distinct-prefix count, not its cell count, and is bit-identical to a
    cold one.  Cells are executed grouped by stage-chain prefix to maximize
    sharing, but the returned list (and the persisted records) always
    follow grid order.
    """
    cells = sweep.cells()
    stage_cache = _resolve_cache(cache)

    # Generate each unique dataset once, and solve each unique reference
    # problem once, serially — the parallel phase then only reads them.
    # With a cache, reference solutions persist across invocations too
    # (they dominate warm-sweep time otherwise).
    points_cache: Dict[Tuple, Tuple[np.ndarray, Any]] = {}
    context_cache: Dict[Tuple, EvaluationContext] = {}
    for cell in cells:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        if data_key not in points_cache:
            points_cache[data_key] = spec.data.load(spec.seed)
        context_key = data_key + (spec.pipeline.k, spec.seed, reference_n_init)
        if context_key not in context_cache:
            points, _ = points_cache[data_key]
            context_cache[context_key] = _build_reference_context(
                points,
                spec.pipeline.k,
                reference_n_init,
                _reference_seed(spec.seed),
                stage_cache,
            )

    def execute(cell: SweepCell) -> ExperimentOutcome:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        points, dataset = points_cache[data_key]
        context = context_cache[data_key + (spec.pipeline.k, spec.seed, reference_n_init)]
        return run_experiment(
            spec,
            points=points,
            dataset=dataset,
            context=context,
            reference_n_init=reference_n_init,
            cell_id=cell.cell_id,
            stage_cache=None if stage_cache is None else stage_cache.view(),
        )

    # Execute grouped by prefix signature (stable within a group), return
    # in grid order.
    ordered = sorted(cells, key=lambda cell: (_prefix_signature(cell), cell.index))
    workers = resolve_jobs(jobs)
    if workers > 1 and len(ordered) > 1:
        # Satellite of the caching work: one pool hoisted across the whole
        # sweep instead of a fresh pool inside every parallel_map call.
        with ThreadPoolExecutor(max_workers=min(workers, len(ordered))) as pool:
            executed = parallel_map(execute, ordered, executor=pool)
    else:
        executed = parallel_map(execute, ordered, jobs=1)
    outcomes = [outcome for _, outcome in
                sorted(zip(ordered, executed), key=lambda pair: pair[0].index)]

    if store is not None:
        stamp = provenance()
        for outcome in outcomes:
            store.append(outcome.to_record(stamp))
    return outcomes


def _build_reference_context(
    points: np.ndarray,
    k: int,
    n_init: int,
    seed: int,
    stage_cache: Optional[StageCache],
) -> EvaluationContext:
    """Build (or load) the shared reference solution for a cell group."""
    if stage_cache is None:
        return EvaluationContext.build(points, k, n_init=n_init, seed=seed)
    key = stage_cache.reference_key(points, k, n_init, seed)
    payload = stage_cache.lookup(key)
    if payload is not None:
        stage_cache.count_hit()
        centers, cost = unpack_reference(payload)
        return EvaluationContext(
            points=points, reference_centers=centers, reference_cost=cost
        )
    context = EvaluationContext.build(points, k, n_init=n_init, seed=seed)
    stored = False
    try:
        stage_cache.store(
            key, pack_reference(context.reference_centers, context.reference_cost)
        )
        stored = True
    except OSError:
        pass
    stage_cache.count_miss(stored=stored)
    return context


__all__ = ["ExperimentOutcome", "run_experiment", "run_sweep"]
