"""Tests for content-addressed stage caching (core/cache.py + the sweep
runner's cache integration).

The contract under test is the tentpole's correctness bar: a cache-warm
sweep is *byte-identical* to a cold one — summaries, evaluations, seeds —
with only wall-clock fields free to differ, under any jobs fan-out, and
even after cache entries are corrupted on disk.
"""

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.core.cache import (
    CacheCounters,
    StageCache,
    content_digest,
    pack_reference,
    unpack_reference,
)

GOLDEN_SPEC = Path(__file__).parent / "goldens" / "experiment_spec.toml"


def _deterministic(evaluations):
    return [
        dataclasses.replace(e, source_seconds=0.0, server_seconds=0.0)
        for e in evaluations
    ]


def _deterministic_summary(summary):
    return dataclasses.replace(summary, mean_source_seconds=0.0)


def _sweep_fingerprint(outcomes):
    """Everything that must be bit-identical across cold/warm/uncached."""
    return [
        (
            o.cell_id,
            o.run_seeds,
            _deterministic_summary(o.summary),
            _deterministic(o.evaluations),
        )
        for o in outcomes
    ]


@pytest.fixture(scope="module")
def golden_sweep():
    """The golden experiment spec expanded into a 2×2×2 sweep grid."""
    base = api.load_spec(GOLDEN_SPEC)
    return api.SweepSpec(base=base, axes={
        "k": [2, 3],
        "quantize_bits": [8, 12],
        "net": ["ideal", "lossy"],
    })


@pytest.fixture(scope="module")
def uncached(golden_sweep):
    return api.run_sweep(golden_sweep)


class TestColdWarmParity:
    def test_cold_and_warm_bit_identical_to_uncached(
        self, golden_sweep, uncached, tmp_path_factory
    ):
        cache = StageCache(tmp_path_factory.mktemp("cache") / "stage_cache")
        cold = api.run_sweep(golden_sweep, cache=cache)
        cold_counters = cache.counters.as_dict()
        warm = api.run_sweep(golden_sweep, cache=cache)

        reference = _sweep_fingerprint(uncached)
        assert _sweep_fingerprint(cold) == reference
        assert _sweep_fingerprint(warm) == reference

        # Cold already dedupes: the quantize_bits and net axes share their
        # whole stage chain, so distinct work < cell executions.
        assert cold_counters["misses"] < 8 * 2  # 8 cells x 2 MC runs
        assert cold_counters["hits"] > 0
        # Warm recomputes nothing.
        warm_counters = cache.counters.as_dict()
        assert warm_counters["misses"] == cold_counters["misses"]
        assert warm_counters["hits"] > cold_counters["hits"]

    def test_jobs_fanout_with_shared_cache_bit_identical(
        self, golden_sweep, uncached, tmp_path_factory
    ):
        # Concurrent cells racing on the same prefix must dedupe through
        # the per-key locks, never corrupt or double-compute silently.
        cache = StageCache(tmp_path_factory.mktemp("cache") / "stage_cache")
        sequential = api.run_sweep(golden_sweep, cache=cache, jobs=1)
        threaded = api.run_sweep(golden_sweep, cache=cache, jobs=4)
        reference = _sweep_fingerprint(uncached)
        assert _sweep_fingerprint(sequential) == reference
        assert _sweep_fingerprint(threaded) == reference

    def test_cache_accepts_plain_directory_path(
        self, golden_sweep, uncached, tmp_path
    ):
        outcomes = api.run_sweep(golden_sweep, cache=tmp_path / "stage_cache")
        assert _sweep_fingerprint(outcomes) == _sweep_fingerprint(uncached)
        assert any((tmp_path / "stage_cache").glob("*.npz"))


class TestAccounting:
    def test_per_cell_stats_recorded_on_outcomes_and_journal(
        self, golden_sweep, tmp_path
    ):
        cache = StageCache(tmp_path / "stage_cache")
        store = api.ResultStore(tmp_path / "sweep.jsonl")
        api.run_sweep(golden_sweep, cache=cache)  # prime
        warm = api.run_sweep(golden_sweep, cache=cache, store=store)
        assert all(o.cache_stats["hits"] > 0 for o in warm)
        assert all(o.cache_stats["misses"] == 0 for o in warm)
        # Cache accounting lives in the sweep journal, NOT the records:
        # persisted records must not depend on cache warmth, or a resumed
        # store could never be byte-identical to an uncrashed one.
        records = store.load()
        assert all(r.cache == {} for r in records)
        journal = api.SweepJournal.for_store(store.path)
        done = [e for e in journal.entries() if e["event"] == "done"]
        assert {(e["spec_hash"], e["cell_id"]) for e in done} == {
            (r.spec_hash, r.cell_id) for r in records
        }
        by_cell = {e["cell_id"]: e["cache"] for e in done}
        assert [by_cell[o.cell_id] for o in warm] == [o.cache_stats for o in warm]

    def test_uncached_runs_report_empty_stats(self, uncached):
        assert all(o.cache_stats == {} for o in uncached)

    def test_counters_arithmetic(self):
        counters = CacheCounters(hits=3, misses=1)
        assert counters.lookups == 4
        assert counters.hit_rate == pytest.approx(0.75)
        assert CacheCounters().hit_rate == 0.0


class TestCorruptionRecovery:
    def test_corrupted_entries_recomputed_not_crashed(
        self, golden_sweep, uncached, tmp_path
    ):
        cache_dir = tmp_path / "stage_cache"
        cache = StageCache(cache_dir)
        api.run_sweep(golden_sweep, cache=cache)
        entries = sorted(cache_dir.glob("*.npz"))
        assert entries
        for entry in entries[: max(1, len(entries) // 2)]:
            entry.write_bytes(b"this is not an npz archive")

        # A fresh cache object (no memory layer hiding the damage).
        recovering = StageCache(cache_dir)
        outcomes = api.run_sweep(golden_sweep, cache=recovering)
        assert _sweep_fingerprint(outcomes) == _sweep_fingerprint(uncached)
        counters = recovering.counters.as_dict()
        assert counters["corrupt"] >= 1      # damage was detected...
        assert counters["misses"] >= 1       # ...and recomputed...
        assert counters["stored"] >= 1       # ...and re-persisted.

    def test_truncated_entry_discarded_on_lookup(self, tmp_path):
        cache = StageCache(tmp_path)
        key = cache.reference_key(np.eye(3), 2, 10, 0)
        cache.store(key, pack_reference(np.eye(2), 1.5))
        path = next(tmp_path.glob("*.npz"))
        path.write_bytes(path.read_bytes()[:10])
        fresh = StageCache(tmp_path)
        assert fresh.lookup(key) is None
        assert fresh.counters.corrupt == 1
        assert not path.exists()  # the bad entry was unlinked


class TestStageCacheUnit:
    def test_reference_payload_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        centers = np.arange(6, dtype=float).reshape(2, 3) / 7.0
        key = cache.reference_key(centers, 2, 10, 123)
        cache.store(key, pack_reference(centers, 0.25))
        loaded_centers, loaded_cost = unpack_reference(cache.lookup(key))
        np.testing.assert_array_equal(loaded_centers, centers)
        assert loaded_cost == 0.25

    def test_content_digest_distinguishes_values_not_identity(self):
        a = np.arange(12, dtype=float).reshape(3, 4)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a + 1e-12)

    def test_gc_evicts_down_to_budget_and_clear_empties(self, tmp_path):
        cache = StageCache(tmp_path)
        for i in range(4):
            key = cache.reference_key(np.full((2, 2), float(i)), 2, 10, i)
            cache.store(key, pack_reference(np.full((2, 2), float(i)), 1.0))
        stats = cache.stats()
        assert stats.entries == 4
        removed, freed = cache.gc(stats.total_bytes // 2)
        assert removed >= 1 and freed > 0
        assert cache.stats().total_bytes <= stats.total_bytes // 2
        cache.gc(0)
        assert cache.stats().entries == 0

    def test_views_split_counters_but_share_storage(self, tmp_path):
        cache = StageCache(tmp_path)
        view_a, view_b = cache.view(), cache.view()
        key = cache.reference_key(np.eye(2), 2, 10, 0)
        view_a.store(key, pack_reference(np.eye(2), 1.0))
        assert view_b.lookup(key) is not None
        view_a.count_hit()
        view_b.count_miss(stored=False)
        assert (view_a.counters.hits, view_a.counters.misses) == (1, 0)
        assert (view_b.counters.hits, view_b.counters.misses) == (0, 1)
        assert (cache.counters.hits, cache.counters.misses) == (1, 1)

    def test_unwritable_directory_degrades_to_uncached(
        self, golden_sweep, uncached, tmp_path
    ):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache directory should go")
        cache = StageCache(blocker / "stage_cache")  # mkdir will fail
        outcomes = api.run_sweep(golden_sweep, cache=cache)
        assert _sweep_fingerprint(outcomes) == _sweep_fingerprint(uncached)
        assert cache.counters.stored == 0
        assert cache.counters.misses > 0


class TestCrashRobustness:
    """Crashed cache writers and wedged lock holders must cost at worst
    duplicated work — never a deadlock, never a torn entry."""

    @staticmethod
    def _entry(cache, i=0):
        centers = np.full((2, 2), float(i))
        return cache.reference_key(centers, 2, 10, i), pack_reference(centers, 1.0)

    def test_crash_before_rename_leaves_orphan_tmp_not_torn_entry(self, tmp_path):
        from repro.utils import faultpoints

        cache = StageCache(tmp_path)
        key, payload = self._entry(cache)
        with faultpoints.armed("cache.store.tmp"):
            with pytest.raises(faultpoints.FaultInjected):
                cache.store(key, payload)
        # The kill left an orphaned temp file and no (possibly torn) entry.
        assert list(tmp_path.glob(".tmp-*.npz"))
        assert cache.lookup(key) is None
        # Recovery is just storing again; the orphan does not get in the way.
        cache.store(key, payload)
        assert cache.lookup(key) is not None

    def test_stale_tmp_orphans_are_swept(self, tmp_path):
        import os as _os
        import time as _time

        cache = StageCache(tmp_path)
        fresh = tmp_path / ".tmp-fresh.npz"
        stale = tmp_path / ".tmp-stale.npz"
        for path in (fresh, stale):
            path.write_bytes(b"half-written")
        old = _time.time() - 2 * 3600.0
        _os.utime(stale, (old, old))
        assert cache.sweep_stale_tmp() == 1
        assert fresh.exists() and not stale.exists()
        # gc() folds the sweep in, so `repro cache gc` reclaims orphans too.
        _os.utime(fresh, (old, old))
        cache.gc(max_bytes=10**9)
        assert not fresh.exists()

    def test_first_store_sweeps_stale_orphans_once(self, tmp_path):
        import os as _os
        import time as _time

        stale = tmp_path / ".tmp-stale.npz"
        tmp_path.mkdir(exist_ok=True)
        stale.write_bytes(b"left by a killed process")
        old = _time.time() - 2 * 3600.0
        _os.utime(stale, (old, old))
        cache = StageCache(tmp_path)
        key, payload = self._entry(cache)
        cache.store(key, payload)
        assert not stale.exists()

    def test_locked_times_out_on_wedged_holder_instead_of_deadlocking(
        self, tmp_path
    ):
        import threading

        cache = StageCache(tmp_path, lock_timeout=0.05)
        key, payload = self._entry(cache)
        wedged = threading.Event()
        release = threading.Event()

        def holder():
            with cache.locked(key) as held:
                assert held
                wedged.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert wedged.wait(timeout=5)
        # A holder crashed/wedged mid-compute: the waiter gives up after
        # the bounded timeout and computes without the lock.
        with cache.locked(key) as held:
            assert held is False
            cache.store(key, payload)
        assert cache.lock_timeouts == 1
        assert cache.lookup(key) is not None
        release.set()
        thread.join(timeout=5)
        # With the holder gone the lock is usable again.
        with cache.locked(key) as held:
            assert held is True

    def test_view_delegates_locked(self, tmp_path):
        cache = StageCache(tmp_path, lock_timeout=0.05)
        key, _ = self._entry(cache)
        with cache.view().locked(key) as held:
            assert held is True
            with cache.view().locked(key) as nested:
                assert nested is False
        assert cache.lock_timeouts == 1

    def test_sweep_survives_cache_crash_then_resumes(self, tmp_path):
        """End to end: a FaultInjected crash inside the cache layer during
        a real sweep, then a resume that completes against the same cache
        directory (satellite b's proof via faultpoints)."""
        from repro.utils import faultpoints

        base = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="jl-fss", k=2,
                                        coreset_size=30, jl_dimension=6),
            data=api.DataSpec(name="mnist", n=120, d=36),
            runs=2,
            seed=7,
        )
        sweep = api.SweepSpec(base=base, axes={"quantize_bits": [6, 10]})
        store = api.ResultStore(tmp_path / "s.jsonl")
        cache = StageCache(tmp_path / "cache")
        faultpoints.disarm()
        try:
            with faultpoints.armed("cache.store.tmp", at=2):
                with pytest.raises(faultpoints.FaultInjected):
                    api.run_sweep(sweep, store=store, cache=cache)
            outcomes = api.run_sweep(sweep, store=store,
                                     cache=StageCache(tmp_path / "cache"),
                                     resume=True)
        finally:
            faultpoints.disarm()
        assert len(outcomes) == 2
        assert len(store.load()) == 2
