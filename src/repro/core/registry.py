"""The pipeline registry: named compositions → pipeline factories.

Every algorithm the package can run is registered here under a CLI-friendly
name, together with a factory that builds a fresh pipeline from the standard
keyword arguments (one set for single-source, one for multi-source — see
:data:`SINGLE_SOURCE_KWARGS` / :data:`MULTI_SOURCE_KWARGS`).  The CLI
(:mod:`repro.cli`) and the experiment harness
(:meth:`repro.metrics.experiment.ExperimentRunner.run_registered`) both
resolve algorithms through this registry, so registering a composition is all
it takes to make it runnable everywhere.

Beyond the paper's eight algorithms, the registry holds compositions the
monolithic seed implementations could not express — uniform-sampling
baselines, FSS recomposed from primitive ``PCA + SS`` stages, and explicit
quantization stages — demonstrating that the stage engine is a strict
generalization.  The ``stream-*`` entries run the same stage chains *online*
via the :class:`~repro.core.streaming.StreamingEngine`: batched arrivals,
merge-and-reduce coreset trees, incremental uplink, and continuous queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.distributed_pipelines import (
    BKLWPipeline,
    DistributedNoReductionPipeline,
    JLBKLWPipeline,
)
from repro.core.engine import DistributedStagePipeline, StagePipeline
from repro.core.streaming import StreamingEngine
from repro.core.pipelines import (
    FSSJLPipeline,
    FSSPipeline,
    JLFSSJLPipeline,
    JLFSSPipeline,
    NoReductionPipeline,
)
from repro.distributed.conditions import (
    NETWORK_PRESETS,
    FaultPlan,
    NetworkCondition,
    resolve_condition,
)
from repro.stages.cr import FSSStage, SensitivityStage, UniformStage
from repro.stages.dr import JLStage, PCAStage
from repro.stages.qt import QuantizeStage

#: Network-simulation keyword arguments accepted by every factory kind
#: (condition preset / NetworkCondition, scripted faults, retry budget,
#: loss-seed override — see :mod:`repro.distributed.conditions`).
NETWORK_KWARGS = ("network", "fault_plan", "retries", "network_seed")

#: Keyword arguments every single-source factory accepts.  ``stage_cache``
#: (a :class:`~repro.core.cache.StageCache` or per-cell view) opts the
#: engine into content-addressed memoization of stage outputs; the
#: multi-source and streaming kinds execute uncached (their per-shard
#: network metering interleaves with stage execution).
SINGLE_SOURCE_KWARGS = (
    "k", "epsilon", "delta", "coreset_size", "pca_rank", "jl_dimension",
    "second_jl_dimension", "quantizer", "server_n_init",
    "server_max_iterations", "seed", "stage_cache",
) + NETWORK_KWARGS
#: Keyword arguments every multi-source factory accepts.
MULTI_SOURCE_KWARGS = (
    "k", "epsilon", "delta", "pca_rank", "total_samples", "jl_dimension",
    "quantizer", "server_n_init", "seed", "jobs",
) + NETWORK_KWARGS
#: Keyword arguments every streaming factory accepts (streaming compositions
#: consume per-source shards like multi-source ones, plus the stream shape).
STREAMING_KWARGS = (
    "k", "epsilon", "delta", "coreset_size", "pca_rank", "jl_dimension",
    "quantizer", "batch_size", "window", "query_every", "server_n_init",
    "server_max_iterations", "seed", "jobs", "topology", "fan_in",
) + NETWORK_KWARGS

#: Significant bits used by the registered +QT compositions when no explicit
#: quantizer is passed (a mid-sweep value from the paper's Figures 3–6).
DEFAULT_QT_BITS = 10


@dataclass(frozen=True)
class PipelineSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Registry / CLI name (e.g. ``"jl-fss-jl"``).
    factory:
        Callable building a fresh pipeline from the standard keyword
        arguments of its kind.
    multi_source:
        True when the pipeline consumes per-source shards.
    description:
        One-line description shown by ``repro --list-algorithms``.
    novel:
        True for compositions beyond the paper's eight algorithms.
    streaming:
        True for online compositions executed by the
        :class:`~repro.core.streaming.StreamingEngine` (these also consume
        per-source shards, so ``multi_source`` is True for them).
    """

    name: str
    factory: Callable[..., object]
    multi_source: bool
    description: str
    novel: bool = False
    streaming: bool = False


_REGISTRY: Dict[str, PipelineSpec] = {}


def register_pipeline(
    name: str,
    factory: Callable[..., object],
    *,
    multi_source: bool = False,
    description: str = "",
    novel: bool = False,
    streaming: bool = False,
    overwrite: bool = False,
) -> PipelineSpec:
    """Register a composition under ``name`` and return its spec."""
    key = str(name).lower()
    if not overwrite and key in _REGISTRY:
        raise ValueError(f"pipeline {key!r} is already registered")
    spec = PipelineSpec(
        name=key,
        factory=factory,
        multi_source=bool(multi_source) or bool(streaming),
        description=description,
        novel=bool(novel),
        streaming=bool(streaming),
    )
    _REGISTRY[key] = spec
    return spec


def get_spec(name: str) -> PipelineSpec:
    """Look up a registered composition (raises ``KeyError`` with the list of
    known names on a miss)."""
    key = str(name).lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown pipeline {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def factory_kind(name: str) -> str:
    """The keyword-argument kind of a registered composition:
    ``"streaming"``, ``"multi-source"``, or ``"single-source"``."""
    spec = get_spec(name)
    if spec.streaming:
        return "streaming"
    if spec.multi_source:
        return "multi-source"
    return "single-source"


def accepted_kwargs(name: str) -> Tuple[str, ...]:
    """The standard keyword-argument tuple of a composition's kind."""
    kind = factory_kind(name)
    if kind == "streaming":
        return STREAMING_KWARGS
    if kind == "multi-source":
        return MULTI_SOURCE_KWARGS
    return SINGLE_SOURCE_KWARGS


def create_pipeline(name: str, *, strict: Optional[bool] = True, **kwargs):
    """Build a fresh pipeline instance for a registered composition.

    ``kwargs`` outside the standard set for the composition's kind (see
    :func:`accepted_kwargs`) are rejected with a ``TypeError`` — typos like
    ``jl_dim=20`` used to silently run the wrong experiment.  Pass
    ``strict=False`` to deliberately opt into the historical lenient
    filtering (callers that pass one merged configuration for mixed
    experiments); the previous ``strict=None`` deprecation default now
    means strict.
    """
    spec = get_spec(name)
    accepted = accepted_kwargs(name)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown and (strict or strict is None):
        raise TypeError(
            f"create_pipeline({name!r}) got unknown keyword arguments "
            f"{unknown}; {factory_kind(name)} pipelines accept "
            f"{sorted(accepted)} (pass strict=False to filter them "
            f"deliberately)"
        )
    filtered = {k: v for k, v in kwargs.items() if k in accepted and v is not None}
    return spec.factory(**filtered)


def registered_names(
    multi_source: Optional[bool] = None, streaming: Optional[bool] = None
) -> List[str]:
    """Sorted names, optionally filtered by kind."""
    return sorted(
        spec.name
        for spec in _REGISTRY.values()
        if (multi_source is None or spec.multi_source == multi_source)
        and (streaming is None or spec.streaming == streaming)
    )


def registered_specs() -> List[PipelineSpec]:
    """All specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def is_multi_source(name: str) -> bool:
    """True when the named composition consumes per-source shards."""
    return get_spec(name).multi_source


def is_streaming(name: str) -> bool:
    """True when the named composition runs on the streaming engine."""
    return get_spec(name).streaming


# --------------------------------------------------------------------------
# The paper's eight algorithms.
# --------------------------------------------------------------------------
register_pipeline(
    "nr", NoReductionPipeline,
    description="no reduction: transmit the raw dataset (Section 7.2 baseline)",
)
register_pipeline(
    "fss", FSSPipeline,
    description="FSS coreset: PCA + sensitivity sampling (Theorem 4.1)",
)
register_pipeline(
    "jl-fss", JLFSSPipeline,
    description="Algorithm 1: JL projection, then FSS (Theorem 4.2)",
)
register_pipeline(
    "fss-jl", FSSJLPipeline,
    description="Algorithm 2: FSS, then JL projection of the coreset (Theorem 4.3)",
)
register_pipeline(
    "jl-fss-jl", JLFSSJLPipeline,
    description="Algorithm 3: JL, then FSS, then JL again (Theorem 4.4)",
)
register_pipeline(
    "nr-distributed", DistributedNoReductionPipeline, multi_source=True,
    description="distributed no-reduction baseline: every source ships its shard",
)
register_pipeline(
    "bklw", BKLWPipeline, multi_source=True,
    description="BKLW: disPCA + disSS (Theorem 5.3)",
)
register_pipeline(
    "jl-bklw", JLBKLWPipeline, multi_source=True,
    description="Algorithm 4: shared-seed JL, then BKLW (Theorem 5.4)",
)


# --------------------------------------------------------------------------
# Novel compositions the monolithic seed implementations could not express.
# --------------------------------------------------------------------------

#: Defaults shared by every stage-composition factory (values a caller gets
#: when it omits the argument — the engines' own documented defaults).
_FACTORY_DEFAULTS = {
    "epsilon": 0.2,
    "delta": 0.1,
    "server_n_init": 5,
    "server_max_iterations": 100,
    "batch_size": 512,
}
#: Keyword arguments consumed by the stage-list builder (summary geometry)
#: rather than by the engine constructor.
_STAGE_GEOMETRY_KWARGS = (
    "coreset_size", "pca_rank", "jl_dimension", "second_jl_dimension",
)


def _composition_factory(stages_builder, default_name, *, engine_cls, accepted,
                         defaults=None):
    """Wrap a stage-list builder into a registry factory.

    The engine keyword dict is assembled once from the ``accepted`` kwargs
    tuple of the kind — stage-geometry keys are routed to ``stages_builder``
    and everything else goes to ``engine_cls`` — instead of re-listing every
    parameter by hand in each factory kind.  ``defaults`` overlays
    per-composition defaults (e.g. the sliding-window span) on the shared
    :data:`_FACTORY_DEFAULTS`.
    """
    factory_defaults = dict(_FACTORY_DEFAULTS)
    if defaults:
        factory_defaults.update(defaults)

    def factory(k, **kwargs):
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            raise TypeError(
                f"{default_name} factory got unexpected keyword arguments "
                f"{unknown}; accepted: {sorted(accepted)}"
            )
        merged = {
            key: kwargs.get(key, factory_defaults.get(key))
            for key in accepted
            if key != "k"
        }
        stage_kwargs = {
            key: merged.pop(key)
            for key in _STAGE_GEOMETRY_KWARGS
            if key in merged
        }
        stages = stages_builder(**stage_kwargs)
        return engine_cls(stages, k=k, name=default_name, **merged)

    return factory


def _single(stages_builder, default_name):
    """Wrap a stage-list builder into a single-source pipeline factory."""
    return _composition_factory(
        stages_builder, default_name,
        engine_cls=StagePipeline, accepted=SINGLE_SOURCE_KWARGS,
    )


register_pipeline(
    "uniform",
    _single(
        lambda coreset_size, **_: [UniformStage(coreset_size)],
        "Uniform",
    ),
    description="uniform-sampling coreset baseline (the Section 7.4 ablation, "
                "promoted to a first-class pipeline)",
    novel=True,
)
register_pipeline(
    "jl-uniform",
    _single(
        lambda coreset_size, jl_dimension, **_: [
            JLStage(jl_dimension), UniformStage(coreset_size),
        ],
        "JL+Uniform",
    ),
    description="shared-seed JL projection, then uniform sampling",
    novel=True,
)
register_pipeline(
    "jl-uniform-qt",
    _single(
        lambda coreset_size, jl_dimension, **_: [
            JLStage(jl_dimension),
            UniformStage(coreset_size),
            QuantizeStage(DEFAULT_QT_BITS),
        ],
        "JL+Uniform+QT",
    ),
    description=f"JL, uniform sampling, and an explicit {DEFAULT_QT_BITS}-bit "
                "quantization stage",
    novel=True,
)
register_pipeline(
    "pca-ss",
    _single(
        lambda coreset_size, pca_rank, **_: [
            PCAStage(pca_rank), SensitivityStage(coreset_size),
        ],
        "PCA+SS",
    ),
    description="FSS recomposed from primitive stages: in-place PCA, then "
                "sensitivity sampling",
    novel=True,
)
register_pipeline(
    "jl-ss",
    _single(
        lambda coreset_size, jl_dimension, **_: [
            JLStage(jl_dimension), SensitivityStage(coreset_size),
        ],
        "JL+SS",
    ),
    description="JL projection, then plain sensitivity sampling (Algorithm 1 "
                "without the intrinsic-dimension PCA step)",
    novel=True,
)
register_pipeline(
    "jl-fss-qt",
    _single(
        lambda coreset_size, pca_rank, jl_dimension, **_: [
            JLStage(jl_dimension),
            FSSStage(size=coreset_size, pca_rank=pca_rank),
            QuantizeStage(DEFAULT_QT_BITS),
        ],
        "JL+FSS+QT",
    ),
    description=f"Algorithm 1 with an explicit {DEFAULT_QT_BITS}-bit "
                "quantization stage (Section 6.2, single source)",
    novel=True,
)


# --------------------------------------------------------------------------
# Streaming compositions: the same stage chains, executed online by the
# StreamingEngine (merge-and-reduce coreset trees over batched arrivals).
# --------------------------------------------------------------------------
def _streaming(stages_builder, default_name, default_window=None):
    """Wrap a stage-list builder into a streaming pipeline factory."""
    return _composition_factory(
        stages_builder, default_name,
        engine_cls=StreamingEngine, accepted=STREAMING_KWARGS,
        defaults={"window": default_window} if default_window is not None else None,
    )


register_pipeline(
    "stream-fss",
    _streaming(
        lambda coreset_size, pca_rank, **_: [
            FSSStage(size=coreset_size, pca_rank=pca_rank),
        ],
        "Stream FSS",
    ),
    streaming=True,
    description="streaming FSS: per-batch FSS coresets in a merge-and-reduce "
                "tree, incremental uplink, k-means queries mid-stream",
    novel=True,
)
register_pipeline(
    "stream-jl-fss",
    _streaming(
        lambda coreset_size, pca_rank, jl_dimension, **_: [
            JLStage(jl_dimension),
            FSSStage(size=coreset_size, pca_rank=pca_rank),
        ],
        "Stream JL+FSS",
    ),
    streaming=True,
    description="streaming Algorithm 1: pinned shared-seed JL projection, "
                "then per-batch FSS coresets",
    novel=True,
)
register_pipeline(
    "stream-jl-ss",
    _streaming(
        lambda coreset_size, jl_dimension, **_: [
            JLStage(jl_dimension),
            SensitivityStage(coreset_size),
        ],
        "Stream JL+SS",
    ),
    streaming=True,
    description="streaming JL projection + sensitivity sampling",
    novel=True,
)
register_pipeline(
    "stream-uniform-qt",
    _streaming(
        lambda coreset_size, **_: [
            UniformStage(coreset_size),
            QuantizeStage(DEFAULT_QT_BITS),
        ],
        "Stream Uniform+QT",
    ),
    streaming=True,
    description=f"streaming uniform-sampling baseline with {DEFAULT_QT_BITS}-bit "
                "quantize-on-send",
    novel=True,
)
register_pipeline(
    "stream-fss-window",
    _streaming(
        lambda coreset_size, pca_rank, **_: [
            FSSStage(size=coreset_size, pca_rank=pca_rank),
        ],
        "Stream FSS (window)",
        default_window=8,
    ),
    streaming=True,
    description="sliding-window streaming FSS: expired batches leave the "
                "trees, the query cost, and the communication totals "
                "(default window: 8 batches)",
    novel=True,
)


def make_stage_pipeline(stages, *, multi_source: bool = False, **kwargs):
    """Build an unregistered ad-hoc composition (convenience for notebooks
    and tests): dispatches to the right engine class."""
    engine_cls = DistributedStagePipeline if multi_source else StagePipeline
    return engine_cls(stages, **kwargs)


def network_preset_names() -> List[str]:
    """Sorted names of the registered network-condition presets."""
    return sorted(NETWORK_PRESETS)


def network_preset(name: str) -> NetworkCondition:
    """Build a fresh :class:`NetworkCondition` from a registered preset."""
    return resolve_condition(name)


__all__ = [
    "PipelineSpec",
    "register_pipeline",
    "get_spec",
    "create_pipeline",
    "accepted_kwargs",
    "factory_kind",
    "registered_names",
    "registered_specs",
    "is_multi_source",
    "is_streaming",
    "make_stage_pipeline",
    "network_preset_names",
    "network_preset",
    "NETWORK_PRESETS",
    "NetworkCondition",
    "FaultPlan",
    "SINGLE_SOURCE_KWARGS",
    "MULTI_SOURCE_KWARGS",
    "STREAMING_KWARGS",
    "NETWORK_KWARGS",
    "DEFAULT_QT_BITS",
]
