"""Weighted Lloyd's algorithm with k-means++ initialisation.

This is the ``kmeans(S', w, k)`` primitive invoked by the edge server in
Algorithms 1–4 of the paper, and (with multiple restarts on the full dataset)
the reference solver that produces the optimal-cost denominator
``cost(P, X*)`` used by the normalized-cost metric of Section 7.

The iteration loop runs on the fused assignment/cost kernel
(:func:`repro.kmeans.cost.assign_and_cost`): one blockwise sweep per
iteration yields the labels, the min-distances, and the cost of the current
centers together, where the naive loop paid three separate full-data passes
(assign, cost, and a post-loop re-assignment).  An opt-in Hamerly-style
accelerated mode (``accelerate="hamerly"``) additionally maintains per-point
distance bounds and skips re-assigning points whose nearest center provably
did not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kmeans.cost import (
    _nearest_center_pass,
    assign_and_cost,
    assign_to_centers,
    cluster_means,
)
from repro.kmeans.seeding import kmeans_plus_plus
from repro.utils.random import SeedLike, as_generator, spawn_generators
from repro.utils.validation import (
    check_matrix,
    check_positive_int,
    check_weights,
)

_ACCELERATE_MODES = ("none", "hamerly")


@dataclass
class KMeansResult:
    """Outcome of a (weighted) k-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of cluster centers.
    labels:
        Assignment of each input point to a center.
    cost:
        Weighted k-means cost of ``centers`` on the input (without any
        coreset Δ shift).
    iterations:
        Number of Lloyd iterations executed by the best restart.
    converged:
        Whether the best restart reached the convergence tolerance before
        hitting ``max_iterations``.
    restarts:
        Number of independent initialisations tried.
    """

    centers: np.ndarray
    labels: np.ndarray
    cost: float
    iterations: int
    converged: bool
    restarts: int = 1

    @property
    def k(self) -> int:
        return int(self.centers.shape[0])


def _farthest_indices(d2: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` largest entries of ``d2``, descending.

    ``argpartition`` + a sort of the selected slice: ``O(n + count log
    count)`` instead of the full ``O(n log n)`` sort the naive
    ``argsort(...)[::-1]`` pays for a handful of reseeded clusters.
    """
    n = d2.shape[0]
    count = min(count, n)
    if count >= n:
        return np.argsort(d2)[::-1]
    cut = n - count
    top = np.argpartition(d2, cut)[cut:]
    return top[np.argsort(d2[top])[::-1]]


@dataclass
class WeightedKMeans:
    """Weighted Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    k:
        Number of clusters.
    n_init:
        Number of independent k-means++ initialisations; the best (lowest
        cost) run is returned.
    max_iterations:
        Maximum Lloyd iterations per restart.
    tolerance:
        Relative decrease in cost below which a restart is declared
        converged.
    seed:
        RNG seed or generator shared across restarts.
    accelerate:
        ``"none"`` (default) runs the exact fused Lloyd loop; ``"hamerly"``
        opts into the bounded variant that skips re-assignment of provably
        stable points.  Assignments are always exact, but the stopping rule
        differs: the bounded variant ignores ``tolerance`` (exact costs are
        what the bounds avoid computing) and iterates until no center moves.
        It therefore matches the plain loop's labels/cost only when the
        plain loop also runs to its fixed point (``tolerance=0``); at a
        nonzero tolerance the plain loop stops earlier and the accelerated
        result is at least as good.
    compute_dtype:
        Optional dtype (e.g. ``np.float32``) the iteration runs in.  ``None``
        preserves the input dtype (``float64`` for standard inputs).  The
        returned centers and cost are always reported in ``float64``.
    local_trials:
        Optional greedy k-means++ candidate count forwarded to the seeding
        (``None`` keeps the classic single-candidate draws).
    """

    k: int
    n_init: int = 5
    max_iterations: int = 100
    tolerance: float = 1e-6
    seed: SeedLike = None
    accelerate: str = "none"
    compute_dtype: Optional[np.dtype] = None
    local_trials: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.k = check_positive_int(self.k, "k")
        self.n_init = check_positive_int(self.n_init, "n_init")
        self.max_iterations = check_positive_int(self.max_iterations, "max_iterations")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        if self.accelerate not in _ACCELERATE_MODES:
            raise ValueError(
                f"accelerate must be one of {_ACCELERATE_MODES}, got {self.accelerate!r}"
            )
        if self.local_trials is not None:
            self.local_trials = check_positive_int(self.local_trials, "local_trials")
        self._rng = as_generator(self.seed)

    # ------------------------------------------------------------------ API
    def fit(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> KMeansResult:
        """Run weighted k-means and return the best result over restarts."""
        points = check_matrix(points, "points")
        weights = check_weights(weights, points.shape[0])
        if np.all(weights == 0):
            raise ValueError("all weights are zero; cannot cluster")
        if self.compute_dtype is not None:
            points = np.ascontiguousarray(points, dtype=self.compute_dtype)

        best: Optional[KMeansResult] = None
        for rng in spawn_generators(self._rng, self.n_init):
            result = self._single_run(points, weights, rng)
            if best is None or result.cost < best.cost:
                best = result
        best.restarts = self.n_init
        return best

    def fit_predict(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Convenience wrapper returning only the labels."""
        return self.fit(points, weights).labels

    # ------------------------------------------------------------ internals
    def _seed_centers(
        self, points: np.ndarray, k: int, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        centers = kmeans_plus_plus(
            points, k, weights=weights, seed=rng, local_trials=self.local_trials
        )
        if self.compute_dtype is not None:
            centers = np.ascontiguousarray(centers, dtype=self.compute_dtype)
        return centers

    def _cluster_means(
        self, points: np.ndarray, labels: np.ndarray, k: int, weights: np.ndarray
    ):
        means, totals = cluster_means(
            points, labels, k, weights, return_totals=True,
            preserve_dtype=self.compute_dtype is not None,
        )
        if self.compute_dtype is not None:
            means = means.astype(self.compute_dtype)
        return means, totals

    def _refill_empty(
        self, points: np.ndarray, new_centers: np.ndarray, occupied: np.ndarray
    ) -> None:
        """Re-seed empty clusters at the points farthest from their centers,
        keeping exactly k distinct centers whenever possible (in place)."""
        _, d2 = assign_to_centers(
            points, new_centers[occupied],
            preserve_dtype=self.compute_dtype is not None,
        )
        refill = np.flatnonzero(~occupied)
        farthest = _farthest_indices(d2, refill.size)
        for slot, idx in zip(refill, farthest):
            new_centers[slot] = points[idx]

    def _single_run(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
    ) -> KMeansResult:
        if self.accelerate == "hamerly":
            return self._single_run_hamerly(points, weights, rng)
        k = min(self.k, points.shape[0])
        centers = self._seed_centers(points, k, weights, rng)
        previous_cost = np.inf
        converged = False
        iteration = 0

        # One fused pass per iteration: the labels produced against the
        # *previous* centers drive this iteration's mean update, and the cost
        # produced against the *updated* centers drives the convergence test
        # — exactly the quantities the naive loop recomputed in separate
        # sweeps.  The final iteration's labels/cost are returned directly
        # (the old post-loop re-assignment recomputed both redundantly).
        preserve = self.compute_dtype is not None
        labels, _, _ = assign_and_cost(points, centers, weights, preserve_dtype=preserve)
        cost = np.inf
        for iteration in range(1, self.max_iterations + 1):
            new_centers, totals = self._cluster_means(points, labels, k, weights)
            occupied = totals > 0
            if not occupied.all():
                self._refill_empty(points, new_centers, occupied)
            centers = new_centers
            labels, _, cost = assign_and_cost(
                points, centers, weights, preserve_dtype=preserve
            )
            # NOTE: with previous_cost = inf, any tolerance > 0 makes this
            # comparison inf <= inf on the first iteration, i.e. the
            # default-tolerance solver performs exactly one mean update per
            # restart (quality comes from the k-means++ seeding and the
            # restarts).  This is the seed implementation's behaviour,
            # preserved bit for bit because every seeded golden value in the
            # repo pins it; run with tolerance=0 (or accelerate="hamerly")
            # to iterate to the fixed point.
            if previous_cost - cost <= self.tolerance * max(previous_cost, 1e-300):
                converged = True
                previous_cost = cost
                break
            previous_cost = cost

        return self._finalize(centers, labels, float(cost), iteration, converged, k)

    def _single_run_hamerly(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
    ) -> KMeansResult:
        """Lloyd with Hamerly-style center-movement bounds (opt-in).

        Maintains, per point, an upper bound on the distance to its assigned
        center and a lower bound on the distance to every other center.
        After a mean update that moves center ``j`` by ``δ_j``, the bounds
        degrade by ``δ_{a(i)}`` / ``max_j δ_j``; points whose upper bound
        stays below their lower bound provably keep their assignment and are
        skipped.  Assignments are always exact (bounds only ever skip
        provably-stable points), so the algorithm visits the same fixed
        points as the plain loop.  ``tolerance`` is ignored — per-iteration
        exact costs are precisely what the bounds avoid computing — and the
        loop instead converges when an iteration moves no center (see the
        ``accelerate`` parameter docs for how that relates to plain mode).
        """
        n = points.shape[0]
        k = min(self.k, n)
        preserve = self.compute_dtype is not None
        centers = self._seed_centers(points, k, weights, rng)

        labels = np.empty(n, dtype=np.int64)
        upper_sq = np.empty(n, dtype=np.result_type(points, centers))
        lower_sq = np.empty(n, dtype=np.result_type(points, centers))
        _nearest_center_pass(points, centers, labels=labels, dists=upper_sq,
                             second_dists=lower_sq)
        # Hamerly bounds live in Euclidean (not squared) distance space,
        # where the triangle inequality holds.
        upper = np.sqrt(upper_sq)
        lower = np.sqrt(lower_sq)

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            new_centers, totals = self._cluster_means(points, labels, k, weights)
            occupied = totals > 0
            refilled = False
            if not occupied.all():
                self._refill_empty(points, new_centers, occupied)
                refilled = True

            shifts = np.sqrt(
                np.einsum("ij,ij->i", new_centers - centers, new_centers - centers)
            )
            centers = new_centers
            if not refilled and float(shifts.max(initial=0.0)) == 0.0:
                converged = True
                break

            if refilled:
                # Reseeding invalidates the bounds wholesale; rebuild.
                _nearest_center_pass(points, centers, labels=labels,
                                     dists=upper_sq, second_dists=lower_sq)
                np.sqrt(upper_sq, out=upper)
                np.sqrt(lower_sq, out=lower)
                continue

            upper += shifts[labels]
            lower -= shifts.max()

            candidates = np.flatnonzero(upper > lower)
            if candidates.size:
                # Tighten: the exact distance to the currently-assigned
                # center often re-establishes the bound without a full pass.
                diff = points[candidates] - centers[labels[candidates]]
                exact = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                upper[candidates] = exact
                stale = candidates[exact > lower[candidates]]
                if stale.size:
                    new_labels = np.empty(stale.size, dtype=np.int64)
                    best = np.empty(stale.size, dtype=upper_sq.dtype)
                    second = np.empty(stale.size, dtype=upper_sq.dtype)
                    _nearest_center_pass(
                        points[stale], centers,
                        labels=new_labels, dists=best, second_dists=second,
                    )
                    labels[stale] = new_labels
                    upper[stale] = np.sqrt(best)
                    lower[stale] = np.sqrt(second)

        # One exact fused pass pins the returned labels/cost to the final
        # centers (bounds are upper bounds, not exact distances).
        labels, _, cost = assign_and_cost(
            points, centers, weights, preserve_dtype=preserve
        )
        return self._finalize(centers, labels, float(cost), iteration, converged, k)

    def _finalize(
        self,
        centers: np.ndarray,
        labels: np.ndarray,
        cost: float,
        iteration: int,
        converged: bool,
        k: int,
    ) -> KMeansResult:
        centers = np.asarray(centers, dtype=np.float64)
        if k < self.k:
            # Pad with copies of existing centers so downstream code always
            # sees exactly self.k rows.
            pad = np.repeat(centers[[0]], self.k - k, axis=0)
            centers = np.vstack([centers, pad])
        return KMeansResult(
            centers=centers,
            labels=labels,
            cost=cost,
            iterations=iteration,
            converged=converged,
        )


def solve_reference_kmeans(
    points: np.ndarray,
    k: int,
    n_init: int = 10,
    max_iterations: int = 200,
    seed: SeedLike = None,
) -> KMeansResult:
    """Compute the reference (near-optimal) centers ``X*`` on the full data.

    The paper normalizes every reported k-means cost by ``cost(P, X*)`` where
    ``X*`` is computed from ``P`` directly.  Exact k-means is NP-hard, so as
    in the paper's experiments we use a strong conventional solver: many
    k-means++ restarts of Lloyd's algorithm.
    """
    solver = WeightedKMeans(
        k=k, n_init=n_init, max_iterations=max_iterations, seed=seed
    )
    return solver.fit(points)
