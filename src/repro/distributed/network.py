"""The simulated network: explicit messages with scalar/bit accounting.

The paper measures communication cost as "the number of scalars a data source
sends to the server" (Section 3.4), refined to bits once quantization enters
(Section 6/7).  The :class:`SimulatedNetwork` gives every algorithm a single
chokepoint through which all uplink (source → server) and downlink
(server → source) traffic must pass, so the metering cannot be bypassed and
per-algorithm communication numbers are directly comparable.

Beyond the ideal wire, the network can simulate unreliable edge links: a
:class:`~repro.distributed.conditions.NetworkCondition` gives every link a
Bernoulli loss probability, latency, and bandwidth (feeding the simulated
clock), and a :class:`~repro.distributed.conditions.FaultPlan` scripts node
dropout, flaky windows, and stragglers.  Every transmission *attempt* —
including lost ones and retries — is metered: bits spent on a dead link are
still bits spent.  Loss draws come from per-link generators derived via
:func:`repro.utils.random.generator_for_name`, never from global numpy state
and never from the pipeline's master generator, so under the ``ideal``
condition every pipeline is bit-identical to the loss-free implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.distributed.conditions import (
    AGGREGATOR_PREFIX,
    SERVER_ID,
    ConditionLike,
    DeliveryError,
    FaultPlan,
    LinkModel,
    NetworkCondition,
    resolve_condition,
)
from repro.quantization.bits import DOUBLE_PRECISION_BITS, bits_per_scalar
from repro.utils.random import generator_for_name


def _count_scalars(payload) -> int:
    """Number of scalar values in a message payload.

    Payloads may be numpy arrays, python/numpy scalars (including booleans —
    ``bool`` is an ``int`` subclass and ``np.bool_`` is accepted explicitly,
    so both flavours count as one scalar), or (possibly nested)
    lists/tuples/dicts of those.  ``None`` counts zero scalars wherever it
    appears — at top level or inside a container — modelling an absent
    optional field.  Any other type (strings, arbitrary objects) raises
    ``TypeError``: an unmeterable payload must never cross the wire silently.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (int, float, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(payload, dict):
        return sum(_count_scalars(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(_count_scalars(v) for v in payload)
    raise TypeError(f"unsupported payload type {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """One transmission between a data source and the server.

    Attributes
    ----------
    sender, receiver:
        Node identifiers; the server is ``"server"`` and sources are
        ``"source-<i>"``.
    tag:
        Human-readable label describing what was sent (e.g. ``"coreset"``,
        ``"local-svd"``, ``"sample-size"``).
    scalars:
        Number of scalar values in the payload.
    bits_per_value:
        Precision of each transmitted scalar (64 unless quantized).
    delivered:
        False when the simulated link dropped this attempt (the bits were
        still spent on the wire and count toward the totals).
    attempt:
        0 for the first transmission of a payload, ``i`` for its ``i``-th
        retransmission.
    simulated_seconds:
        Time this attempt occupied its link on the simulated clock
        (``latency + bits / bandwidth``, times any straggler factor).
    """

    sender: str
    receiver: str
    tag: str
    scalars: int
    bits_per_value: int = DOUBLE_PRECISION_BITS
    delivered: bool = True
    attempt: int = 0
    simulated_seconds: float = 0.0

    @property
    def bits(self) -> int:
        return self.scalars * self.bits_per_value

    @property
    def uplink(self) -> bool:
        """True if the message flows upward toward the server.

        In a star topology that means ``receiver == "server"``; in a tree
        topology every hop into an aggregator is upward-bound too — bits
        spent on an intermediate hop are still bits spent, so per-hop
        traffic counts toward the headline communication totals.
        """
        return self.receiver == SERVER_ID or self.receiver.startswith(
            AGGREGATOR_PREFIX
        )


@dataclass
class TransmissionLog:
    """Aggregated view over a sequence of messages.

    The headline totals (``total_scalars`` / ``total_bits``) are maintained
    incrementally as messages are recorded, so they are O(1) to read.  The
    streaming engine polls them around every per-source fold to build its
    per-step ledger; with the totals recomputed from scratch each poll the
    whole run would be quadratic in the message count — fatal at thousands
    of sources.  The per-tag / per-sender breakdowns stay lazy (computed
    once per report).
    """

    messages: List[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._all_scalars = 0
        self._all_bits = 0
        self._uplink_scalars = 0
        self._uplink_bits = 0
        for message in self.messages:
            self._tally(message)

    def _tally(self, message: Message) -> None:
        self._all_scalars += message.scalars
        self._all_bits += message.bits
        if message.uplink:
            self._uplink_scalars += message.scalars
            self._uplink_bits += message.bits

    def record(self, message: Message) -> None:
        self.messages.append(message)
        self._tally(message)

    # ------------------------------------------------------------- queries
    def total_scalars(self, uplink_only: bool = True) -> int:
        return self._uplink_scalars if uplink_only else self._all_scalars

    def total_bits(self, uplink_only: bool = True) -> int:
        return self._uplink_bits if uplink_only else self._all_bits

    def scalars_by_tag(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.tag] = out.get(m.tag, 0) + m.scalars
        return out

    def scalars_by_sender(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.sender] = out.get(m.sender, 0) + m.scalars
        return out

    # ------------------------------------------------- reliability queries
    def delivered_scalars(self, uplink_only: bool = True) -> int:
        """Scalars that actually arrived (excludes lost attempts)."""
        return sum(
            m.scalars
            for m in self.messages
            if m.delivered and (m.uplink or not uplink_only)
        )

    def delivered_bits(self, uplink_only: bool = True) -> int:
        return sum(
            m.bits
            for m in self.messages
            if m.delivered and (m.uplink or not uplink_only)
        )

    def lost_messages(self) -> int:
        """Number of transmission attempts the simulated links dropped."""
        return sum(1 for m in self.messages if not m.delivered)

    def retransmissions(self) -> int:
        """Number of retry attempts (messages beyond each payload's first)."""
        return sum(1 for m in self.messages if m.attempt > 0)

    # --------------------------------------------------- simulated clock
    def simulated_seconds_by_sender(self) -> Dict[str, float]:
        """Simulated link time spent per sending node (all attempts)."""
        out: Dict[str, float] = {}
        for m in self.messages:
            out[m.sender] = out.get(m.sender, 0.0) + m.simulated_seconds
        return out

    def simulated_wall_seconds(self) -> float:
        """Simulated wall-clock time of the whole transmission schedule.

        Each node serialises its own messages on its own link, and links run
        in parallel, so the wall time is the per-sender maximum — the
        network-time analogue of the paper's max-per-source compute metric.
        """
        per_sender = self.simulated_seconds_by_sender()
        return max(per_sender.values(), default=0.0)

    def __len__(self) -> int:
        return len(self.messages)


class SimulatedNetwork:
    """In-process network connecting data sources to the edge server.

    All algorithm code transmits through :meth:`send`, which records the
    message and returns the payload unchanged (the "wire" is the python call
    stack).  Quantized payloads declare their reduced ``significant_bits`` so
    the bit accounting matches what a real deployment would send.

    Parameters
    ----------
    condition:
        A :class:`~repro.distributed.conditions.NetworkCondition`, a preset
        name (``"ideal"``, ``"lossy"``, ``"edge-wan"``), or ``None`` for the
        ideal wire.  Under a non-ideal condition :meth:`send` may need
        several metered attempts per payload and raises
        :class:`~repro.distributed.conditions.DeliveryError` when the retry
        budget runs out.
    fault_plan:
        Optional scripted node failures (dropout / flaky / stragglers),
        evaluated against :attr:`round` — protocol drivers advance the round
        counter as their phases progress.
    seed:
        Override for the condition's loss/jitter seed (the CLI forwards the
        experiment seed so degraded runs are reproducible end to end).
    """

    def __init__(
        self,
        condition: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.condition = resolve_condition(condition)
        if seed is not None:
            self.condition = self.condition.with_overrides(seed=seed)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.log = TransmissionLog()
        #: Current protocol round, consulted by the fault plan.
        self.round = 0
        #: Nodes permanently excluded from the rest of the run (dropped out,
        #: or protocol-level give-up after a delivery failure).
        self.failed_nodes: Set[str] = set()
        self._links: Dict[str, LinkModel] = {}
        self._loss_rngs: Dict[str, np.random.Generator] = {}

    # ----------------------------------------------------------- fault state
    def advance_round(self, to_round: Optional[int] = None) -> int:
        """Advance the protocol round the fault plan is evaluated against."""
        self.round = self.round + 1 if to_round is None else int(to_round)
        return self.round

    def mark_failed(self, node_id: str) -> None:
        """Permanently exclude a node from the rest of the run."""
        self.failed_nodes.add(str(node_id))

    def is_failed(self, node_id: str) -> bool:
        return node_id in self.failed_nodes

    def node_is_down(self, node_id: str) -> bool:
        """True when the node cannot transmit or receive right now."""
        return node_id in self.failed_nodes or self.fault_plan.is_down(
            node_id, self.round
        )

    def participating(self, nodes):
        """Filter nodes (objects with ``.node_id``) to those still up.

        One-shot protocol drivers call this at the start of every phase: a
        node that is down when a phase needs it cannot contribute to this
        run any more, so it is marked failed (permanently for the run) and
        dropped from the returned list.
        """
        active = []
        for node in nodes:
            if self.node_is_down(node.node_id):
                self.mark_failed(node.node_id)
            else:
                active.append(node)
        return active

    def _link_for(self, node_id: str) -> LinkModel:
        link = self._links.get(node_id)
        if link is None:
            link = self.condition.link_for(node_id)
            self._links[node_id] = link
        return link

    def _loss_rng(self, node_id: str) -> np.random.Generator:
        rng = self._loss_rngs.get(node_id)
        if rng is None:
            # Derived from (condition seed, link name) — independent of both
            # global numpy state and the pipeline's master generator, and of
            # every other link's draw sequence (jobs=1 ≡ jobs=N).
            rng = generator_for_name(int(self.condition.seed), f"loss:{node_id}")
            self._loss_rngs[node_id] = rng
        return rng

    def send(
        self,
        sender: str,
        receiver: str,
        payload,
        tag: str = "data",
        significant_bits: Optional[int] = None,
        scalars: Optional[int] = None,
        retries: Optional[int] = None,
    ):
        """Transmit ``payload`` and record the cost.

        Parameters
        ----------
        sender, receiver:
            Node identifiers.
        payload:
            The transmitted object (returned unchanged on delivery).
        tag:
            Label for the accounting breakdown.
        significant_bits:
            If the payload was quantized, the retained significand bits;
            determines ``bits_per_value``.
        scalars:
            Override the scalar count (used when the logical payload differs
            from the python object, e.g. symbolic seed exchange counted as 0).
        retries:
            Per-call override of the condition's retransmission budget.

        Raises
        ------
        DeliveryError
            When the source-side endpoint is down per the fault plan (or was
            marked failed), or when every attempt within the retry budget
            was lost.  Lost attempts are metered; a down endpoint transmits
            nothing.
        """
        # The source-side endpoint owns the link (the server sits behind
        # every link's other end).
        endpoint = receiver if sender == SERVER_ID else sender
        if self.node_is_down(endpoint):
            raise DeliveryError(sender, receiver, tag, f"{endpoint} is down")

        count = _count_scalars(payload) if scalars is None else int(scalars)
        bits_per_value = bits_per_scalar(significant_bits)
        link = self._link_for(endpoint)
        seconds = link.transmission_seconds(
            count * bits_per_value
        ) * self.fault_plan.delay_factor(endpoint)
        budget = self.condition.retries if retries is None else int(retries)

        for attempt in range(budget + 1):
            lost = link.loss > 0.0 and bool(
                self._loss_rng(endpoint).random() < link.loss
            )
            self.log.record(
                Message(
                    sender=sender,
                    receiver=receiver,
                    tag=tag,
                    scalars=count,
                    bits_per_value=bits_per_value,
                    delivered=not lost,
                    attempt=attempt,
                    simulated_seconds=seconds,
                )
            )
            if not lost:
                return payload
        raise DeliveryError(
            sender, receiver, tag,
            f"lost after {budget + 1} attempts (loss={link.loss:g})",
        )

    def send_many(
        self,
        sender: str,
        receiver: str,
        parts: Iterable[Tuple[str, object, Optional[int]]],
        retries: Optional[int] = None,
    ) -> None:
        """Transmit several payloads over one link in one batched call.

        ``parts`` is a sequence of ``(tag, payload, significant_bits)``
        tuples.  The recorded message sequence — counts, precisions, loss
        draws, simulated seconds — is bit-identical to calling :meth:`send`
        once per part in order; the batching only hoists the per-call
        endpoint/link/fault-plan resolution out of the loop, which is what
        keeps per-step transmission affordable at thousands of sources.

        Raises :class:`DeliveryError` on the first part that cannot be
        delivered (earlier parts' attempts are already metered); all-or-
        nothing semantics stay with the caller, exactly as with
        sequential sends.
        """
        parts = list(parts)
        endpoint = receiver if sender == SERVER_ID else sender
        if self.node_is_down(endpoint):
            first_tag = parts[0][0] if parts else "data"
            raise DeliveryError(sender, receiver, first_tag, f"{endpoint} is down")

        link = self._link_for(endpoint)
        delay = self.fault_plan.delay_factor(endpoint)
        loss_rng = self._loss_rng(endpoint) if link.loss > 0.0 else None
        budget = self.condition.retries if retries is None else int(retries)
        record = self.log.record

        for tag, payload, significant_bits in parts:
            count = _count_scalars(payload)
            bits_per_value = bits_per_scalar(significant_bits)
            seconds = link.transmission_seconds(count * bits_per_value) * delay
            for attempt in range(budget + 1):
                lost = loss_rng is not None and bool(
                    loss_rng.random() < link.loss
                )
                record(
                    Message(
                        sender=sender,
                        receiver=receiver,
                        tag=tag,
                        scalars=count,
                        bits_per_value=bits_per_value,
                        delivered=not lost,
                        attempt=attempt,
                        simulated_seconds=seconds,
                    )
                )
                if not lost:
                    break
            else:
                raise DeliveryError(
                    sender, receiver, tag,
                    f"lost after {budget + 1} attempts (loss={link.loss:g})",
                )

    # Convenience wrappers ---------------------------------------------------
    def uplink_scalars(self) -> int:
        """Total scalars sent from data sources to the server (all attempts —
        bits spent on lost messages and retries are still bits spent)."""
        return self.log.total_scalars(uplink_only=True)

    def uplink_bits(self) -> int:
        """Total bits sent from data sources to the server."""
        return self.log.total_bits(uplink_only=True)

    def retransmissions(self) -> int:
        """Retry attempts recorded so far (0 on an ideal network)."""
        return self.log.retransmissions()

    def lost_messages(self) -> int:
        """Transmission attempts dropped by the simulated links."""
        return self.log.lost_messages()

    def simulated_seconds(self) -> float:
        """Simulated transmission wall-time (max over per-link serial time)."""
        return self.log.simulated_wall_seconds()

    def reset(self) -> None:
        self.log = TransmissionLog()
        self.round = 0
        self.failed_nodes = set()
        self._links = {}
        self._loss_rngs = {}
