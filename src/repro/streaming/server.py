"""The streaming edge server: fold incremental summaries, answer queries.

The server's state is a per-(source, bucket) map of the coresets it has
received.  Folding a :class:`~repro.streaming.source.SourceUpdate` is O(delta)
— drop retired buckets, store new ones; no recomputation touches buckets that
did not change.  A *query* merges all live buckets across sources into one
generalized coreset (exact, by coreset mergeability) and solves weighted
k-means on it, exactly like the one-shot engine's server section; the caller
lifts the centers back through the stream's DR maps.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cr.coreset import Coreset, merge_coresets
from repro.kmeans.lloyd import KMeansResult, WeightedKMeans
from repro.streaming.source import SourceUpdate
from repro.utils import faultpoints
from repro.utils.clock import perf_counter
from repro.utils.random import (
    SeedLike,
    as_generator,
    derive_seed,
    generator_state,
    restore_generator,
)
from repro.utils.validation import check_positive_int


class StreamingServer:
    """Server half of the streaming protocol.

    Parameters
    ----------
    k:
        Number of clusters answered per query.
    n_init, max_iterations:
        Weighted k-means solver parameters (fresh solver per query, seeded
        deterministically from the server's generator).
    seed:
        Master seed for the per-query solver seeds.
    """

    def __init__(
        self,
        k: int,
        n_init: int = 5,
        max_iterations: int = 100,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self._rng = as_generator(seed)
        self._buckets: Dict[Tuple[str, int], Coreset] = {}
        self.compute_seconds = 0.0
        self.updates_folded = 0

    # ------------------------------------------------------------------ API
    def fold(self, update: SourceUpdate) -> None:
        """Apply one incremental summary: retire then add."""
        faultpoints.reach("streaming.fold")
        for bucket_id in update.retired_ids:
            self._buckets.pop((update.source_id, bucket_id), None)
        for bucket in update.added:
            self._buckets[(update.source_id, bucket.bucket_id)] = bucket.coreset
        self.updates_folded += 1

    @property
    def live_bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def has_summary(self) -> bool:
        return bool(self._buckets)

    def global_coreset(self) -> Coreset:
        """Union of every live bucket of every source."""
        if not self._buckets:
            raise RuntimeError(
                "the server holds no summary (no batches ingested, or every "
                "bucket expired from the sliding window)"
            )
        return merge_coresets(self._buckets[key] for key in sorted(self._buckets))

    def query(self) -> Tuple[KMeansResult, Coreset, float]:
        """Solve weighted k-means on the current global coreset.

        Returns ``(result, coreset, seconds)``; centers are in the stream's
        reduced space — the engine lifts them back.
        """
        start = perf_counter()
        coreset = self.global_coreset()
        solver = WeightedKMeans(
            k=self.k,
            n_init=self.n_init,
            max_iterations=self.max_iterations,
            seed=derive_seed(self._rng),
        )
        result = solver.fit(coreset.points, coreset.weights)
        seconds = perf_counter() - start
        self.compute_seconds += seconds
        return result, coreset, seconds

    # ------------------------------------------------------- snapshotting
    def snapshot(self) -> dict:
        """JSON-able snapshot of the server's complete state.

        Covers the per-(source, bucket) coreset map, the solver
        configuration, the accounting counters, and — crucially — the exact
        position of the per-query seed generator (the stream-wide rng
        handshake): a server rebuilt by :meth:`restore` derives the same
        solver seed for its next query and answers it bit-identically.
        """
        return {
            "k": self.k,
            "n_init": self.n_init,
            "max_iterations": self.max_iterations,
            "rng": generator_state(self._rng),
            "compute_seconds": self.compute_seconds,
            "updates_folded": self.updates_folded,
            "buckets": [
                {
                    "source_id": source_id,
                    "bucket_id": bucket_id,
                    "coreset": self._buckets[(source_id, bucket_id)].to_state(),
                }
                for source_id, bucket_id in sorted(self._buckets)
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "StreamingServer":
        """Rebuild a server from a :meth:`snapshot` (mid-stream queries on
        the restored server are bit-identical to the original's)."""
        server = cls(
            k=int(snapshot["k"]),
            n_init=int(snapshot.get("n_init", 5)),
            max_iterations=int(snapshot.get("max_iterations", 100)),
        )
        server._rng = restore_generator(snapshot["rng"])
        server._buckets = {
            (str(b["source_id"]), int(b["bucket_id"])):
                Coreset.from_state(b["coreset"])
            for b in snapshot.get("buckets", ())
        }
        server.compute_seconds = float(snapshot.get("compute_seconds", 0.0))
        server.updates_folded = int(snapshot.get("updates_folded", 0))
        return server
