"""The edge server: aggregates summaries and solves k-means.

The server is assumed to be much more powerful than the data sources
(Section 3.4), so its computation is not part of the complexity metric; it is
still timed separately for completeness.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cr.coreset import Coreset, merge_coresets
from repro.distributed.conditions import DeliveryError
from repro.distributed.network import SimulatedNetwork
from repro.kmeans.lloyd import KMeansResult, WeightedKMeans
from repro.utils.clock import perf_counter
from repro.utils.linalg import safe_svd
from repro.utils.random import SeedLike, as_generator
from repro.utils.validation import check_positive_int


class EdgeServer:
    """The edge server that receives summaries and computes k-means centers.

    Parameters
    ----------
    network:
        Shared simulated network (used for the rare downlink messages such as
        the per-source sample-size allocation of disSS).
    k:
        Number of clusters to compute.
    n_init, max_iterations:
        Parameters of the server-side weighted k-means solver.
    seed:
        RNG seed for the solver.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        k: int,
        n_init: int = 5,
        max_iterations: int = 100,
        seed: SeedLike = None,
    ) -> None:
        self.network = network
        self.k = check_positive_int(k, "k")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.rng = as_generator(seed)
        #: Wall-clock seconds spent in server-side computation.
        self.compute_seconds = 0.0
        #: Per-server override of the network condition's retransmission
        #: budget for downlink messages (``None`` defers to the condition).
        self.retry_budget: Optional[int] = None
        #: Downlink payloads the server failed to deliver within the budget.
        self.delivery_failures = 0
        self._received_coresets: list[Coreset] = []

    # -------------------------------------------------------------- helpers
    def _timed(self, fn, *args, **kwargs):
        start = perf_counter()
        result = fn(*args, **kwargs)
        self.compute_seconds += perf_counter() - start
        return result

    def send_to_source(self, node_id: str, payload, tag: str,
                       scalars: Optional[int] = None, retries: Optional[int] = None):
        """Downlink transmission (e.g. disSS sample-size allocation).

        Same retry-with-budget semantics as the uplink: attempts up to the
        budget, every attempt metered, :class:`DeliveryError` — and a
        delivery-failure count — when the source stays unreachable (the
        protocol driver then excludes it from the round).
        """
        if retries is None:
            retries = self.retry_budget
        try:
            return self.network.send(
                sender="server", receiver=node_id, payload=payload, tag=tag,
                scalars=scalars, retries=retries,
            )
        except DeliveryError:
            self.delivery_failures += 1
            raise

    # ------------------------------------------------------------------ API
    def receive_coreset(self, coreset: Coreset) -> None:
        """Store a coreset received from a data source."""
        self._received_coresets.append(coreset)

    def merged_coreset(self) -> Coreset:
        """Union of all received per-source coresets."""
        if not self._received_coresets:
            raise RuntimeError("no coresets have been received")
        return merge_coresets(self._received_coresets)

    def clear(self) -> None:
        self._received_coresets = []

    def solve_kmeans(self, coreset: Coreset) -> KMeansResult:
        """Weighted k-means on a coreset (the ``kmeans(S', w, k)`` step)."""
        solver = WeightedKMeans(
            k=self.k,
            n_init=self.n_init,
            max_iterations=self.max_iterations,
            seed=self.rng,
        )
        return self._timed(solver.fit, coreset.points, coreset.weights)

    def global_svd(self, stacked: np.ndarray, rank: int) -> np.ndarray:
        """Global SVD step of disPCA: returns the top-``rank`` right singular
        vectors (columns) of the stacked per-source sketches."""
        rank = check_positive_int(rank, "rank")

        def _svd():
            _, _, vt = safe_svd(stacked, full_matrices=False)
            keep = min(rank, vt.shape[0])
            return vt[:keep].T

        return self._timed(_svd)

    def allocate_sample_sizes(
        self, costs: Sequence[float], total_samples: int
    ) -> np.ndarray:
        """disSS step 2: split the global sample budget across sources
        proportionally to their reported local bicriteria costs."""
        total_samples = check_positive_int(total_samples, "total_samples")
        costs_arr = np.asarray(list(costs), dtype=float)
        if np.any(costs_arr < 0):
            raise ValueError("costs must be non-negative")
        total_cost = costs_arr.sum()
        m = costs_arr.shape[0]
        if total_cost <= 0:
            shares = np.full(m, 1.0 / m)
        else:
            shares = costs_arr / total_cost
        sizes = np.maximum(1, np.round(shares * total_samples).astype(int))
        return sizes
