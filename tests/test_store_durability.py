"""Crash durability of the JSONL result store: torn tails, quarantine,
verify/repair, and the `repro store` CLI."""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro import api
from repro.api.store import RunRecord, StoreCheck
from repro.cli import main
from repro.utils import faultpoints


@pytest.fixture(autouse=True)
def clean_registry():
    faultpoints.disarm()
    yield
    faultpoints.disarm()


def record(i: int) -> RunRecord:
    return RunRecord(
        algorithm="jl-fss",
        spec={"x": i},
        summary={"mean_normalized_cost": float(i)},
        cell_id=f"cell-{i}",
    )


def record_line(i: int) -> str:
    return json.dumps(record(i).to_dict(), sort_keys=True)


@pytest.fixture()
def store(tmp_path):
    return api.ResultStore(tmp_path / "s.jsonl")


class TestDurableAppend:
    def test_append_frames_one_terminated_line_per_record(self, store):
        store.append(record(0))
        store.append(record(1))
        text = store.path.read_text()
        assert text.endswith("\n") and text.count("\n") == 2
        assert len(store.load()) == 2

    def test_torn_write_faultpoint_leaves_unterminated_prefix(self, store):
        store.append(record(0))
        with faultpoints.armed("store.append.torn"):
            with pytest.raises(faultpoints.FaultInjected):
                store.append(record(1))
        raw = store.path.read_bytes()
        assert not raw.endswith(b"\n")  # flushed, fsynced, torn — a real crash
        # The committed record is untouched; the torn half is not a record.
        assert len(store.load()) == 1

    def test_append_after_crash_heals_then_appends(self, store):
        store.append(record(0))
        with faultpoints.armed("store.append.torn"):
            with pytest.raises(faultpoints.FaultInjected):
                store.append(record(1))
        store.append(record(1))  # recovery path: heal tail, then append
        records = store.load()
        assert [r.cell_id for r in records] == ["cell-0", "cell-1"]
        assert store.corrupt_path.exists()  # the torn half was quarantined

    def test_extend_partial_failure_keeps_committed_prefix(self, store):
        with faultpoints.armed("store.append", at=3):
            with pytest.raises(faultpoints.FaultInjected):
                store.extend([record(0), record(1), record(2), record(3)])
        # Records before the failing append are durable; none are torn.
        assert [r.cell_id for r in store.load()] == ["cell-0", "cell-1"]


class TestTolerantLoad:
    def test_missing_and_empty_files_load_empty(self, store):
        assert store.load() == []
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.touch()
        assert store.load() == []
        assert store.verify() == StoreCheck(path=str(store.path), records=0)

    def test_torn_parseable_tail_gains_its_newline(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write(record_line(1))  # complete record, missing \n
        assert len(store.load()) == 2
        assert store.path.read_text().endswith("\n")
        assert not store.corrupt_path.exists()  # nothing was lost

    def test_torn_garbage_tail_is_quarantined(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write(record_line(1)[:25])
        assert len(store.load()) == 1
        assert record_line(1)[:25] in store.corrupt_path.read_text()

    def test_whole_file_torn_heals_to_empty(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(record_line(0)[:10])
        assert store.load() == []
        assert store.path.read_bytes() == b""

    def test_strict_load_raises_on_torn_tail(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write(record_line(1)[:25])
        with pytest.raises(ValueError, match="torn trailing line"):
            store.load(strict=True)
        # strict never mutates: the torn bytes are still there.
        assert not store.path.read_text().endswith("\n")

    def test_complete_invalid_line_always_raises_with_location(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write("not-json\n")
        store.append(record(1))
        with pytest.raises(ValueError, match=r"s\.jsonl:2"):
            store.load()
        with pytest.raises(ValueError, match=r"s\.jsonl:2"):
            store.load(strict=True)

    def test_unknown_fields_raise_as_invalid_record(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        payload = record(0).to_dict()
        payload["mystery"] = 1
        store.path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="unknown RunRecord fields"):
            store.load()


class TestVerifyRepair:
    def test_verify_is_non_mutating(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write("junk\n" + record_line(1)[:25])
        before = store.path.read_bytes()
        check = store.verify()
        assert store.path.read_bytes() == before
        assert check.torn_tail and check.corrupt_lines == (2,)
        assert check.records == 1 and not check.ok

    def test_verify_counts_parseable_torn_tail_as_uncommitted(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write(record_line(1))
        check = store.verify()
        assert check.torn_tail and check.records == 1 and not check.corrupt_lines

    def test_repair_quarantines_and_rewrites(self, store):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write("junk\n")
        store.append(record(1))
        with store.path.open("a") as handle:
            handle.write(record_line(2)[:25])
        kept, quarantined = store.repair()
        # The count covers complete corrupt lines; the torn tail is healed
        # (and its bytes quarantined) separately, matching verify().
        assert (kept, quarantined) == (2, 1)
        assert store.verify().ok
        assert [r.cell_id for r in store.load()] == ["cell-0", "cell-1"]
        corrupt = store.corrupt_path.read_text()
        assert "junk" in corrupt and record_line(2)[:25] in corrupt

    def test_repair_of_clean_store_is_a_no_op(self, store):
        store.append(record(0))
        before = store.path.read_bytes()
        assert store.repair() == (1, 0)
        assert store.path.read_bytes() == before
        assert store.repair() == (1, 0) if store.path.exists() else True

    def test_repair_of_missing_store(self, store):
        assert store.repair() == (0, 0)


class TestProvenance:
    def test_git_commit_is_memoized_and_tolerant(self, monkeypatch):
        from repro.api import store as store_module

        store_module._git_commit.cache_clear()
        commit = store_module._git_commit()
        assert commit is None or (isinstance(commit, str) and len(commit) >= 7)
        # Memoized: a second call must not re-run git (poison PATH to prove).
        monkeypatch.setenv("PATH", "/nonexistent")
        assert store_module._git_commit() == commit
        # With git unreachable and the memo cleared, degrade to None.
        store_module._git_commit.cache_clear()
        assert store_module._git_commit() is None
        store_module._git_commit.cache_clear()

    def test_transient_failure_is_not_cached(self, monkeypatch):
        # The regression: a flaky first lookup used to pin provenance to
        # None for the process lifetime.  Now only successes are permanent.
        from repro.api import store as store_module

        store_module._git_commit.cache_clear()
        good_path = os.environ.get("PATH", "/usr/bin:/bin")
        monkeypatch.setenv("PATH", "/nonexistent")
        assert store_module._git_commit() is None
        monkeypatch.setenv("PATH", good_path)
        commit = store_module._git_commit()
        if commit is not None:  # environments without git stay None
            assert isinstance(commit, str) and len(commit) >= 7
            # ... and the recovered value is now memoized.
            monkeypatch.setenv("PATH", "/nonexistent")
            assert store_module._git_commit() == commit
        store_module._git_commit.cache_clear()

    def test_failure_retries_are_bounded(self, monkeypatch):
        from repro.api import store as store_module

        store_module._git_commit.cache_clear()
        calls = []

        def exploding_run(*args, **kwargs):
            calls.append(args)
            raise OSError("git unavailable")

        monkeypatch.setattr(store_module.subprocess, "run", exploding_run)
        budget = store_module._GIT_COMMIT_MAX_ATTEMPTS
        for _ in range(budget + 4):
            assert store_module._git_commit() is None
        # After the attempt budget the subprocess is never invoked again.
        assert len(calls) == budget
        store_module._git_commit.cache_clear()


class TestStoreCLI:
    def test_verify_ok_store(self, store, capsys):
        store.append(record(0))
        assert main(["store", "verify", str(store.path)]) == 0
        assert "1 record(s), ok" in capsys.readouterr().out

    def test_verify_unhealthy_store_exits_nonzero(self, store, capsys):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write(record_line(1)[:20])
        with pytest.raises(SystemExit):
            main(["store", "verify", str(store.path)])
        assert "torn trailing line" in capsys.readouterr().out

    def test_repair_cli_heals(self, store, capsys):
        store.append(record(0))
        with store.path.open("a") as handle:
            handle.write("junk\n")
        main(["store", "repair", str(store.path)])
        out = capsys.readouterr().out
        assert "quarantined 1 line(s)" in out
        assert main(["store", "verify", str(store.path)]) == 0

    def test_repair_cli_clean_store(self, store, capsys):
        store.append(record(0))
        main(["store", "repair", str(store.path)])
        assert "nothing to repair" in capsys.readouterr().out

    def test_unwritable_store_is_a_one_line_error(self, tmp_path, capsys):
        if os.geteuid() == 0:
            pytest.skip("permission bits do not bind as root")
        sealed = tmp_path / "sealed"
        sealed.mkdir()
        sealed.chmod(stat.S_IRUSR | stat.S_IXUSR)
        try:
            with pytest.raises(SystemExit, match="cannot write store"):
                main(["run", "--algorithm", "uniform", "--k", "2",
                      "--store", str(sealed / "sub" / "s.jsonl")])
        finally:
            sealed.chmod(stat.S_IRWXU)
