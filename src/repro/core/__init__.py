"""Core: the stage engine, the pipeline registry, and the paper's pipelines.

The execution skeleton shared by every algorithm lives in
:mod:`repro.core.engine` (:class:`StagePipeline` /
:class:`DistributedStagePipeline`): timing, network metering, server-side
weighted k-means, and center lift-back through the recorded DR inverses.
Algorithms are declarative compositions of the stages in
:mod:`repro.stages`, registered by name in :mod:`repro.core.registry`.

Single-source pipelines (Section 4):

* :class:`NoReductionPipeline` — transmit the raw data (the "NR" baseline).
* :class:`FSSPipeline` — the FSS baseline (Theorem 4.1).
* :class:`JLFSSPipeline` — Algorithm 1 (DR + CR).
* :class:`FSSJLPipeline` — Algorithm 2 (CR + DR).
* :class:`JLFSSJLPipeline` — Algorithm 3 (DR + CR + DR).

Multi-source pipelines (Section 5), operating on an
:class:`~repro.distributed.cluster.EdgeCluster`:

* :class:`DistributedNoReductionPipeline` — raw-data baseline.
* :class:`BKLWPipeline` — the BKLW baseline (Theorem 5.3).
* :class:`JLBKLWPipeline` — Algorithm 4 (Theorem 5.4).

All pipelines accept an optional rounding quantizer, giving the +QT variants
of Section 6, and return a :class:`PipelineReport` with the centers (in the
original space) plus the communication and computation accounting.

:mod:`repro.core.configuration` implements the quantizer-configuration
optimizer of Section 6.3 and :mod:`repro.core.theory` the closed-form
communication/complexity scalings of Table 2.
"""

from repro.core.report import PipelineReport
from repro.core.engine import (
    StagePipeline,
    DistributedStagePipeline,
    WireSummary,
    encode_for_wire,
)
from repro.core.pipelines import (
    SingleSourcePipeline,
    NoReductionPipeline,
    FSSPipeline,
    JLFSSPipeline,
    FSSJLPipeline,
    JLFSSJLPipeline,
)
from repro.core.distributed_pipelines import (
    MultiSourcePipeline,
    DistributedNoReductionPipeline,
    BKLWPipeline,
    JLBKLWPipeline,
)
from repro.core.streaming import (
    StreamingEngine,
    StreamingReport,
    QuerySnapshot,
)
from repro.core.registry import (
    PipelineSpec,
    register_pipeline,
    create_pipeline,
    registered_names,
    registered_specs,
    get_spec,
    is_multi_source,
    is_streaming,
    make_stage_pipeline,
)
from repro.core.configuration import (
    QuantizerConfiguration,
    configure_joint_reduction,
    approximation_error_bound,
    communication_cost_model,
)
from repro.core.theory import TheoreticalCosts, theoretical_costs, THEORY_TABLE_ROWS

__all__ = [
    "PipelineReport",
    "StagePipeline",
    "DistributedStagePipeline",
    "StreamingEngine",
    "StreamingReport",
    "QuerySnapshot",
    "WireSummary",
    "encode_for_wire",
    "SingleSourcePipeline",
    "NoReductionPipeline",
    "FSSPipeline",
    "JLFSSPipeline",
    "FSSJLPipeline",
    "JLFSSJLPipeline",
    "MultiSourcePipeline",
    "DistributedNoReductionPipeline",
    "BKLWPipeline",
    "JLBKLWPipeline",
    "PipelineSpec",
    "register_pipeline",
    "create_pipeline",
    "registered_names",
    "registered_specs",
    "get_spec",
    "is_multi_source",
    "is_streaming",
    "make_stage_pipeline",
    "QuantizerConfiguration",
    "configure_joint_reduction",
    "approximation_error_bound",
    "communication_cost_model",
    "TheoreticalCosts",
    "theoretical_costs",
    "THEORY_TABLE_ROWS",
]
