"""k-means cost functions.

Implements the cost definitions used throughout the paper:

* Eq. (1): ``cost(P, X) = sum_{p in P} min_{x in X} ||p - x||^2``
* Eq. (2): partition cost — optimal within-cluster sum of squares of a
  partition, attained at the cluster means.
* Eq. (4): coreset cost — weighted cost plus the constant shift Δ
  (evaluated here through :func:`weighted_kmeans_cost`; the Δ bookkeeping
  lives in :class:`repro.cr.coreset.Coreset`).

All nearest-center passes funnel through one fused blockwise kernel
(:func:`_nearest_center_pass`): a single sweep over the data computes labels
and min-distances together inside a preallocated distance buffer, and
:func:`assign_and_cost` additionally folds in the weighted cost — so callers
that need all three (Lloyd iterations, samplers) pay one pass instead of
three.  The kernels preserve the input floating dtype, enabling an opt-in
``float32`` compute path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.linalg import pairwise_squared_distances, squared_norms
from repro.utils.validation import check_matrix, check_weights

# Centres are processed against points in blocks of this many rows to keep the
# intermediate distance matrix small for large datasets.
_BLOCK_ROWS = 8192


def _nearest_center_pass(
    points: np.ndarray,
    centers: np.ndarray,
    labels: Optional[np.ndarray] = None,
    dists: Optional[np.ndarray] = None,
    second_dists: Optional[np.ndarray] = None,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """One fused blockwise sweep: nearest-center labels and/or distances.

    Writes into the provided output arrays (allocating any that are
    ``None`` except ``labels``/``second_dists``, which are only computed when
    requested) and reuses a single preallocated ``(block, k)`` distance
    buffer across blocks.  Returns ``(labels, dists)``.
    """
    n = points.shape[0]
    k = centers.shape[0]
    if dists is None:
        dists = np.empty(n, dtype=np.result_type(points, centers))
    center_norms = squared_norms(centers)
    block = min(_BLOCK_ROWS, n)
    buf = np.empty((block, k), dtype=np.result_type(points, centers))
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        d2 = pairwise_squared_distances(
            points[start:stop], centers,
            b_squared_norms=center_norms, out=buf[: stop - start],
        )
        if labels is None and second_dists is None:
            dists[start:stop] = d2.min(axis=1)
            continue
        block_labels = d2.argmin(axis=1)
        rows = np.arange(stop - start)
        if labels is not None:
            labels[start:stop] = block_labels
        dists[start:stop] = d2[rows, block_labels]
        if second_dists is not None:
            # Mask out the winner and take the runner-up (used by the
            # Hamerly-bounded Lloyd variant for its lower bounds).
            d2[rows, block_labels] = np.inf
            second_dists[start:stop] = d2.min(axis=1)
    return labels, dists


def _min_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Distance from every point to its nearest center (squared)."""
    _, dists = _nearest_center_pass(points, centers)
    return dists


def assign_to_centers(
    points: np.ndarray, centers: np.ndarray, preserve_dtype: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center.

    Returns ``(labels, squared_distances)`` where ``labels[i]`` is the index
    of the nearest center of ``points[i]`` and ``squared_distances[i]`` the
    squared Euclidean distance to it.  Ties are broken toward the
    lowest-index center, matching the paper's "ties broken arbitrarily".

    ``preserve_dtype=True`` opts into single-precision compute for float32
    inputs (callers accept the reduced accuracy of the expanded distance
    formula); the default promotes to float64.
    """
    points = check_matrix(points, "points", preserve_dtype=preserve_dtype)
    centers = check_matrix(centers, "centers", preserve_dtype=preserve_dtype)
    labels = np.empty(points.shape[0], dtype=np.int64)
    labels, dists = _nearest_center_pass(points, centers, labels=labels)
    return labels, dists


def assign_and_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: Optional[np.ndarray] = None,
    shift: float = 0.0,
    preserve_dtype: bool = False,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Fused assignment + cost: one pass returns what three passes used to.

    Returns ``(labels, squared_distances, weighted_cost)`` for the same
    blockwise sweep — ``labels`` and ``squared_distances`` exactly as
    :func:`assign_to_centers` and ``weighted_cost`` exactly as
    :func:`weighted_kmeans_cost` (bit-for-bit: the cost is the dot product of
    the weights with the very distance vector the assignment produced).

    This is the hot kernel of the Lloyd solver: one iteration needs the
    labels (to update means), the distances (to reseed empty clusters), and
    the cost (to test convergence), and computing them together halves the
    number of full-data distance sweeps per iteration.

    ``preserve_dtype=True`` opts float32 inputs into single-precision
    compute (the solver's ``compute_dtype`` path); the default promotes to
    float64.
    """
    points = check_matrix(points, "points", preserve_dtype=preserve_dtype)
    centers = check_matrix(centers, "centers", preserve_dtype=preserve_dtype)
    weights = check_weights(weights, points.shape[0])
    labels = np.empty(points.shape[0], dtype=np.int64)
    labels, dists = _nearest_center_pass(points, centers, labels=labels)
    return labels, dists, float(np.dot(weights, dists) + shift)


def kmeans_cost(points: np.ndarray, centers: np.ndarray) -> float:
    """Unweighted k-means cost of ``centers`` on ``points`` (Eq. 1)."""
    points = check_matrix(points, "points")
    centers = check_matrix(centers, "centers")
    return float(_min_squared_distances(points, centers).sum())


def weighted_kmeans_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: Optional[np.ndarray] = None,
    shift: float = 0.0,
) -> float:
    """Weighted k-means cost plus a constant shift (Eq. 4).

    Parameters
    ----------
    points, centers:
        ``(n, d)`` and ``(k, d)`` arrays.
    weights:
        Optional non-negative weights, one per point; ``None`` means 1.
    shift:
        The additive constant Δ carried by generalized coresets.
    """
    points = check_matrix(points, "points")
    centers = check_matrix(centers, "centers")
    weights = check_weights(weights, points.shape[0])
    d2 = _min_squared_distances(points, centers)
    return float(np.dot(weights, d2) + shift)


def cluster_means(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    return_totals: bool = False,
    preserve_dtype: bool = False,
):
    """Weighted means of each cluster; empty clusters return a zero row.

    The optimal 1-means center of a cluster is its (weighted) sample mean
    μ(P) — see Section 3.1 of the paper.  Segment sums run through
    per-dimension :func:`numpy.bincount` (accumulating in the same element
    order as a scatter-add, hence numerically identical) rather than
    ``np.add.at``, whose unbuffered fancy-index dispatch is an order of
    magnitude slower on large inputs.

    With ``return_totals=True`` also returns the per-cluster weight totals,
    which callers like the Lloyd solver need anyway for empty-cluster
    detection — saving a redundant ``bincount`` pass.
    """
    points = check_matrix(points, "points", preserve_dtype=preserve_dtype)
    weights = check_weights(weights, points.shape[0])
    labels = np.asarray(labels, dtype=np.int64)
    d = points.shape[1]
    totals = np.bincount(labels, weights=weights, minlength=k)
    # Match the points' dtype so the float32 compute path does not allocate
    # a promoted float64 copy of the data; float64 inputs are unaffected.
    # (The per-cluster accumulation below always runs in float64: bincount
    # sums its weights at double precision regardless of input dtype.)
    if weights.dtype != points.dtype:
        weighted = points * weights.astype(points.dtype)[:, None]
    else:
        weighted = points * weights[:, None]
    means = np.empty((k, d), dtype=float)
    for j in range(d):
        means[:, j] = np.bincount(labels, weights=weighted[:, j], minlength=k)
    nonempty = totals > 0
    means[~nonempty] = 0.0
    means[nonempty] /= totals[nonempty, None]
    if return_totals:
        return means, totals
    return means


def partition_cost(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Optimal cost of a partition (Eq. 2): each cluster served by its mean."""
    points = check_matrix(points, "points")
    weights = check_weights(weights, points.shape[0])
    means = cluster_means(points, labels, k, weights)
    diffs = points - means[labels]
    return float(np.sum(weights * np.einsum("ij,ij->i", diffs, diffs)))


def partition_from_centers(points: np.ndarray, centers: np.ndarray) -> List[np.ndarray]:
    """Return the induced partition P_{P,X} as a list of index arrays."""
    labels, _ = assign_to_centers(points, centers)
    return [np.flatnonzero(labels == i) for i in range(centers.shape[0])]


def normalized_cost(
    points: np.ndarray,
    centers: np.ndarray,
    reference_centers: np.ndarray,
) -> float:
    """Normalized k-means cost ``cost(P, X) / cost(P, X*)`` used in Section 7."""
    numerator = kmeans_cost(points, centers)
    denominator = kmeans_cost(points, reference_centers)
    if denominator <= 0.0:
        # A zero reference cost means the reference centers fit P exactly;
        # any other solution either also has zero cost (ratio 1) or is
        # infinitely worse.
        return 1.0 if numerator <= 0.0 else float("inf")
    return float(numerator / denominator)


def within_cluster_sizes(labels: np.ndarray, k: int) -> np.ndarray:
    """Number of points per cluster for a label vector."""
    return np.bincount(np.asarray(labels, dtype=np.int64), minlength=k)
