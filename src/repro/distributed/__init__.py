"""Simulated edge deployment and distributed DR/CR algorithms.

This package is the substrate for the multi-source setting of Section 5:

* :class:`SimulatedNetwork`, :class:`DataSourceNode`, :class:`EdgeServer`,
  :class:`EdgeCluster` — an in-process simulation of ``m`` data sources
  connected to one edge server, where every transmission is an explicit
  :class:`Message` and every scalar/bit is metered.
* :func:`partition_dataset` — ways of splitting a dataset across sources.
* :class:`DistributedPCA` (disPCA), :class:`DistributedSensitivitySampler`
  (disSS), and :class:`BKLWCoreset` (disPCA + disSS) — the distributed
  baseline algorithms from references [35], [4], and [27].
* :class:`NetworkCondition`, :class:`LinkModel`, :class:`FaultPlan`,
  :data:`NETWORK_PRESETS` — unreliable-edge simulation: lossy and
  heterogeneous links, scripted dropout/flaky/straggler faults, and
  retry-with-budget delivery (:class:`DeliveryError` on exhaustion).
"""

from repro.distributed.conditions import (
    NETWORK_PRESETS,
    DeliveryError,
    FaultPlan,
    LinkModel,
    NetworkCondition,
    resolve_condition,
)
from repro.distributed.network import Message, SimulatedNetwork, TransmissionLog
from repro.distributed.node import DataSourceNode
from repro.distributed.server import EdgeServer
from repro.distributed.cluster import EdgeCluster
from repro.distributed.partition import partition_dataset
from repro.distributed.dispca import DistributedPCA, DisPCAResult
from repro.distributed.disss import DistributedSensitivitySampler, DisSSResult
from repro.distributed.bklw import BKLWCoreset, BKLWResult

__all__ = [
    "Message",
    "SimulatedNetwork",
    "TransmissionLog",
    "NetworkCondition",
    "LinkModel",
    "FaultPlan",
    "DeliveryError",
    "NETWORK_PRESETS",
    "resolve_condition",
    "DataSourceNode",
    "EdgeServer",
    "EdgeCluster",
    "partition_dataset",
    "DistributedPCA",
    "DisPCAResult",
    "DistributedSensitivitySampler",
    "DisSSResult",
    "BKLWCoreset",
    "BKLWResult",
]
