"""Abstract interface shared by all dimensionality-reduction maps."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class DimensionalityReducer(abc.ABC):
    """A linear map ``π : R^d -> R^{d'}`` applied row-wise to datasets.

    All DR methods in the paper are linear (JL projections and PCA), so the
    interface exposes the projection matrix, application to point sets, and
    lifting centers back to the original space through the Moore–Penrose
    pseudo-inverse (Section 3.1).
    """

    @property
    @abc.abstractmethod
    def input_dimension(self) -> int:
        """Dimension ``d`` of the original space."""

    @property
    @abc.abstractmethod
    def output_dimension(self) -> int:
        """Dimension ``d'`` of the projected space."""

    @abc.abstractmethod
    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the map to every row of ``points`` (shape ``(n, d)``)."""

    @abc.abstractmethod
    def inverse_transform(self, points: np.ndarray) -> np.ndarray:
        """Lift points from the projected space back to ``R^d``.

        The lift is not the inverse of the map (the map is not injective);
        it is *an* inverse in the sense of Section 3.1: any solution of
        ``π(x̃) = x'``, here the Moore–Penrose one.
        """

    @property
    @abc.abstractmethod
    def transmitted_scalars(self) -> int:
        """Number of scalars the data source must send to describe the map.

        Zero for data-oblivious maps (JL with a shared seed); ``d * d'`` for
        data-dependent maps whose basis must be shipped (PCA).
        """

    # Convenience -----------------------------------------------------------
    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.transform(points)

    def describe(self) -> str:
        """Short human-readable description used by experiment logs."""
        return (
            f"{type(self).__name__}({self.input_dimension} -> "
            f"{self.output_dimension})"
        )

    def lift_through(self, outer: "DimensionalityReducer", points: np.ndarray) -> np.ndarray:
        """Pull points back through ``outer`` then through ``self``.

        Utility for Algorithm 3, where centers found in the twice-projected
        space must be lifted through ``(π1^(2) ∘ π1^(1))^{-1}``: first invert
        the outer (second) projection, then this (first) one.
        """
        return self.inverse_transform(outer.inverse_transform(points))


class IdentityReducer(DimensionalityReducer):
    """No-op DR map, handy for baselines and for unit testing pipelines."""

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self._dimension = int(dimension)

    @property
    def input_dimension(self) -> int:
        return self._dimension

    @property
    def output_dimension(self) -> int:
        return self._dimension

    def transform(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self._dimension:
            raise ValueError(
                f"expected {self._dimension}-dimensional points, got {points.shape[1]}"
            )
        return points.copy()

    def inverse_transform(self, points: np.ndarray) -> np.ndarray:
        return self.transform(points)

    @property
    def transmitted_scalars(self) -> int:
        return 0
