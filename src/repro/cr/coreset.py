"""The generalized coreset data structure ``(S, Δ, w)``.

Definition 3.2 of the paper: a tuple of a (small) weighted point set and an
additive constant Δ whose cost function

    cost(S, X) = Σ_{q ∈ S} w(q) · min_{x ∈ X} ‖q − x‖² + Δ

approximates the k-means cost of the original dataset for *every* candidate
center set X up to a ``1 ± ε`` factor.  The Δ term is what allows FSS to
discard the energy outside the principal subspace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kmeans.cost import weighted_kmeans_cost
from repro.utils.validation import check_matrix, check_weights


@dataclass
class Coreset:
    """A weighted coreset with an additive constant, ``(S, Δ, w)``.

    Attributes
    ----------
    points:
        The coreset points ``S`` as an ``(m, d')`` array.  Note ``d'`` may
        differ from the original dimension if a DR map was applied.
    weights:
        Non-negative weights ``w``, one per coreset point.
    shift:
        The additive constant Δ (0 for classical coresets).
    """

    points: np.ndarray
    weights: np.ndarray
    shift: float = 0.0

    def __post_init__(self) -> None:
        self.points = check_matrix(self.points, "points", allow_empty=True)
        self.weights = check_weights(self.weights, self.points.shape[0])
        self.shift = float(self.shift)
        if self.shift < 0:
            raise ValueError(f"shift must be non-negative, got {self.shift}")

    # ------------------------------------------------------------ properties
    @property
    def size(self) -> int:
        """Number of coreset points |S|."""
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimension of the space the coreset lives in."""
        return int(self.points.shape[1])

    @property
    def total_weight(self) -> float:
        """Σ w(q); for sensitivity sampling with deterministic weights this
        equals the cardinality n of the original dataset (footnote 8)."""
        return float(self.weights.sum())

    # ------------------------------------------------------------------ API
    def to_state(self) -> dict:
        """JSON-able snapshot of the coreset.

        ``tolist()`` round-trips float64 exactly, so
        :meth:`from_state` rebuilds a bit-identical coreset — the unit the
        streaming snapshot/restore machinery serializes.
        """
        return {
            "points": self.points.tolist(),
            "weights": self.weights.tolist(),
            "shift": self.shift,
            "dimension": self.dimension,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Coreset":
        """Rebuild a coreset from a :meth:`to_state` snapshot."""
        dimension = int(state.get("dimension", 0))
        points = np.asarray(state["points"], dtype=float)
        if points.size == 0:
            points = points.reshape(0, dimension)
        return cls(
            points,
            np.asarray(state["weights"], dtype=float),
            float(state.get("shift", 0.0)),
        )

    def cost(self, centers: np.ndarray) -> float:
        """Coreset k-means cost (Eq. 4) for a candidate center set."""
        return weighted_kmeans_cost(self.points, centers, self.weights, self.shift)

    def transform(self, reducer) -> "Coreset":
        """Apply a DR map to the coreset points, keeping weights and Δ.

        This is the ``S' <- π1(S)`` step of Algorithm 2 / Algorithm 3.
        """
        return Coreset(reducer.transform(self.points), self.weights.copy(), self.shift)

    def quantize(self, quantizer) -> "Coreset":
        """Quantize the coreset points, keeping weights and Δ (Section 6.2)."""
        return Coreset(quantizer.quantize(self.points), self.weights.copy(), self.shift)

    def merged_with(self, other: "Coreset") -> "Coreset":
        """Union of two coresets (used by the server in the distributed
        setting to merge per-source coresets)."""
        if self.dimension != other.dimension:
            raise ValueError(
                f"cannot merge coresets of dimension {self.dimension} and {other.dimension}"
            )
        return Coreset(
            np.vstack([self.points, other.points]),
            np.concatenate([self.weights, other.weights]),
            self.shift + other.shift,
        )

    def scalars_to_transmit(self, include_weights: bool = True) -> int:
        """Communication cost of sending this coreset, in scalars.

        Each point contributes its ``dimension`` coordinates; each weight is
        one scalar; Δ is one scalar.
        """
        scalars = self.size * self.dimension
        if include_weights:
            scalars += self.size
        return scalars + 1  # the Δ term

    def empirical_distortion(
        self,
        original_points: np.ndarray,
        centers: np.ndarray,
        original_weights: Optional[np.ndarray] = None,
    ) -> float:
        """Relative error of the coreset cost vs. the true cost for one X.

        Diagnostic used in tests: for an ε-coreset this should be ≤ ε for any
        candidate center set (up to the sampling failure probability).
        """
        true_cost = weighted_kmeans_cost(original_points, centers, original_weights)
        approx_cost = self.cost(centers)
        if true_cost <= 0:
            return 0.0 if approx_cost <= self.shift + 1e-12 else float("inf")
        return float(abs(approx_cost - true_cost) / true_cost)


def merge_coresets(coresets) -> Coreset:
    """Merge an iterable of coresets into one (distributed-setting helper)."""
    coresets = list(coresets)
    if not coresets:
        raise ValueError("cannot merge an empty collection of coresets")
    merged = coresets[0]
    for nxt in coresets[1:]:
        merged = merged.merged_with(nxt)
    return merged
