"""Tests for repro.kmeans.bicriteria."""

import numpy as np
import pytest

from repro.kmeans.bicriteria import BicriteriaResult, bicriteria_approximation
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans


class TestBicriteriaApproximation:
    def test_returns_result_with_centers(self, blob_points):
        result = bicriteria_approximation(blob_points, 4, seed=0)
        assert isinstance(result, BicriteriaResult)
        assert result.centers.shape[1] == blob_points.shape[1]
        assert result.size >= 1

    def test_cost_matches_centers(self, blob_points):
        result = bicriteria_approximation(blob_points, 3, seed=1)
        assert result.cost == pytest.approx(kmeans_cost(blob_points, result.centers), rel=1e-9)

    def test_constant_factor_vs_reference(self, blobs):
        points, _, _ = blobs
        reference = solve_reference_kmeans(points, 4, n_init=5, seed=0)
        result = bicriteria_approximation(points, 4, seed=2)
        # The bicriteria solution uses more than k centers, so it should be
        # within a modest constant of the (near-)optimal k-means cost.
        assert result.cost <= 20.0 * max(reference.cost, 1e-12)

    def test_lower_bound_below_reference_cost(self, blobs):
        points, _, _ = blobs
        reference = solve_reference_kmeans(points, 4, n_init=5, seed=0)
        result = bicriteria_approximation(points, 4, seed=3)
        assert result.optimal_cost_lower_bound() <= reference.cost + 1e-9

    def test_labels_cover_all_points(self, blob_points):
        result = bicriteria_approximation(blob_points, 2, seed=4)
        assert result.labels.shape == (blob_points.shape[0],)
        assert result.labels.max() < result.size

    def test_deterministic_given_seed(self, blob_points):
        a = bicriteria_approximation(blob_points, 3, seed=9)
        b = bicriteria_approximation(blob_points, 3, seed=9)
        assert np.allclose(a.centers, b.centers)

    def test_weighted_input(self, blob_points):
        weights = np.linspace(0.5, 2.0, blob_points.shape[0])
        result = bicriteria_approximation(blob_points, 3, weights=weights, seed=5)
        assert result.size >= 3 or result.cost == pytest.approx(0.0)

    def test_degenerate_identical_points(self):
        points = np.tile(np.array([[2.0, 2.0]]), (30, 1))
        result = bicriteria_approximation(points, 3, seed=0)
        assert result.cost == pytest.approx(0.0, abs=1e-12)

    def test_explicit_rounds_respected(self, blob_points):
        result = bicriteria_approximation(blob_points, 2, rounds=2, seed=6)
        assert result.rounds == 2

    def test_invalid_parameters(self, blob_points):
        with pytest.raises(ValueError):
            bicriteria_approximation(blob_points, 0, seed=0)
        with pytest.raises(ValueError):
            bicriteria_approximation(blob_points, 2, rounds=0, seed=0)
