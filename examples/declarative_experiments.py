"""Declarative experiments: typed specs, sweep grids, and the result store.

Instead of wiring pipelines and Monte-Carlo loops by hand, describe the
experiment as data — a frozen, serializable spec — and let the API execute
it.  Typos fail at construction (``jl_dim=20`` is a TypeError, not a
silently-wrong experiment), specs round-trip through TOML/JSON files, and
sweeps expand into paired cells persisted to a JSONL result store.

Run with:  python examples/declarative_experiments.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import (
    DataSpec,
    ExperimentSpec,
    PipelineConfig,
    NetworkSpec,
    ResultStore,
    SweepSpec,
    dump_spec,
    load_spec,
    run_experiment,
    run_sweep,
)


def main() -> None:
    # One cell of the paper's grid, as a typed spec.  Every knob is
    # validated against the algorithm's kind at construction.
    spec = ExperimentSpec(
        pipeline=PipelineConfig(
            algorithm="jl-fss", k=2, coreset_size=120, jl_dimension=16
        ),
        data=DataSpec(name="mnist", n=800, d=96),
        runs=3,
        seed=0,
    )

    # Specs are files: write, reload, get the same object back.
    with tempfile.TemporaryDirectory() as tmp:
        path = dump_spec(spec, Path(tmp) / "experiment.toml")
        assert load_spec(path) == spec
        print(f"spec round-trips through {path.name}")

        outcome = run_experiment(spec)
        summary = outcome.summary
        print(f"{spec.pipeline.algorithm}: "
              f"cost {summary.mean_normalized_cost:.4f}, "
              f"comm {summary.mean_normalized_communication:.6f} "
              f"({summary.runs} paired runs, seeds {outcome.run_seeds})")

        # A paper-style sweep: quantizer precision x network condition.
        # Cells share Monte-Carlo seeds and the reference solution, so the
        # comparison below is paired exactly like the paper's figures.
        sweep = SweepSpec(base=spec, axes={
            "quantize_bits": [6, 10, 14],
            "net": ["ideal", "lossy"],
        })
        store = ResultStore(Path(tmp) / "results" / "sweep.jsonl")
        run_sweep(sweep, store=store)

        print(f"\n{len(store)} persisted cells:")
        print(store.compare())

        # The store is queryable after the fact.
        lossy = store.filter(preset="lossy")
        worst = max(
            lossy, key=lambda r: r.summary["mean_normalized_communication"]
        )
        print(f"\nmost expensive lossy cell: {worst.cell_id} "
              f"({worst.summary['mean_normalized_communication']:.6f} of raw)")


if __name__ == "__main__":
    main()
