"""End-to-end integration tests exercising the public API the way the
examples and benchmarks do: dataset -> pipelines -> evaluation, in both the
single-source and multi-source setting, with and without quantization."""

import numpy as np
import pytest

import repro
from repro.metrics import ExperimentRunner


@pytest.fixture(scope="module")
def mnist_like_small():
    points, spec = repro.make_mnist_like(n=1200, d=196, n_prototypes=4, seed=0)
    return points, spec


@pytest.fixture(scope="module")
def neurips_like_small():
    points, spec = repro.make_neurips_like(n=400, d=300, n_topics=6, seed=0)
    return points, spec


class TestSingleSourceEndToEnd:
    def test_paper_claim_summary_beats_raw_communication(self, mnist_like_small):
        """Headline claim (i): DR+CR cuts communication by a large factor
        with only a moderate increase in k-means cost."""
        points, _ = mnist_like_small
        n, d = points.shape
        context = repro.EvaluationContext.build(points, k=2, n_init=5, seed=0)

        nr = repro.evaluate_report(
            repro.NoReductionPipeline(k=2, seed=1).run(points), context
        )
        alg3 = repro.evaluate_report(
            repro.JLFSSJLPipeline(
                k=2, seed=1, coreset_size=200, jl_dimension=80
            ).run(points),
            context,
        )
        assert nr.normalized_communication == pytest.approx(1.0)
        assert alg3.normalized_communication < 0.1
        assert alg3.normalized_cost < nr.normalized_cost * 1.5

    def test_all_single_source_algorithms_comparable_quality(self, mnist_like_small):
        points, _ = mnist_like_small
        context = repro.EvaluationContext.build(points, k=2, n_init=5, seed=0)
        costs = {}
        for cls in (repro.FSSPipeline, repro.JLFSSPipeline, repro.FSSJLPipeline,
                    repro.JLFSSJLPipeline):
            report = cls(k=2, seed=3, coreset_size=200).run(points)
            costs[cls.__name__] = repro.evaluate_report(report, context).normalized_cost
        assert all(c < 2.0 for c in costs.values()), costs

    def test_quantization_reduces_bits_without_hurting_quality(self, neurips_like_small):
        """Headline claim (iii): joint DR/CR/QT reduces communication further
        without compromising solution quality."""
        points, _ = neurips_like_small
        context = repro.EvaluationContext.build(points, k=2, n_init=5, seed=0)
        plain = repro.JLFSSPipeline(k=2, seed=4, coreset_size=150).run(points)
        quantized = repro.JLFSSPipeline(
            k=2, seed=4, coreset_size=150, quantizer=repro.RoundingQuantizer(10)
        ).run(points)
        plain_eval = repro.evaluate_report(plain, context)
        quant_eval = repro.evaluate_report(quantized, context)
        assert quant_eval.communication_bits < plain_eval.communication_bits
        assert quant_eval.normalized_cost <= plain_eval.normalized_cost * 1.25


class TestMultiSourceEndToEnd:
    def test_jl_bklw_vs_bklw(self, neurips_like_small):
        """Headline claim (ii)/Fig. 2: Algorithm 4 matches BKLW's quality at a
        lower communication cost for high-dimensional data."""
        points, _ = neurips_like_small
        context = repro.EvaluationContext.build(points, k=2, n_init=5, seed=0)
        kwargs = dict(k=2, seed=5, total_samples=120, pca_rank=10)
        bklw = repro.BKLWPipeline(**kwargs).run_on_dataset(points, 5, partition_seed=9)
        alg4 = repro.JLBKLWPipeline(jl_dimension=150, **kwargs).run_on_dataset(
            points, 5, partition_seed=9
        )
        bklw_eval = repro.evaluate_report(bklw, context)
        alg4_eval = repro.evaluate_report(alg4, context)
        assert alg4_eval.communication_scalars < bklw_eval.communication_scalars
        assert alg4_eval.normalized_cost <= bklw_eval.normalized_cost * 1.5

    def test_experiment_runner_full_cycle(self, mnist_like_small):
        points, _ = mnist_like_small
        runner = ExperimentRunner(points, k=2, monte_carlo_runs=2, seed=0, reference_n_init=3)
        single = runner.run_single_source({
            "FSS": lambda s: repro.FSSPipeline(k=2, seed=s, coreset_size=120),
            "JL+FSS": lambda s: repro.JLFSSPipeline(k=2, seed=s, coreset_size=120),
        })
        multi = runner.run_multi_source({
            "BKLW": lambda s: repro.BKLWPipeline(k=2, seed=s, total_samples=80, pca_rank=8),
        }, num_sources=4)
        summary = single.summary()
        assert set(summary) == {"FSS", "JL+FSS"}
        assert all(s.runs == 2 for s in summary.values())
        assert multi.summary()["BKLW"].mean_normalized_cost < 2.5


class TestConfigurationIntegration:
    def test_configured_quantizer_respects_error_bound_empirically(self, mnist_like_small):
        """Section 6.3: pick the cheapest configuration for a given error
        budget, then verify the empirical error stays within (a generous
        multiple of) that budget."""
        points, _ = mnist_like_small
        n, d = points.shape
        lower_bound = repro.configure_joint_reduction.__module__  # silence linters
        E = max(1e-9, repro.EvaluationContext.build(points, k=2, n_init=3, seed=0).reference_cost / 20)
        max_norm = float(np.max(np.linalg.norm(points, axis=1)))
        diameter = 2.0 * max_norm
        config = repro.configure_joint_reduction(
            n=n, d=d, k=2, error_bound=2.0,
            optimal_cost_lower_bound=E, max_norm=max_norm, diameter=diameter,
            use_paper_constants=False, coreset_cardinality=200, coreset_dimension=40,
        )
        context = repro.EvaluationContext.build(points, k=2, n_init=5, seed=0)
        pipeline = repro.JLFSSJLPipeline(
            k=2, seed=6, coreset_size=200,
            quantizer=repro.RoundingQuantizer(config.significant_bits),
        )
        evaluation = repro.evaluate_report(pipeline.run(points), context)
        # The theoretical bound is loose; empirically the configured pipeline
        # should stay well inside a generous multiple of the budget.
        assert evaluation.normalized_cost <= 2.0 * 1.5
