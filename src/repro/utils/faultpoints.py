"""Named process-level fault-injection points (the chaos harness's knife).

A *faultpoint* is a named place in the execution path where a crash is
plausible and recovery must be proven: the middle of a result-store append,
between a stage-cache temp-file write and its atomic rename, just before a
sweep-journal entry lands, inside a streaming fold.  Production code calls
:func:`reach` at each point; when the point is *disarmed* — the default,
and the only state ordinary runs ever see — ``reach`` is a single dict
lookup on an empty dict and returns immediately.

Arming
------
Programmatic (in-process tests)::

    with faultpoints.armed("store.append.torn"):
        store.append(record)          # raises FaultInjected mid-write

Environment (subprocess / CLI kill tests)::

    REPRO_FAULTPOINT="store.append.torn:exit" repro sweep sweep.toml
    REPRO_FAULTPOINT="sweep.journal.done:exit:3"   # die on the 3rd hit

Actions:

* ``raise`` — raise :class:`FaultInjected` (an in-process simulated crash:
  the surrounding code must leave on-disk state exactly as a kill would,
  because the exception unwinds without any cleanup of half-written data).
* ``exit`` — ``os._exit(EXIT_CODE)``: a hard process death with no atexit
  handlers, no buffer flushing, no lock release.  The real thing.

Every name must be pre-declared in :data:`FAULTPOINTS` — reaching or arming
an undeclared name raises, so the crash-injection CI matrix enumerating
:func:`registered` is guaranteed to cover every point that exists.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: Exit status of an ``exit``-action faultpoint (distinctive, so kill tests
#: can tell an injected crash from an ordinary failure).
EXIT_CODE = 70

#: Environment variable consulted once at import: ``name[:action[:at]]``.
ENV_VAR = "REPRO_FAULTPOINT"

#: Every declared faultpoint: name -> where it lives / what a crash there
#: leaves behind.  The crash-injection matrix iterates this registry.
FAULTPOINTS: Dict[str, str] = {
    "store.append": (
        "ResultStore.append, before any byte of the record is written"
    ),
    "store.append.torn": (
        "ResultStore.append, after a flushed+fsynced partial line — the "
        "torn-trailing-line crash signature"
    ),
    "sweep.journal.start": (
        "SweepJournal.cell_started, before the start entry is written"
    ),
    "sweep.journal.done": (
        "SweepJournal.cell_committed, after the cell's record reached the "
        "store but before the done entry lands — the duplicate-record trap"
    ),
    "cache.store": (
        "StageCache.store, before the temp file is written"
    ),
    "cache.store.tmp": (
        "StageCache.store, after the temp file is written but before the "
        "atomic rename — leaves a stale .tmp-*.npz behind"
    ),
    "streaming.fold": (
        "StreamingServer.fold, before the update is applied"
    ),
    "serve.fold.ack": (
        "ServeDaemon fold handler, after the update is applied and the "
        "snapshot persisted but before the ack line is written — the "
        "at-least-once retry trap (the client must resend, the server must "
        "answer DUPLICATE)"
    ),
    "serve.snapshot": (
        "ServeDaemon.write_snapshot, after the temp file is written but "
        "before the atomic rename — leaves a stale .tmp snapshot behind"
    ),
}

#: The subset of faultpoints a `repro sweep` run can reach (the CI
#: crash-injection matrix kills one sweep per entry and proves `--resume`
#: recovery for each).
SWEEP_FAULTPOINTS: Tuple[str, ...] = (
    "store.append",
    "store.append.torn",
    "sweep.journal.start",
    "sweep.journal.done",
    "cache.store",
    "cache.store.tmp",
)


class FaultInjected(RuntimeError):
    """Raised by an armed ``raise``-action faultpoint.

    Deliberately *not* an ``Exception`` subclass the sweep failure-capture
    treats as a cell bug: the sweep runner re-raises it unconditionally,
    because it simulates a process crash, not a failing experiment.
    """


@dataclass
class _Arm:
    action: str
    at: int = 1          # fire on the Nth reach (1 = first)
    hits: int = 0        # reaches seen so far


#: name -> live arm.  Empty in ordinary runs — the fast path in
#: :func:`reach` is one truthiness check on this dict.
_ARMED: Dict[str, _Arm] = {}


def _check_name(name: str) -> str:
    if name not in FAULTPOINTS:
        raise KeyError(
            f"unknown faultpoint {name!r}; declared points: "
            f"{', '.join(sorted(FAULTPOINTS))}"
        )
    return name


def registered() -> Tuple[str, ...]:
    """Every declared faultpoint name (stable order)."""
    return tuple(FAULTPOINTS)


def arm(name: str, action: str = "raise", at: int = 1) -> None:
    """Arm ``name`` to fire on its ``at``-th reach with ``action``."""
    _check_name(name)
    if action not in ("raise", "exit"):
        raise ValueError(f"action must be 'raise' or 'exit', got {action!r}")
    if at < 1:
        raise ValueError(f"at must be >= 1, got {at}")
    _ARMED[name] = _Arm(action=action, at=int(at))


def disarm(name: Optional[str] = None) -> None:
    """Disarm one faultpoint, or every faultpoint when ``name`` is None."""
    if name is None:
        _ARMED.clear()
    else:
        _ARMED.pop(_check_name(name), None)


def is_armed(name: str) -> bool:
    """Whether ``name`` currently has a live arm (any hit count)."""
    return _check_name(name) in _ARMED


@contextmanager
def armed(name: str, action: str = "raise", at: int = 1) -> Iterator[None]:
    """Context manager form of :func:`arm` that always disarms on exit."""
    arm(name, action=action, at=at)
    try:
        yield
    finally:
        disarm(name)


def reach(name: str) -> None:
    """Declare that execution reached the faultpoint ``name``.

    Zero-cost when nothing is armed; otherwise counts the hit and fires
    the armed action once the configured hit is reached (the arm is
    consumed, so recovery code re-running the same path does not re-fire).
    """
    if not _ARMED:
        return
    arm_state = _ARMED.get(name)
    if arm_state is None:
        _check_name(name)  # typo guard: misnamed reach points never ship
        return
    arm_state.hits += 1
    if arm_state.hits < arm_state.at:
        return
    del _ARMED[name]
    if arm_state.action == "exit":
        os._exit(EXIT_CODE)
    raise FaultInjected(
        f"injected fault at {name!r} (hit {arm_state.hits})"
    )


def parse_env(raw: str) -> Tuple[str, str, int]:
    """Parse the ``name[:action[:at]]`` grammar of :data:`ENV_VAR`.

    The action defaults to ``exit`` — the variable exists for subprocess
    kill tests, where a hard death is the point.  Unknown names raise
    (:func:`_check_name`), malformed ``at`` raises ``ValueError``.
    """
    parts = raw.strip().split(":")
    name = _check_name(parts[0])
    action = parts[1] if len(parts) > 1 and parts[1] else "exit"
    if action not in ("raise", "exit"):
        raise ValueError(f"action must be 'raise' or 'exit', got {action!r}")
    try:
        at = int(parts[2]) if len(parts) > 2 and parts[2] else 1
    except ValueError:
        raise ValueError(
            f"at must be an integer, got {parts[2]!r} in {raw!r}"
        ) from None
    return name, action, at


def _load_from_env() -> None:
    """Arm from ``REPRO_FAULTPOINT=name[:action[:at]]`` (subprocess tests)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return
    name, action, at = parse_env(raw)
    arm(name, action=action, at=at)


_load_from_env()


__all__ = [
    "ENV_VAR",
    "EXIT_CODE",
    "FAULTPOINTS",
    "SWEEP_FAULTPOINTS",
    "FaultInjected",
    "arm",
    "armed",
    "disarm",
    "is_armed",
    "parse_env",
    "reach",
    "registered",
]
