"""Execute declarative specs through the existing experiment harness.

``run_experiment`` resolves an :class:`~repro.api.specs.ExperimentSpec`
into exactly the call the imperative API would make —
:meth:`repro.metrics.experiment.ExperimentRunner.run_registered` with the
spec's overrides — so results are bit-identical to hand-written harness
code (the golden-spec test pins this).  ``run_sweep`` expands a
:class:`~repro.api.specs.SweepSpec` into its cell grid and executes every
cell with *paired* Monte-Carlo seeds and one shared reference solution per
``(dataset, k)`` group, optionally fanning cells out over a thread pool
and appending each cell's :class:`~repro.api.store.RunRecord` to a
:class:`~repro.api.store.ResultStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.specs import ExperimentSpec, SweepCell, SweepSpec
from repro.api.store import ResultStore, RunRecord, provenance
from repro.metrics.evaluation import EvaluationContext, PipelineEvaluation
from repro.metrics.experiment import (
    AlgorithmSummary,
    ExperimentResult,
    ExperimentRunner,
)
from repro.utils.parallel import parallel_map
from repro.utils.random import as_generator, derive_seed


@dataclass
class ExperimentOutcome:
    """Everything one executed cell produced."""

    spec: ExperimentSpec
    label: str
    result: ExperimentResult
    summary: AlgorithmSummary
    run_seeds: Tuple[int, ...]
    dataset: Any = None  # the DatasetSpec describing the generated matrix
    cell_id: Optional[str] = None

    @property
    def evaluations(self) -> List[PipelineEvaluation]:
        return list(self.result.evaluations[self.label])

    def to_record(self, stamp: Optional[Dict[str, Any]] = None) -> RunRecord:
        """Convert to a persistable :class:`RunRecord` (``stamp`` lets a
        sweep share one provenance dict across cells)."""
        return RunRecord(
            algorithm=self.label,
            spec=self.spec.to_dict(),
            summary=self.summary.__dict__.copy(),
            evaluations=tuple(e.to_dict() for e in self.evaluations),
            run_seeds=self.run_seeds,
            cell_id=self.cell_id,
            provenance=provenance() if stamp is None else stamp,
        )


def _reference_seed(master_seed: int) -> int:
    """The reference-solver seed an ExperimentRunner would derive first
    from this master seed (kept in lockstep with its constructor)."""
    return derive_seed(as_generator(master_seed))


def run_experiment(
    spec: ExperimentSpec,
    *,
    points: Optional[np.ndarray] = None,
    dataset: Any = None,
    context: Optional[EvaluationContext] = None,
    reference_n_init: int = 10,
    cell_id: Optional[str] = None,
) -> ExperimentOutcome:
    """Run one experiment spec end-to-end.

    ``points``/``dataset``/``context`` let the sweep runner share generated
    data and reference solutions across cells; results are identical with
    or without them because the runner's seed stream is independent of
    whether the reference solve is cached.
    """
    if points is None:
        points, dataset = spec.data.load(spec.seed)
    runner = ExperimentRunner(
        points,
        k=spec.pipeline.k,
        monte_carlo_runs=spec.runs,
        seed=spec.seed,
        reference_n_init=reference_n_init,
        context=context,
    )
    label = spec.pipeline.algorithm
    result = runner.run_registered(
        [label],
        num_sources=spec.num_sources,
        strategy=spec.strategy,
        **spec.overrides(),
    )
    return ExperimentOutcome(
        spec=spec,
        label=label,
        result=result,
        summary=result.summary()[label],
        run_seeds=tuple(runner.run_seeds),
        dataset=dataset,
        cell_id=cell_id,
    )


def run_sweep(
    sweep: SweepSpec,
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    reference_n_init: int = 10,
) -> List[ExperimentOutcome]:
    """Execute every cell of a sweep grid.

    Datasets and reference solutions are computed once per unique
    ``(dataset, k, seed)`` group and shared across the group's cells, so
    cells differing only in tuning knobs are judged against identical
    reference centers — the paper's paired-comparison methodology.  With
    ``jobs > 1`` cells run on a thread pool (cells are independent; the
    heavy work is GIL-releasing BLAS).  When ``store`` is given, every
    cell's record is appended in grid order after execution.
    """
    cells = sweep.cells()

    # Generate each unique dataset once, and solve each unique reference
    # problem once, serially — the parallel phase then only reads them.
    points_cache: Dict[Tuple, Tuple[np.ndarray, Any]] = {}
    context_cache: Dict[Tuple, EvaluationContext] = {}
    for cell in cells:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        if data_key not in points_cache:
            points_cache[data_key] = spec.data.load(spec.seed)
        context_key = data_key + (spec.pipeline.k, spec.seed, reference_n_init)
        if context_key not in context_cache:
            points, _ = points_cache[data_key]
            context_cache[context_key] = EvaluationContext.build(
                points,
                spec.pipeline.k,
                n_init=reference_n_init,
                seed=_reference_seed(spec.seed),
            )

    def execute(cell: SweepCell) -> ExperimentOutcome:
        spec = cell.spec
        data_key = spec.data.cache_key(spec.seed)
        points, dataset = points_cache[data_key]
        context = context_cache[data_key + (spec.pipeline.k, spec.seed, reference_n_init)]
        return run_experiment(
            spec,
            points=points,
            dataset=dataset,
            context=context,
            reference_n_init=reference_n_init,
            cell_id=cell.cell_id,
        )

    outcomes = parallel_map(execute, cells, jobs=jobs)
    if store is not None:
        stamp = provenance()
        for outcome in outcomes:
            store.append(outcome.to_record(stamp))
    return outcomes


__all__ = ["ExperimentOutcome", "run_experiment", "run_sweep"]
