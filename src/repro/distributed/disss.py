"""disSS — distributed sensitivity sampling (paper ref. [4]).

Protocol (Section 5.1):

1. Every data source ``i`` computes a bicriteria approximation ``X_i`` of its
   local shard and reports the scalar ``cost(P_i, X_i)``.
2. The server splits the global sample budget ``s`` across sources
   proportionally to the reported costs and sends each source its share
   ``s_i`` (one scalar downlink each — the "negligible extra round" of the
   paper's footnote 1).
3. Every source draws ``s_i`` points with probability proportional to
   ``cost({p}, X_i)`` and transmits ``S_i ∪ X_i`` with weights matching the
   number of points per cluster.
4. The union ``(∪_i (S_i ∪ X_i), 0, w)`` is an ε-coreset of ``∪_i P_i`` with
   probability ≥ 1 − δ (Theorem 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cr.coreset import Coreset
from repro.distributed.conditions import DeliveryError
from repro.distributed.node import DataSourceNode
from repro.distributed.server import EdgeServer
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_fraction, check_positive_int


def disss_sample_size(
    k: int,
    d: int,
    m: int,
    epsilon: float,
    delta: float = 0.1,
    constant: float = 1.0,
) -> int:
    """Theoretical budget ``O(ε⁻⁴(kd + log 1/δ) + mk log(mk/δ))`` (Thm 5.2).

    As with the centralized coreset sizes, the constant is exposed because
    the paper's experiments tune summary sizes to reach comparable empirical
    error at laptop scale.
    """
    k = check_positive_int(k, "k")
    d = check_positive_int(d, "d")
    m = check_positive_int(m, "m")
    epsilon = check_fraction(epsilon, "epsilon")
    delta = check_fraction(delta, "delta")
    size = constant * (
        (k * d + math.log(1.0 / delta)) / epsilon**4
        + m * k * math.log(m * k / delta)
    )
    return max(m * (k + 1), int(math.ceil(size)))


@dataclass
class DisSSResult:
    """Outcome of the disSS protocol.

    Attributes
    ----------
    coreset:
        The merged coreset ``(∪_i (S_i ∪ X_i), 0, w)`` held at the server.
    per_source_sizes:
        Sample budget allocated to each source.
    transmitted_scalars:
        Uplink scalars spent by the protocol.
    """

    coreset: Coreset
    per_source_sizes: np.ndarray
    transmitted_scalars: int


class DistributedSensitivitySampler:
    """disSS protocol driver.

    Parameters
    ----------
    k:
        Number of clusters.
    total_samples:
        Global sample budget ``s`` (use :func:`disss_sample_size` or tune).
    quantizer:
        Optional rounding quantizer applied to each source's outgoing summary
        (the +QT variants of Section 6).
    bicriteria_rounds, bicriteria_batch_factor:
        Size controls of the per-source bicriteria solution ``X_i`` (which is
        transmitted along with the samples); the defaults keep ``|X_i|`` at a
        small multiple of ``k``.
    jobs:
        Worker threads for the per-source compute steps (bicriteria and
        sampling); transmissions stay serial.  Every source draws from its
        own pre-derived generator, so results are identical for any value.
    """

    def __init__(
        self,
        k: int,
        total_samples: int,
        quantizer: Optional[RoundingQuantizer] = None,
        bicriteria_rounds: int = 4,
        bicriteria_batch_factor: int = 3,
        jobs: Optional[int] = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.total_samples = check_positive_int(total_samples, "total_samples")
        self.quantizer = quantizer
        self.bicriteria_rounds = check_positive_int(bicriteria_rounds, "bicriteria_rounds")
        self.bicriteria_batch_factor = check_positive_int(
            bicriteria_batch_factor, "bicriteria_batch_factor"
        )
        self.jobs = jobs

    def run(self, sources: Sequence[DataSourceNode], server: EdgeServer) -> DisSSResult:
        """Execute the protocol and leave the merged coreset at the server.

        Fault tolerance: a source that is down or exhausts its retry budget
        at any of the three communication phases is excluded from the rest
        of the round — the sample budget is re-based on the costs that
        arrived, and the merged coreset unions only the sample sets that
        reached the server.  At least one source must complete.
        """
        if not sources:
            raise ValueError("disSS requires at least one data source")
        network = server.network
        active = network.participating(sources)
        if not active:
            raise RuntimeError("disSS: every data source is down")

        before = network.uplink_scalars()

        # Step 1: local bicriteria solutions (parallel compute — each node
        # draws from its own generator); costs reported serially in source
        # order so the transmission log is schedule-independent.
        bicriterias = parallel_map(
            lambda source: source.local_bicriteria(
                self.k,
                rounds=self.bicriteria_rounds,
                batch_factor=self.bicriteria_batch_factor,
            ),
            active,
            self.jobs,
        )
        local_costs: List[float] = []
        reporters: List[tuple] = []
        for source, bicriteria in zip(active, bicriterias):
            try:
                source.send_to_server(float(bicriteria.cost), tag="disss-local-cost")
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            local_costs.append(float(bicriteria.cost))
            reporters.append((source, bicriteria))
        network.advance_round()
        if not reporters:
            raise RuntimeError("disSS: no local cost report reached the server")

        # Step 2: allocate the sample budget proportionally to cost (over the
        # costs that arrived), and deliver each share.
        sizes = server.allocate_sample_sizes(local_costs, self.total_samples)
        samplers: List[tuple] = []
        for (source, bicriteria), size in zip(reporters, sizes):
            if network.node_is_down(source.node_id):
                network.mark_failed(source.node_id)
                continue
            try:
                server.send_to_source(source.node_id, int(size), tag="disss-sample-size")
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            samplers.append((source, bicriteria, int(size)))
        network.advance_round()
        if not samplers:
            raise RuntimeError("disSS: no source received a sample allocation")

        # Step 3: local sampling (parallel compute), then transmit samples ∪
        # bicriteria centers with weights (optionally quantized) serially.
        significant_bits = (
            self.quantizer.significant_bits if self.quantizer is not None else None
        )

        def _sample(args):
            source, bicriteria, size = args
            sampled_points, weights = source.local_sensitivity_sample(bicriteria, int(size))
            if self.quantizer is not None:
                sampled_points = source.quantize(sampled_points, self.quantizer)
            return sampled_points, weights

        samples = parallel_map(_sample, samplers, self.jobs)
        delivered_sizes: List[int] = []
        for (source, _, size), (sampled_points, weights) in zip(samplers, samples):
            try:
                source.send_to_server(
                    sampled_points, tag="disss-samples", significant_bits=significant_bits
                )
                source.send_to_server(weights, tag="disss-weights")
            except DeliveryError:
                network.mark_failed(source.node_id)
                continue
            server.receive_coreset(Coreset(sampled_points, weights, shift=0.0))
            delivered_sizes.append(size)
        network.advance_round()

        merged = server.merged_coreset()
        transmitted = network.uplink_scalars() - before
        return DisSSResult(
            coreset=merged,
            per_source_sizes=np.asarray(delivered_sizes, dtype=int),
            transmitted_scalars=transmitted,
        )
