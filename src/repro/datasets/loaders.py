"""Dataset normalization and the benchmark dataset registry.

The paper normalizes both datasets "to [-1, 1] with zero mean" (Section 7.1).
:func:`normalize_dataset` implements that: subtract the global column means,
then scale by the maximum absolute value so every entry lies in [-1, 1].

:func:`load_benchmark_dataset` is the single entry point used by examples and
benchmarks; it maps the names ``"mnist"`` and ``"neurips"`` to the synthetic
substitutes (see DESIGN.md) at a configurable scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.random import SeedLike
from repro.utils.validation import check_matrix


def normalize_dataset(points: np.ndarray) -> np.ndarray:
    """Zero-mean, [-1, 1] normalization used by the paper's experiments.

    Columns with zero variance are left at zero after centering.
    """
    points = check_matrix(points, "points").copy()
    points -= points.mean(axis=0, keepdims=True)
    max_abs = np.max(np.abs(points))
    if max_abs > 0:
        points /= max_abs
    return points


def load_benchmark_dataset(
    name: str,
    n: Optional[int] = None,
    d: Optional[int] = None,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, "DatasetSpec"]:
    """Load one of the two benchmark datasets by name.

    Parameters
    ----------
    name:
        ``"mnist"`` or ``"neurips"`` (case-insensitive).  The synthetic
        substitutes are generated on the fly; sizes default to laptop-scale
        values and can be overridden with ``n`` and ``d``.
    n, d:
        Optional size overrides (pass the paper's full 60,000 × 784 /
        11,463 × 5,812 to run at paper scale).
    seed:
        Generation seed, for reproducibility across benchmark runs.
    """
    from repro.datasets.synthetic import make_mnist_like, make_neurips_like

    key = name.strip().lower()
    if key in ("mnist", "mnist-like"):
        return make_mnist_like(n=n or 6000, d=d or 784, seed=seed)
    if key in ("neurips", "nips", "neurips-like"):
        return make_neurips_like(n=n or 4000, d=d or 2000, seed=seed)
    raise ValueError(
        f"unknown dataset {name!r}; available: 'mnist', 'neurips'"
    )
