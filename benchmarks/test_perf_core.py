"""Perf micro/macro benchmarks of the numerical core → BENCH_perf.json.

Times the hot primitives (fused assignment/cost, cluster means, k-means++,
D²-sampling, bicriteria) and the end-to-end ``fss`` / ``jl-fss`` registered
pipelines, and persists the rows to ``BENCH_perf.json`` so CI uploads a
machine-readable perf trajectory alongside the streaming benches.  The
committed copy of the file additionally carries the ``baseline:*`` /
``post:*`` rows measured on the 100k × 50 acceptance workload (see
``benchmarks/perf_baseline.py``).

Scale with ``REPRO_BENCH_SCALE``; the default keeps the whole module under a
minute on a laptop.
"""

import time

import numpy as np
import pytest

from bench_helpers import SCALE, record_perf, run_once, time_best_of
from repro.core import registry
from repro.datasets import make_gaussian_mixture
from repro.kmeans.bicriteria import bicriteria_approximation
from repro.kmeans.cost import assign_and_cost, assign_to_centers, cluster_means
from repro.kmeans.lloyd import WeightedKMeans
from repro.kmeans.seeding import d2_sampling, kmeans_plus_plus

N = int(40_000 * SCALE)
D = 50
K = 10


@pytest.fixture(scope="module")
def dataset():
    points, _, _ = make_gaussian_mixture(
        n=max(N, 2_000), d=D, k=K, separation=6.0, cluster_std=1.0, seed=31
    )
    return points


@pytest.fixture(scope="module")
def centers(dataset):
    rng = np.random.default_rng(0)
    return dataset[rng.choice(dataset.shape[0], size=K, replace=False)].copy()


def test_primitive_timings(benchmark, dataset, centers):
    """Record per-primitive best-of-3 timings."""
    labels, _ = assign_to_centers(dataset, centers)
    rows = {
        "primitive:fused_assign_cost": {
            "seconds": time_best_of(lambda: assign_and_cost(dataset, centers))
        },
        "primitive:assign_to_centers": {
            "seconds": time_best_of(lambda: assign_to_centers(dataset, centers))
        },
        "primitive:cluster_means": {
            "seconds": time_best_of(lambda: cluster_means(dataset, labels, K))
        },
        "primitive:kmeans_plus_plus": {
            "seconds": time_best_of(
                lambda: kmeans_plus_plus(dataset[:10_000], K, seed=1)
            )
        },
        "primitive:d2_sampling": {
            "seconds": time_best_of(
                lambda: d2_sampling(dataset, centers, 512, seed=1)
            )
        },
        "primitive:bicriteria": {
            "seconds": time_best_of(
                lambda: bicriteria_approximation(dataset[:10_000], K, seed=1),
                repeats=1,
            )
        },
        "primitive:lloyd_fit": {
            "seconds": time_best_of(
                lambda: WeightedKMeans(k=K, n_init=2, seed=3).fit(dataset[:10_000]),
                repeats=1,
            )
        },
    }
    run_once(benchmark, lambda: None)
    path = record_perf(rows)
    print(f"\nrecorded primitive timings -> {path}")
    for name, row in rows.items():
        print(f"  {name:<34} {row['seconds']:.4f}s")


@pytest.mark.parametrize("algorithm", ["fss", "jl-fss"])
def test_pipeline_wall_clock(benchmark, dataset, algorithm):
    """Record end-to-end wall-clock of the acceptance pipelines."""
    pipeline = registry.create_pipeline(
        algorithm, k=K, coreset_size=500, seed=7
    )
    start = time.perf_counter()
    report = run_once(benchmark, lambda: pipeline.run(dataset))
    wall = time.perf_counter() - start
    record_perf({
        f"pipeline:{algorithm}": {
            "wall_seconds": wall,
            "source_seconds": report.source_seconds,
            "server_seconds": report.server_seconds,
            "n": float(dataset.shape[0]),
            "d": float(dataset.shape[1]),
        }
    })
    print(f"\n{algorithm}: wall={wall:.3f}s source={report.source_seconds:.3f}s")
