"""k-means cost functions.

Implements the cost definitions used throughout the paper:

* Eq. (1): ``cost(P, X) = sum_{p in P} min_{x in X} ||p - x||^2``
* Eq. (2): partition cost — optimal within-cluster sum of squares of a
  partition, attained at the cluster means.
* Eq. (4): coreset cost — weighted cost plus the constant shift Δ
  (evaluated here through :func:`weighted_kmeans_cost`; the Δ bookkeeping
  lives in :class:`repro.cr.coreset.Coreset`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.linalg import pairwise_squared_distances, squared_norms
from repro.utils.validation import check_matrix, check_weights

# Centres are processed against points in blocks of this many rows to keep the
# intermediate distance matrix small for large datasets.
_BLOCK_ROWS = 8192


def _min_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Distance from every point to its nearest center (squared)."""
    n = points.shape[0]
    out = np.empty(n, dtype=float)
    # The centers are constant across blocks; hoist their squared norms.
    center_norms = squared_norms(centers)
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        d2 = pairwise_squared_distances(
            points[start:stop], centers, b_squared_norms=center_norms
        )
        out[start:stop] = d2.min(axis=1)
    return out


def assign_to_centers(points: np.ndarray, centers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center.

    Returns ``(labels, squared_distances)`` where ``labels[i]`` is the index
    of the nearest center of ``points[i]`` and ``squared_distances[i]`` the
    squared Euclidean distance to it.  Ties are broken toward the
    lowest-index center, matching the paper's "ties broken arbitrarily".
    """
    points = check_matrix(points, "points")
    centers = check_matrix(centers, "centers")
    n = points.shape[0]
    labels = np.empty(n, dtype=np.int64)
    dists = np.empty(n, dtype=float)
    center_norms = squared_norms(centers)
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        d2 = pairwise_squared_distances(
            points[start:stop], centers, b_squared_norms=center_norms
        )
        labels[start:stop] = d2.argmin(axis=1)
        dists[start:stop] = d2[np.arange(stop - start), labels[start:stop]]
    return labels, dists


def kmeans_cost(points: np.ndarray, centers: np.ndarray) -> float:
    """Unweighted k-means cost of ``centers`` on ``points`` (Eq. 1)."""
    points = check_matrix(points, "points")
    centers = check_matrix(centers, "centers")
    return float(_min_squared_distances(points, centers).sum())


def weighted_kmeans_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: Optional[np.ndarray] = None,
    shift: float = 0.0,
) -> float:
    """Weighted k-means cost plus a constant shift (Eq. 4).

    Parameters
    ----------
    points, centers:
        ``(n, d)`` and ``(k, d)`` arrays.
    weights:
        Optional non-negative weights, one per point; ``None`` means 1.
    shift:
        The additive constant Δ carried by generalized coresets.
    """
    points = check_matrix(points, "points")
    centers = check_matrix(centers, "centers")
    weights = check_weights(weights, points.shape[0])
    d2 = _min_squared_distances(points, centers)
    return float(np.dot(weights, d2) + shift)


def cluster_means(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weighted means of each cluster; empty clusters return a zero row.

    The optimal 1-means center of a cluster is its (weighted) sample mean
    μ(P) — see Section 3.1 of the paper.
    """
    points = check_matrix(points, "points")
    weights = check_weights(weights, points.shape[0])
    d = points.shape[1]
    means = np.zeros((k, d), dtype=float)
    totals = np.zeros(k, dtype=float)
    np.add.at(totals, labels, weights)
    np.add.at(means, labels, points * weights[:, None])
    nonempty = totals > 0
    means[nonempty] /= totals[nonempty, None]
    return means


def partition_cost(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Optimal cost of a partition (Eq. 2): each cluster served by its mean."""
    points = check_matrix(points, "points")
    weights = check_weights(weights, points.shape[0])
    means = cluster_means(points, labels, k, weights)
    diffs = points - means[labels]
    return float(np.sum(weights * np.einsum("ij,ij->i", diffs, diffs)))


def partition_from_centers(points: np.ndarray, centers: np.ndarray) -> List[np.ndarray]:
    """Return the induced partition P_{P,X} as a list of index arrays."""
    labels, _ = assign_to_centers(points, centers)
    return [np.flatnonzero(labels == i) for i in range(centers.shape[0])]


def normalized_cost(
    points: np.ndarray,
    centers: np.ndarray,
    reference_centers: np.ndarray,
) -> float:
    """Normalized k-means cost ``cost(P, X) / cost(P, X*)`` used in Section 7."""
    numerator = kmeans_cost(points, centers)
    denominator = kmeans_cost(points, reference_centers)
    if denominator <= 0.0:
        # A zero reference cost means the reference centers fit P exactly;
        # any other solution either also has zero cost (ratio 1) or is
        # infinitely worse.
        return 1.0 if numerator <= 0.0 else float("inf")
    return float(numerator / denominator)


def within_cluster_sizes(labels: np.ndarray, k: int) -> np.ndarray:
    """Number of points per cluster for a label vector."""
    return np.bincount(np.asarray(labels, dtype=np.int64), minlength=k)
