"""The rounding-based quantizer Γ of Section 6.1.

For a scalar ``x = ±2^{e_x}(a_0.a_1a_2…)`` in binary floating point, the
quantizer keeps the sign, the exponent, and the first ``s`` significand bits,
rounding the remainder to nearest.  Element-wise quantization of a point
``p`` therefore satisfies ``|p_i − Γ(p_i)| ≤ 2^{e_{p_i} − s} ≤ |p_i| 2^{-s}``
so the per-point error is bounded by ``Δ_QT ≤ 2^{-s} max_p ‖p‖`` (Eq. 14).

Implementation: rather than manipulating bit patterns, we use the exact
mathematical equivalent — scale each element so its leading significant bit
sits at a fixed position, round to the nearest integer multiple of
``2^{e_x − s}``, and rescale.  ``numpy.frexp`` exposes the exponent, making
this vectorized and exact for IEEE doubles with ``s ≤ 52``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quantization.bits import (
    DOUBLE_SIGNIFICAND_BITS,
    bits_per_scalar,
    scalars_to_bits,
)
from repro.utils.validation import check_matrix, check_positive_int


class RoundingQuantizer:
    """Keep ``significant_bits`` significand bits of every element.

    Parameters
    ----------
    significant_bits:
        Number of significant bits ``s`` to retain, ``1 ≤ s ≤ 53``.  With
        ``s = 53`` the quantizer is exact for IEEE doubles (identity).
    """

    def __init__(self, significant_bits: int) -> None:
        self.significant_bits = check_positive_int(significant_bits, "significant_bits")
        if self.significant_bits > DOUBLE_SIGNIFICAND_BITS:
            raise ValueError(
                "significant_bits cannot exceed "
                f"{DOUBLE_SIGNIFICAND_BITS}, got {self.significant_bits}"
            )

    # ------------------------------------------------------------------ API
    def quantize(self, points: np.ndarray) -> np.ndarray:
        """Quantize every element of ``points`` (any shape)."""
        arr = np.asarray(points, dtype=float)
        if arr.size == 0:
            return arr.copy()
        if not np.all(np.isfinite(arr)):
            raise ValueError("cannot quantize NaN or infinite values")
        if self.significant_bits >= DOUBLE_SIGNIFICAND_BITS:
            return arr.copy()

        # frexp: x = mantissa * 2**exponent with mantissa in [0.5, 1).
        mantissa, exponent = np.frexp(arr)
        # Keeping s significant bits of the paper's representation
        # (leading bit a_0 = 1, i.e. mantissa in [1, 2)) corresponds to
        # keeping s+1 bits of the frexp mantissa in [0.5, 1); equivalently we
        # round the frexp mantissa to a multiple of 2^-(s+1).  The paper's
        # quantizer keeps bits a_0..a_s plus the rounded bit a'(s), which is
        # exactly round-to-nearest at resolution 2^{e-s} in its convention;
        # with frexp's convention the resolution is 2^{exponent-(s+1)}.
        scale = float(2 ** (self.significant_bits + 1))
        rounded = np.rint(mantissa * scale) / scale
        return np.ldexp(rounded, exponent)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.quantize(points)

    def max_error(self, points: np.ndarray) -> float:
        """Exact maximum per-point quantization error ``max_p ‖p − Γ(p)‖``."""
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[0] == 0:
            return 0.0
        diff = points - self.quantize(points)
        return float(np.max(np.linalg.norm(diff, axis=1)))

    def error_bound(self, points: np.ndarray) -> float:
        """The analytical bound ``Δ_QT ≤ 2^{-s} max_p ‖p‖`` of Eq. (14)."""
        points = check_matrix(points, "points", allow_empty=True)
        if points.shape[0] == 0:
            return 0.0
        max_norm = float(np.max(np.linalg.norm(points, axis=1)))
        return 2.0 ** (-self.significant_bits) * max_norm

    # ------------------------------------------------------------ accounting
    @property
    def bits_per_scalar(self) -> int:
        """Bits on the wire per transmitted scalar at this precision."""
        return bits_per_scalar(self.significant_bits)

    def transmission_bits(self, scalars: int) -> int:
        """Bits needed to transmit ``scalars`` quantized values."""
        return scalars_to_bits(scalars, self.significant_bits)


class IdentityQuantizer(RoundingQuantizer):
    """Full-precision 'quantizer' (s = 53): transmits doubles unchanged.

    Used as the no-QT endpoint of the precision sweep in Figures 3–6.
    """

    def __init__(self) -> None:
        super().__init__(DOUBLE_SIGNIFICAND_BITS)

    def quantize(self, points: np.ndarray) -> np.ndarray:
        arr = np.asarray(points, dtype=float)
        return arr.copy()
