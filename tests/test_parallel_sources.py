"""Parallel source execution must be invisible in every report.

The engines run per-source compute sections on a thread pool when ``jobs >
1``; randomness comes from per-source generators pre-derived from the master
seed and transmissions happen in a serial phase, so a parallel run must
produce *identical* reports — centers, communication totals, per-source
summaries, ledgers — to a sequential one.  These tests pin that
order-independence with ``jobs=1`` vs ``jobs=4``.
"""

import numpy as np
import pytest

from repro.core.distributed_pipelines import (
    BKLWPipeline,
    DistributedNoReductionPipeline,
    JLBKLWPipeline,
)
from repro.core.registry import create_pipeline
from repro.datasets import make_gaussian_mixture
from repro.distributed.partition import partition_dataset
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.parallel import parallel_map, resolve_jobs


@pytest.fixture(scope="module")
def shards():
    points, _, _ = make_gaussian_mixture(
        n=600, d=30, k=3, separation=8.0, cluster_std=1.0, seed=77
    )
    indices = partition_dataset(points, 4, seed=5)
    return [points[idx] for idx in indices]


def _reports_identical(a, b):
    np.testing.assert_array_equal(a.centers, b.centers)
    assert a.communication_scalars == b.communication_scalars
    assert a.communication_bits == b.communication_bits
    assert a.summary_cardinality == b.summary_cardinality
    assert a.summary_dimension == b.summary_dimension
    for key in a.details:
        if key.endswith("seconds"):
            continue  # timing is the one thing allowed to differ
        assert a.details[key] == b.details[key], key


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(20), jobs=4) == [
            x * x for x in range(20)
        ]

    def test_sequential_fallback(self):
        assert parallel_map(lambda x: -x, [3], jobs=8) == [-3]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2, 3], jobs=4)


@pytest.mark.parametrize(
    "pipeline_cls, kwargs",
    [
        (DistributedNoReductionPipeline, dict(k=3)),
        (DistributedNoReductionPipeline, dict(k=3, quantizer=RoundingQuantizer(8))),
        (BKLWPipeline, dict(k=3, total_samples=60, pca_rank=6)),
        (JLBKLWPipeline, dict(k=3, total_samples=60, pca_rank=6, jl_dimension=12)),
        (
            JLBKLWPipeline,
            dict(
                k=3,
                total_samples=60,
                pca_rank=6,
                jl_dimension=12,
                quantizer=RoundingQuantizer(10),
            ),
        ),
    ],
    ids=["nr", "nr-qt", "bklw", "jl-bklw", "jl-bklw-qt"],
)
class TestDistributedOrderIndependence:
    def test_jobs_1_vs_4_identical(self, shards, pipeline_cls, kwargs):
        sequential = pipeline_cls(seed=0, jobs=1, **kwargs).run(
            [s.copy() for s in shards]
        )
        parallel = pipeline_cls(seed=0, jobs=4, **kwargs).run(
            [s.copy() for s in shards]
        )
        _reports_identical(sequential, parallel)


class TestDistributedPerSourceSummaries:
    def test_disss_per_source_sizes_and_logs_identical(self, shards):
        """Per-source accounting — sample allocation, merged coreset, and the
        transmission log broken down by sender, by tag, and message by
        message — must match between sequential and parallel execution."""
        from repro.distributed.cluster import EdgeCluster
        from repro.distributed.bklw import BKLWCoreset

        results = []
        for jobs in (1, 4):
            cluster = EdgeCluster.from_shards([s.copy() for s in shards], k=3, seed=11)
            built = BKLWCoreset(
                k=3, total_samples=60, pca_rank=6, jobs=jobs
            ).build(cluster.sources, cluster.server)
            results.append((built, cluster))
        a, b = results[0][0], results[1][0]
        np.testing.assert_array_equal(a.disss.per_source_sizes, b.disss.per_source_sizes)
        np.testing.assert_array_equal(a.coreset.points, b.coreset.points)
        np.testing.assert_array_equal(a.coreset.weights, b.coreset.weights)
        log_a = results[0][1].network.log
        log_b = results[1][1].network.log
        assert log_a.scalars_by_sender() == log_b.scalars_by_sender()
        assert log_a.scalars_by_tag() == log_b.scalars_by_tag()
        assert log_a.messages == log_b.messages  # same order, same costs


class TestStreamingOrderIndependence:
    @pytest.mark.parametrize("name", ["stream-fss", "stream-jl-fss", "stream-fss-window"])
    def test_jobs_1_vs_4_identical(self, name):
        points, _, _ = make_gaussian_mixture(
            n=1200, d=16, k=3, separation=8.0, cluster_std=1.0, seed=21
        )
        indices = partition_dataset(points, 3, seed=9)
        shards = [points[idx] for idx in indices]
        reports = []
        for jobs in (1, 4):
            engine = create_pipeline(
                name,
                k=3,
                coreset_size=60,
                batch_size=128,
                query_every=2,
                seed=33,
                jobs=jobs,
            )
            reports.append(engine.run([s.copy() for s in shards]))
        a, b = reports
        _reports_identical(a, b)
        assert len(a.queries) == len(b.queries)
        for qa, qb in zip(a.queries, b.queries):
            assert qa.time == qb.time
            np.testing.assert_array_equal(qa.centers, qb.centers)
            assert qa.scalars == qb.scalars
            assert qa.bits == qb.bits
            assert qa.windowed_scalars == qb.windowed_scalars
            assert qa.windowed_bits == qb.windowed_bits
            assert qa.live_buckets == qb.live_buckets


class TestRegistryJobsKnob:
    def test_multi_source_factory_accepts_jobs(self):
        pipeline = create_pipeline("bklw", k=2, jobs=4)
        assert pipeline.jobs == 4

    def test_streaming_factory_accepts_jobs(self):
        engine = create_pipeline("stream-fss", k=2, jobs=2)
        assert engine.jobs == 2

    def test_single_source_factory_ignores_jobs(self):
        # Single-source pipelines have one source; the knob is filtered out
        # (deliberate lenient filtering; strict=True would raise).
        pipeline = create_pipeline("fss", k=2, jobs=4, strict=False)
        assert pipeline is not None
