"""Snapshot/restore of streaming state: rng handshake, coreset trees,
sources, and the server — mid-stream restoration must be bit-identical."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cr.coreset import Coreset
from repro.distributed.network import SimulatedNetwork
from repro.stages.base import StageContext
from repro.stages.cr import UniformStage
from repro.streaming.server import StreamingServer
from repro.streaming.source import SourceUpdate, StreamingSource
from repro.streaming.tree import CoresetTree
from repro.utils import faultpoints
from repro.utils.random import as_generator, generator_state, restore_generator


def roundtrip(snapshot: dict) -> dict:
    """Force the snapshot through its on-disk representation."""
    return json.loads(json.dumps(snapshot, sort_keys=True))


def make_coreset(rng, n=12, d=4) -> Coreset:
    return Coreset(rng.random((n, d)), rng.random(n) + 0.5, float(rng.random()))


class TestGeneratorState:
    @pytest.mark.parametrize("bitgen", ["PCG64", "MT19937", "Philox", "SFC64"])
    def test_json_roundtrip_is_bit_identical(self, bitgen):
        rng = np.random.Generator(getattr(np.random, bitgen)(1234))
        rng.random(17)  # advance off the seed point
        state = roundtrip(generator_state(rng))
        restored = restore_generator(state)
        np.testing.assert_array_equal(rng.random(100), restored.random(100))
        np.testing.assert_array_equal(
            rng.integers(0, 1 << 30, 50), restored.integers(0, 1 << 30, 50)
        )

    def test_unknown_bit_generator_rejected(self):
        state = generator_state(as_generator(0))
        state["bit_generator"] = "Generator"  # a class, but not a BitGenerator
        with pytest.raises(ValueError, match="unknown bit generator"):
            restore_generator(state)
        state["bit_generator"] = "NoSuchThing"
        with pytest.raises(ValueError, match="unknown bit generator"):
            restore_generator(state)


class TestCoresetState:
    def test_roundtrip_is_bit_identical(self):
        coreset = make_coreset(as_generator(3))
        back = Coreset.from_state(roundtrip(coreset.to_state()))
        np.testing.assert_array_equal(back.points, coreset.points)
        np.testing.assert_array_equal(back.weights, coreset.weights)
        assert back.shift == coreset.shift

    def test_empty_coreset_keeps_its_dimension(self):
        empty = Coreset(np.empty((0, 5)), np.empty(0), 0.0)
        back = Coreset.from_state(roundtrip(empty.to_state()))
        assert back.points.shape == (0, 5)


class TestTreeSnapshot:
    @staticmethod
    def make_tree(window=None):
        return CoresetTree(reduce=lambda c: c, window=window)

    def test_restored_tree_continues_identically(self):
        rng = as_generator(7)
        batches = [make_coreset(rng) for _ in range(9)]
        tree = self.make_tree()
        for index, leaf in enumerate(batches[:6]):
            tree.insert(leaf, index)
        snap = roundtrip(tree.snapshot())

        other = self.make_tree().restore(snap)
        assert other.live_bucket_ids == tree.live_bucket_ids
        np.testing.assert_array_equal(
            other.merged_coreset().points, tree.merged_coreset().points
        )
        # The id allocator and merge cascade continue exactly in step.
        for index, leaf in enumerate(batches[6:], start=6):
            tree.insert(leaf, index)
            other.insert(leaf, index)
        assert other.live_bucket_ids == tree.live_bucket_ids
        assert other.merges == tree.merges
        np.testing.assert_array_equal(
            other.merged_coreset().points, tree.merged_coreset().points
        )

    def test_windowed_tree_roundtrips_frozen_buckets(self):
        rng = as_generator(8)
        tree = self.make_tree(window=3)
        for index in range(8):
            tree.insert(make_coreset(rng), index)
            tree.expire(index)
        snap = roundtrip(tree.snapshot())
        other = self.make_tree(window=3).restore(snap)
        assert {b.bucket_id: b.frozen for b in other.live_buckets} == \
            {b.bucket_id: b.frozen for b in tree.live_buckets}

    def test_window_mismatch_raises_before_touching_state(self):
        tree = self.make_tree(window=4)
        tree.insert(make_coreset(as_generator(1)), 0)
        snap = tree.snapshot()
        other = self.make_tree(window=2)
        other.insert(make_coreset(as_generator(2)), 0)
        before = other.live_bucket_ids
        with pytest.raises(ValueError, match="window=4"):
            other.restore(snap)
        assert other.live_bucket_ids == before


def make_source(seed: int, source_rng) -> StreamingSource:
    stage = UniformStage(10)
    return StreamingSource(
        "source-0",
        [stage],
        stage,
        StageContext(k=2, epsilon=0.1, delta=0.1, rng=source_rng),
        SimulatedNetwork(),
    )


class TestSourceSnapshot:
    def test_restored_source_continues_identically(self):
        data = as_generator(40)
        batches = [data.random((30, 6)) for _ in range(6)]
        source = make_source(1, as_generator(21))
        for index in range(4):
            source.ingest(batches[index], index)
        # The source's stream state plus its context generator position
        # together make the full checkpoint (the ctx is configuration the
        # constructor re-supplies; its rng position rides beside it).
        rng_state = roundtrip(generator_state(source.ctx.rng))
        snap = roundtrip(source.snapshot())

        twin = make_source(1, restore_generator(rng_state)).restore(snap)
        assert twin.batches_ingested == source.batches_ingested
        assert twin._shipped == source._shipped
        for index in range(4, 6):
            mine = source.ingest(batches[index], index)
            theirs = twin.ingest(batches[index], index)
            assert [b.bucket_id for b in theirs.added] == \
                [b.bucket_id for b in mine.added]
            assert theirs.retired_ids == mine.retired_ids
            for a, b in zip(mine.added, theirs.added):
                np.testing.assert_array_equal(b.coreset.points, a.coreset.points)
                np.testing.assert_array_equal(b.coreset.weights, a.coreset.weights)
        np.testing.assert_array_equal(
            twin.tree.merged_coreset().points,
            source.tree.merged_coreset().points,
        )

    def test_source_id_mismatch_raises(self):
        source = make_source(1, as_generator(3))
        snap = source.snapshot()
        snap["source_id"] = "source-9"
        with pytest.raises(ValueError, match="source-9"):
            source.restore(snap)


class TestServerSnapshot:
    @staticmethod
    def make_server(with_state=True) -> StreamingServer:
        server = StreamingServer(k=2, n_init=3, seed=17)
        if with_state:
            data = as_generator(50)
            batches = [data.random((40, 5)) for _ in range(4)]
            source = StreamingSource(
                "source-0", [UniformStage(12)], UniformStage(12),
                StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(9)),
                SimulatedNetwork(),
            )
            server.register(source.source_id)
            for index, batch in enumerate(batches):
                server.fold(source.ingest(batch, index))
        return server

    def test_mid_stream_queries_are_bit_identical(self):
        server = self.make_server()
        twin = StreamingServer.restore(roundtrip(server.snapshot()))
        assert twin.updates_folded == server.updates_folded
        assert twin.live_bucket_count == server.live_bucket_count
        # Two consecutive queries: the rng handshake means the restored
        # server derives the same solver seed stream, so both queries are
        # bit-identical, not just the first.
        for _ in range(2):
            mine, my_coreset, _ = server.query()
            theirs, their_coreset, _ = twin.query()
            np.testing.assert_array_equal(theirs.centers, mine.centers)
            assert theirs.cost == mine.cost
            np.testing.assert_array_equal(their_coreset.points, my_coreset.points)

    def test_snapshot_survives_further_folding(self):
        server = self.make_server()
        snap = roundtrip(server.snapshot())
        data = as_generator(60)
        source = StreamingSource(
            "source-1", [UniformStage(12)], UniformStage(12),
            StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(10)),
            SimulatedNetwork(),
        )
        update = source.ingest(data.random((40, 5)), 0)
        server.register(source.source_id)
        server.fold(update)
        twin = StreamingServer.restore(snap)
        twin.register(source.source_id)
        twin.fold(update)
        mine, _, _ = server.query()
        theirs, _, _ = twin.query()
        np.testing.assert_array_equal(theirs.centers, mine.centers)

    def test_fold_faultpoint_fires_before_state_changes(self):
        server = self.make_server()
        folded = server.updates_folded
        buckets = server.live_bucket_count
        with faultpoints.armed("streaming.fold"):
            with pytest.raises(faultpoints.FaultInjected):
                server.fold(SourceUpdate(source_id="source-0", batch_index=99))
        assert server.updates_folded == folded
        assert server.live_bucket_count == buckets

    def test_empty_server_roundtrip(self):
        server = self.make_server(with_state=False)
        twin = StreamingServer.restore(roundtrip(server.snapshot()))
        assert not twin.has_summary
        with pytest.raises(RuntimeError, match="no summary"):
            twin.global_coreset()
