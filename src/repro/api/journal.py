"""The sweep journal: a durable, advisory log of per-cell progress.

``run_sweep`` appends one entry *before* each cell executes (``start``) and
one *after* (``done`` — carrying the cell's stage-cache accounting — or
``failed`` — carrying the captured traceback).  Entries are keyed by
``(spec_hash, cell_id, seed)`` and written with the same durable framing as
the result store (one JSON object per line, flushed and fsynced), so a
killed sweep leaves a journal that says exactly which cells were in flight.

The journal is *advisory*: ``repro sweep --resume`` decides what to skip
from the result store (the authoritative record of committed cells) and
uses the journal only for diagnostics — failed-cell tracebacks, in-flight
markers, cache accounting.  A torn trailing line is therefore simply
ignored on read rather than quarantined.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.utils import faultpoints

#: Journal format version, bumped on incompatible layout changes.
JOURNAL_VERSION = 1


class SweepJournal:
    """Append-only JSONL progress log living beside a result store."""

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()

    @classmethod
    def for_store(cls, store_path: Union[str, Path]) -> "SweepJournal":
        """The conventional journal location: ``<store>.journal``."""
        store_path = Path(store_path)
        return cls(store_path.with_name(store_path.name + ".journal"))

    # ------------------------------------------------------------- writing
    def start(self, spec_hash: str, cell_id: Optional[str], seed: int) -> None:
        """Record that a cell is about to execute."""
        faultpoints.reach("sweep.journal.start")
        self._append({
            "event": "start",
            "spec_hash": spec_hash,
            "cell_id": cell_id,
            "seed": int(seed),
        })

    def done(
        self,
        spec_hash: str,
        cell_id: Optional[str],
        seed: int,
        cache: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record that a cell executed; ``cache`` carries its stage-cache
        accounting (hits/misses/stored/corrupt), which deliberately lives
        here rather than in the persisted record — a warm resume would
        otherwise produce records that differ from a cold baseline."""
        faultpoints.reach("sweep.journal.done")
        self._append({
            "event": "done",
            "spec_hash": spec_hash,
            "cell_id": cell_id,
            "seed": int(seed),
            "cache": dict(cache or {}),
        })

    def failed(
        self,
        spec_hash: str,
        cell_id: Optional[str],
        seed: int,
        error: str,
    ) -> None:
        """Record a cell that raised, with its formatted traceback."""
        self._append({
            "event": "failed",
            "spec_hash": spec_hash,
            "cell_id": cell_id,
            "seed": int(seed),
            "error": str(error),
        })

    def _append(self, entry: Dict[str, Any]) -> None:
        entry = {"version": JOURNAL_VERSION, **entry}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    # ------------------------------------------------------------- reading
    def entries(self) -> List[Dict[str, Any]]:
        """All complete entries in append order (a torn trailing line —
        the signature of a killed append — is silently dropped; the journal
        is advisory, so there is nothing to quarantine)."""
        if not self.path.exists():
            return []
        with self.path.open("r", encoding="utf-8") as handle:
            text = handle.read()
        terminated = text.endswith("\n")
        lines = text.splitlines()
        entries: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            is_tail = not terminated and index == len(lines) - 1
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if is_tail:
                    continue
                raise ValueError(
                    f"{self.path}:{index + 1}: invalid journal entry"
                ) from None
            if isinstance(payload, dict):
                entries.append(payload)
        return entries

    def done_keys(self) -> Set[Tuple[str, Optional[str]]]:
        """``(spec_hash, cell_id)`` of every cell with a ``done`` entry."""
        return {
            (e.get("spec_hash"), e.get("cell_id"))
            for e in self.entries() if e.get("event") == "done"
        }

    def failed_entries(self) -> List[Dict[str, Any]]:
        """Every ``failed`` entry, in append order."""
        return [e for e in self.entries() if e.get("event") == "failed"]

    def in_flight(self) -> Set[Tuple[str, Optional[str]]]:
        """Cells with a ``start`` but no terminal (``done``/``failed``)
        entry — the cells a crash interrupted."""
        started: Set[Tuple[str, Optional[str]]] = set()
        finished: Set[Tuple[str, Optional[str]]] = set()
        for entry in self.entries():
            key = (entry.get("spec_hash"), entry.get("cell_id"))
            if entry.get("event") == "start":
                started.add(key)
            elif entry.get("event") in ("done", "failed"):
                finished.add(key)
        return started - finished


__all__ = ["SweepJournal", "JOURNAL_VERSION"]
