"""M1 — Micro-benchmark: blockwise nearest-center assignment hot path.

``kmeans/cost.py`` sweeps the dataset against the centers in blocks of 8192
rows; the center squared-norms are constant across blocks and are hoisted
out of the block loop (computed once, passed to
``pairwise_squared_distances`` via ``b_squared_norms``).  This benchmark
pins the hoisted path against a reference that recomputes the norms per
block — asserting identical output and no timing regression.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.kmeans.cost import _BLOCK_ROWS, _min_squared_distances, assign_to_centers
from repro.utils.linalg import pairwise_squared_distances


def _min_squared_distances_reference(points, centers):
    """The pre-hoist implementation: per-block norm recomputation."""
    n = points.shape[0]
    out = np.empty(n, dtype=float)
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        d2 = pairwise_squared_distances(points[start:stop], centers)
        out[start:stop] = d2.min(axis=1)
    return out


def _median_of(fn, repeats=9):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


@pytest.mark.benchmark(group="microbench")
def test_hoisted_center_norms_no_regression(benchmark):
    rng = np.random.default_rng(42)
    points = rng.standard_normal((8 * _BLOCK_ROWS, 64))
    centers = rng.standard_normal((16, 64))

    hoisted = _min_squared_distances(points, centers)
    reference = _min_squared_distances_reference(points, centers)
    np.testing.assert_array_equal(hoisted, reference)

    benchmark.pedantic(
        lambda: _min_squared_distances(points, centers),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    hoisted_seconds = _median_of(lambda: _min_squared_distances(points, centers))
    reference_seconds = _median_of(lambda: _min_squared_distances_reference(points, centers))
    # The hoist removes (small) work from the loop, so the medians should be
    # statistically indistinguishable or better; the wide headroom only
    # catches a real regression (e.g. the hoisted path allocating extra
    # per-block copies), not scheduler jitter on shared CI runners.
    assert hoisted_seconds <= reference_seconds * 1.5, (
        hoisted_seconds, reference_seconds,
    )


def test_assignment_matches_brute_force():
    rng = np.random.default_rng(7)
    points = rng.standard_normal((_BLOCK_ROWS + 123, 12))
    centers = rng.standard_normal((5, 12))
    labels, dists = assign_to_centers(points, centers)
    brute = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    np.testing.assert_array_equal(labels, brute.argmin(axis=1))
    np.testing.assert_allclose(dists, brute.min(axis=1), atol=1e-8)
