"""The ``repro serve`` wire format: frames, update coding, error mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.network import SimulatedNetwork
from repro.serve import protocol
from repro.stages.base import StageContext
from repro.stages.cr import UniformStage
from repro.streaming.server import (
    EmptySummaryError,
    UnknownSourceError,
    UpdateGapError,
)
from repro.streaming.source import StreamingSource
from repro.utils.random import as_generator


def make_update(batches: int = 3):
    source = StreamingSource(
        "source-0", [UniformStage(12)], UniformStage(12),
        StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(9)),
        SimulatedNetwork(),
    )
    data = as_generator(50)
    update = None
    for index in range(batches):
        update = source.ingest(data.random((40, 5)), index)
    return update


class TestFrames:
    def test_frame_roundtrip(self):
        payload = {"op": "fold", "tenant": "t", "nested": {"a": [1, 2.5]}}
        assert protocol.parse_frame(protocol.dump_frame(payload)) == payload

    def test_frame_is_one_line(self):
        frame = protocol.dump_frame({"op": "query", "text": "a\nb"})
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1

    @pytest.mark.parametrize("line", [b"not json\n", b"[1,2]\n", b'"str"\n', b"\xff\xfe\n"])
    def test_malformed_frames_rejected(self, line):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_frame(line)


class TestUpdateCoding:
    def test_update_roundtrip_is_bit_identical(self):
        update = make_update()
        back = protocol.decode_update(
            protocol.parse_frame(protocol.dump_frame(protocol.encode_update(update)))
        )
        assert back.source_id == update.source_id
        assert back.batch_index == update.batch_index
        assert back.retired_ids == list(update.retired_ids)
        assert [b.bucket_id for b in back.added] == [b.bucket_id for b in update.added]
        for mine, theirs in zip(update.added, back.added):
            assert (theirs.level, theirs.first_batch, theirs.last_batch) == \
                (mine.level, mine.first_batch, mine.last_batch)
            np.testing.assert_array_equal(theirs.coreset.points, mine.coreset.points)
            np.testing.assert_array_equal(theirs.coreset.weights, mine.coreset.weights)
            assert theirs.coreset.shift == mine.coreset.shift

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"source_id": "s"},  # no batch_index
        {"source_id": "s", "batch_index": 0, "added": [{"bucket_id": 1}]},
    ])
    def test_malformed_updates_rejected(self, payload):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_update(payload)


class TestErrorMapping:
    def test_unknown_source(self):
        frame = protocol.encode_exception(UnknownSourceError("s-9", {"s-0": 1}))
        assert frame["ok"] is False
        assert frame["error"] == protocol.ERROR_UNKNOWN_SOURCE
        assert frame["source_id"] == "s-9"
        assert frame["registered"] == ["s-0"]

    def test_update_gap_carries_replay_point(self):
        frame = protocol.encode_exception(UpdateGapError("s-0", 2, 5))
        assert frame["error"] == protocol.ERROR_UPDATE_GAP
        assert (frame["expected"], frame["got"]) == (2, 5)

    def test_empty_summary(self):
        frame = protocol.encode_exception(EmptySummaryError("no summary"))
        assert frame["error"] == protocol.ERROR_EMPTY_SUMMARY

    def test_protocol_error_is_bad_request(self):
        frame = protocol.encode_exception(protocol.ProtocolError("nope"))
        assert frame["error"] == protocol.ERROR_BAD_REQUEST

    def test_unmapped_exception_refused(self):
        with pytest.raises(TypeError):
            protocol.encode_exception(KeyError("x"))

    def test_every_code_is_registered(self):
        assert set(protocol.ERROR_CODES) == {
            "bad-request", "unknown-source", "update-gap", "empty-summary",
        }
