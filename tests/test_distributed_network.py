"""Tests for repro.distributed.network — messages and accounting."""

import numpy as np
import pytest

from repro.distributed.network import Message, SimulatedNetwork, TransmissionLog, _count_scalars


class TestCountScalars:
    def test_array(self):
        assert _count_scalars(np.zeros((3, 4))) == 12

    def test_scalar(self):
        assert _count_scalars(3.14) == 1
        assert _count_scalars(7) == 1
        assert _count_scalars(np.float64(1.0)) == 1

    def test_none(self):
        assert _count_scalars(None) == 0

    def test_booleans_count_as_one_scalar(self):
        # Python bool (an int subclass) and numpy bool must agree: both are
        # one scalar on the wire.
        assert _count_scalars(True) == 1
        assert _count_scalars(np.bool_(True)) == 1
        assert _count_scalars(np.bool_(False)) == 1
        assert _count_scalars([np.bool_(True), False]) == 2

    def test_nested_containers(self):
        payload = {"a": np.zeros((2, 2)), "b": [1.0, 2.0, (3.0, np.zeros(3))]}
        assert _count_scalars(payload) == 4 + 2 + 1 + 3

    def test_none_inside_containers_counts_zero(self):
        # None models an absent optional field at any nesting depth.
        assert _count_scalars({"coreset": np.zeros(5), "basis": None}) == 5
        assert _count_scalars([None, 1.0, {"x": None}]) == 1

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            _count_scalars("a string")

    def test_unsupported_type_inside_container_raises(self):
        # The raise must not be swallowed by container recursion: an
        # unmeterable payload never crosses the wire silently.
        with pytest.raises(TypeError):
            _count_scalars({"ok": 1.0, "bad": object()})
        with pytest.raises(TypeError):
            _count_scalars([np.zeros(2), b"bytes"])


class TestMessage:
    def test_bits_full_precision(self):
        m = Message("source-0", "server", "data", scalars=10)
        assert m.bits == 640
        assert m.uplink

    def test_downlink(self):
        m = Message("server", "source-0", "basis", scalars=5)
        assert not m.uplink


class TestTransmissionLog:
    def test_totals_uplink_only(self):
        log = TransmissionLog()
        log.record(Message("source-0", "server", "a", scalars=10))
        log.record(Message("server", "source-0", "b", scalars=100))
        assert log.total_scalars(uplink_only=True) == 10
        assert log.total_scalars(uplink_only=False) == 110
        assert len(log) == 2

    def test_breakdowns(self):
        log = TransmissionLog()
        log.record(Message("source-0", "server", "coreset", scalars=10))
        log.record(Message("source-1", "server", "coreset", scalars=20))
        log.record(Message("source-0", "server", "weights", scalars=5))
        assert log.scalars_by_tag() == {"coreset": 30, "weights": 5}
        assert log.scalars_by_sender() == {"source-0": 15, "source-1": 20}


class TestSimulatedNetwork:
    def test_send_returns_payload(self):
        net = SimulatedNetwork()
        payload = np.arange(6.0).reshape(2, 3)
        out = net.send("source-0", "server", payload, tag="x")
        assert out is payload
        assert net.uplink_scalars() == 6
        assert net.uplink_bits() == 6 * 64

    def test_quantized_bits(self):
        net = SimulatedNetwork()
        net.send("source-0", "server", np.zeros(10), tag="q", significant_bits=8)
        assert net.uplink_bits() == 10 * (1 + 11 + 8)

    def test_scalar_override(self):
        net = SimulatedNetwork()
        net.send("source-0", "server", np.zeros((100, 100)), tag="seed", scalars=0)
        assert net.uplink_scalars() == 0

    def test_downlink_not_counted_in_uplink(self):
        net = SimulatedNetwork()
        net.send("server", "source-3", np.zeros(50), tag="broadcast")
        assert net.uplink_scalars() == 0
        assert net.log.total_scalars(uplink_only=False) == 50

    def test_reset(self):
        net = SimulatedNetwork()
        net.send("source-0", "server", 1.0, tag="x")
        net.reset()
        assert net.uplink_scalars() == 0
        assert len(net.log) == 0
