"""E3 — Figure 2: multi-source normalized k-means cost and running time.

The paper plots, for MNIST and NeurIPS partitioned over 10 data sources, the
CDF over Monte-Carlo runs of the normalized k-means cost and the running
time for BKLW and JL+BKLW (Algorithm 4).

Expected shape (paper): both algorithms reach a similar cost (within a few
percent of optimal); JL+BKLW runs faster at the sources because the local
SVD and sampling operate on dimension-reduced shards.
"""

from __future__ import annotations

import pytest

from bench_helpers import NUM_SOURCES
from bench_helpers import multi_source_factories, print_cdf, print_table, run_once, summarize_result


def _run(runner, d):
    return runner.run_multi_source(multi_source_factories(d), num_sources=NUM_SOURCES)


@pytest.mark.benchmark(group="fig2")
def test_fig2_mnist(benchmark, mnist_runner, mnist_dataset):
    points, _ = mnist_dataset
    result = run_once(benchmark, lambda: _run(mnist_runner, points.shape[1]))
    print_cdf(
        "Fig. 2(a) MNIST-like: normalized k-means cost",
        {label: result.metric_samples(label, "normalized_cost") for label in result.evaluations},
    )
    print_cdf(
        "Fig. 2(a) MNIST-like: per-source running time (s)",
        {label: result.metric_samples(label, "source_seconds") for label in result.evaluations},
    )
    print_table("Fig. 2(a) MNIST-like: means", summarize_result(result),
                ["normalized_cost", "normalized_communication", "source_seconds"])
    summary = result.summary()
    assert all(s.mean_normalized_cost < 2.0 for s in summary.values())
    # Algorithm 4 must not be slower than BKLW (it runs the same protocol on
    # smaller matrices).
    assert (
        summary["JL+BKLW (Alg4)"].mean_source_seconds
        <= summary["BKLW"].mean_source_seconds * 1.25
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_neurips(benchmark, neurips_runner, neurips_dataset):
    points, _ = neurips_dataset
    result = run_once(benchmark, lambda: _run(neurips_runner, points.shape[1]))
    print_cdf(
        "Fig. 2(b) NeurIPS-like: normalized k-means cost",
        {label: result.metric_samples(label, "normalized_cost") for label in result.evaluations},
    )
    print_cdf(
        "Fig. 2(b) NeurIPS-like: per-source running time (s)",
        {label: result.metric_samples(label, "source_seconds") for label in result.evaluations},
    )
    print_table("Fig. 2(b) NeurIPS-like: means", summarize_result(result),
                ["normalized_cost", "normalized_communication", "source_seconds"])
    summary = result.summary()
    assert all(s.mean_normalized_cost < 2.5 for s in summary.values())
    assert (
        summary["JL+BKLW (Alg4)"].mean_source_seconds
        <= summary["BKLW"].mean_source_seconds * 1.25
    )
