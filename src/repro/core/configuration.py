"""Configuration of joint DR, CR, and QT (Section 6.3).

Given a bound ``Y0`` on the acceptable approximation error and a confidence
level ``1 − δ0``, choose the error parameters ``ε1^(1), ε2, ε1^(2)`` of the
JL+FSS+JL pipeline and the number of significant bits ``s`` of the rounding
quantizer so that the *predicted communication cost* (Eq. 22–24) is minimized
subject to the error bound of Eq. (21b).

Following the paper's simplification, the search sets
``ε1^(1) = ε2 = ε1^(2) = ε`` and enumerates the finite set of possible
``s`` values (1..52); for each ``s`` it computes the quantization error term
``ε_QT = 4 n Δ_D Δ_QT / E`` (using the lower bound ``E`` on the optimal cost
from a bicriteria solution), solves for the largest feasible ε from (21b) by
bisection, and evaluates the communication model (24); the cheapest feasible
configuration wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.kmeans.bicriteria import bicriteria_approximation
from repro.quantization.bits import DOUBLE_SIGNIFICAND_BITS, bits_per_scalar
from repro.utils.random import SeedLike
from repro.utils.validation import check_fraction, check_matrix, check_positive_int

#: The paper's constant C1 (Section 6.3) for the FSS coreset cardinality.
PAPER_C1 = 54912.0 * (1.0 + math.log2(3.0)) * (1.0 + math.log2(26.0 / 3.0)) / 225.0
#: The paper's constant C2 for the JL dimension (d' <= ceil(8 log(4n'k/δ)/ε²)).
PAPER_C2 = 24.0
#: The paper's constant C3 for the quantizer precision term.
PAPER_C3 = 2.0


@dataclass(frozen=True)
class QuantizerConfiguration:
    """One feasible configuration of the JL+FSS+JL+QT pipeline.

    Attributes
    ----------
    significant_bits:
        Number of mantissa bits ``s`` retained by the rounding quantizer.
    epsilon:
        The common DR/CR error parameter ε (ε1^(1) = ε2 = ε1^(2)).
    epsilon_qt:
        The multiplicative form of the quantization error, ε_QT.
    predicted_error:
        The error bound Y of Eq. (21b) at this configuration.
    predicted_communication:
        The communication-cost model X of Eq. (24), in bits.
    coreset_cardinality, coreset_dimension:
        The summary geometry the model assumed.
    """

    significant_bits: int
    epsilon: float
    epsilon_qt: float
    predicted_error: float
    predicted_communication: float
    coreset_cardinality: int
    coreset_dimension: int

    def to_dict(self) -> dict:
        """JSON/TOML-ready mapping of the solved configuration."""
        return {
            "significant_bits": self.significant_bits,
            "epsilon": self.epsilon,
            "epsilon_qt": self.epsilon_qt,
            "predicted_error": self.predicted_error,
            "predicted_communication": self.predicted_communication,
            "coreset_cardinality": self.coreset_cardinality,
            "coreset_dimension": self.coreset_dimension,
        }

    def as_pipeline_overrides(self) -> dict:
        """The solved configuration as declarative pipeline knobs.

        Feed the result straight into a :class:`repro.api.PipelineConfig`
        (``PipelineConfig(algorithm="jl-fss-jl", k=k,
        **config.as_pipeline_overrides())``) to run the configuration the
        optimizer chose.
        """
        return {
            "epsilon": self.epsilon,
            "coreset_size": self.coreset_cardinality,
            "jl_dimension": self.coreset_dimension,
            "quantize_bits": self.significant_bits,
        }


def approximation_error_bound(epsilon: float, epsilon_qt: float) -> float:
    """The error bound Y of Eq. (21b) with all DR/CR epsilons equal.

    ``Y = ((1+ε)^4 / (1−ε)) · ((1+ε)^4 (1+ε) + ε_QT)`` — obtained from
    (21b) by setting ε1^(1) = ε2 = ε1^(2) = ε.
    """
    epsilon = check_fraction(epsilon, "epsilon")
    if epsilon_qt < 0:
        raise ValueError(f"epsilon_qt must be non-negative, got {epsilon_qt}")
    outer = (1.0 + epsilon) ** 4 / (1.0 - epsilon)
    inner = (1.0 + epsilon) ** 5 + epsilon_qt
    return outer * inner


def _max_feasible_epsilon(y0: float, epsilon_qt: float, tolerance: float = 1e-9) -> Optional[float]:
    """Largest ε in (0, 1) with ``approximation_error_bound(ε, ε_QT) ≤ Y0``.

    Returns ``None`` if even ε → 0 violates the bound (i.e. ``1 + ε_QT > Y0``).
    The bound is monotonically increasing in ε, so bisection applies.
    """
    if 1.0 + epsilon_qt > y0:
        return None
    lo, hi = 0.0, 1.0 - 1e-9
    if approximation_error_bound(hi, epsilon_qt) <= y0:
        return hi
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if approximation_error_bound(mid, epsilon_qt) <= y0:
            lo = mid
        else:
            hi = mid
    return lo if lo > 0 else None


def fss_cardinality_model(k: int, epsilon: float, delta: float, c1: float = PAPER_C1) -> int:
    """Coreset cardinality model ``n' = C1 k³ log²k log(1/δ)/ε⁴`` (Eq. 23)."""
    log_k = math.log(max(k, 2))
    return max(k + 1, int(math.ceil(c1 * k**3 * log_k**2 * math.log(1.0 / delta) / epsilon**4)))


def jl_dimension_model(n_prime: int, k: int, epsilon: float, delta: float, c2: float = PAPER_C2) -> int:
    """JL dimension model ``d' = C2 log(n'k/δ)/ε²`` (Eq. 23)."""
    return max(1, int(math.ceil(c2 * math.log(max(n_prime, 2) * k / delta) / epsilon**2)))


def communication_cost_model(
    n: int,
    d: int,
    k: int,
    epsilon: float,
    epsilon_qt: float,
    delta: float,
    significant_bits: int,
    use_paper_constants: bool = True,
    coreset_cardinality: Optional[int] = None,
    coreset_dimension: Optional[int] = None,
) -> tuple[float, int, int]:
    """The communication model X ≈ n'·d'·b' of Eq. (22)–(23), in bits.

    Returns ``(bits, n', d')``.  When ``use_paper_constants`` is False the
    caller must supply the empirical summary geometry
    (``coreset_cardinality``/``coreset_dimension``), which matches how the
    experiments of Section 7.3 sweep the configuration.
    """
    check_positive_int(n, "n")
    check_positive_int(d, "d")
    check_positive_int(k, "k")
    check_fraction(epsilon, "epsilon")
    check_positive_int(significant_bits, "significant_bits")

    if use_paper_constants:
        n_prime = fss_cardinality_model(k, epsilon, delta)
        d_prime = jl_dimension_model(n_prime, k, epsilon, delta)
    else:
        if coreset_cardinality is None or coreset_dimension is None:
            raise ValueError(
                "coreset_cardinality and coreset_dimension are required when "
                "use_paper_constants is False"
            )
        n_prime = int(coreset_cardinality)
        d_prime = int(coreset_dimension)

    bits_each = bits_per_scalar(significant_bits)
    bits = float(n_prime) * float(d_prime) * float(bits_each)
    return bits, n_prime, d_prime


def estimate_optimal_cost_lower_bound(
    points: np.ndarray,
    k: int,
    repetitions: int = 3,
    slack: float = 20.0,
    seed: SeedLike = None,
) -> float:
    """Lower bound ``E ≤ cost(P, X*)`` via the adaptive-sampling bicriteria
    solution (paper reference [36]): ``E = cost(P, B)/20``."""
    points = check_matrix(points, "points")
    result = bicriteria_approximation(points, k, repetitions=repetitions, seed=seed)
    return max(result.optimal_cost_lower_bound(slack), 1e-12)


def configure_joint_reduction(
    n: int,
    d: int,
    k: int,
    error_bound: float,
    confidence: float = 0.9,
    diameter: float = 2.0 * math.sqrt(2.0),
    optimal_cost_lower_bound: float = 1.0,
    max_norm: float = math.sqrt(2.0),
    significant_bits_grid: Optional[Sequence[int]] = None,
    use_paper_constants: bool = True,
    coreset_cardinality: Optional[int] = None,
    coreset_dimension: Optional[int] = None,
) -> QuantizerConfiguration:
    """Solve the configuration problem (21): minimize predicted communication
    subject to the approximation-error bound.

    Parameters
    ----------
    n, d, k:
        Dataset cardinality, dimension, and number of clusters.
    error_bound:
        The bound ``Y0 > 1`` on the approximation ratio.
    confidence:
        Desired confidence ``1 − δ0``; the per-stage δ is set to
        ``1 − (1 − δ0)^{1/3}`` as in the paper.
    diameter:
        Diameter Δ_D of the input space (after the paper's normalization to
        [-1,1]^d with zero mean a safe default for the *projected* summaries
        is supplied by callers; the default here corresponds to a unit-box
        heuristic and should usually be overridden).
    optimal_cost_lower_bound:
        The lower bound ``E`` on cost(P, X*) (see
        :func:`estimate_optimal_cost_lower_bound`).
    max_norm:
        ``max_p ‖p‖`` over the transmitted summary, used to convert ``s``
        into the quantization error Δ_QT ≤ 2^{−s} max_p ‖p‖ (Eq. 14).
    significant_bits_grid:
        Candidate values of ``s``; default 1..52.
    use_paper_constants, coreset_cardinality, coreset_dimension:
        Passed to :func:`communication_cost_model`.

    Returns
    -------
    QuantizerConfiguration
        The feasible configuration with the smallest predicted communication.

    Raises
    ------
    ValueError
        If no configuration satisfies the error bound (``error_bound`` too
        tight for the given ``E`` and ``max_norm``).
    """
    if error_bound <= 1.0:
        raise ValueError(f"error_bound must exceed 1, got {error_bound}")
    confidence = check_fraction(confidence, "confidence")
    delta0 = 1.0 - confidence
    delta = 1.0 - (1.0 - delta0) ** (1.0 / 3.0)
    if optimal_cost_lower_bound <= 0:
        raise ValueError("optimal_cost_lower_bound must be positive")

    if significant_bits_grid is None:
        significant_bits_grid = range(1, DOUBLE_SIGNIFICAND_BITS)

    best: Optional[QuantizerConfiguration] = None
    for s in significant_bits_grid:
        s = int(s)
        delta_qt = 2.0 ** (-s) * max_norm
        epsilon_qt = 4.0 * n * diameter * delta_qt / optimal_cost_lower_bound
        epsilon = _max_feasible_epsilon(error_bound, epsilon_qt)
        if epsilon is None or epsilon <= 0:
            continue
        bits, n_prime, d_prime = communication_cost_model(
            n, d, k, epsilon, epsilon_qt, delta, s,
            use_paper_constants=use_paper_constants,
            coreset_cardinality=coreset_cardinality,
            coreset_dimension=coreset_dimension,
        )
        candidate = QuantizerConfiguration(
            significant_bits=s,
            epsilon=float(epsilon),
            epsilon_qt=float(epsilon_qt),
            predicted_error=float(approximation_error_bound(epsilon, epsilon_qt)),
            predicted_communication=float(bits),
            coreset_cardinality=n_prime,
            coreset_dimension=d_prime,
        )
        if best is None or candidate.predicted_communication < best.predicted_communication:
            best = candidate

    if best is None:
        raise ValueError(
            "no quantizer configuration satisfies the requested error bound; "
            "loosen error_bound or improve the optimal-cost lower bound"
        )
    return best
