"""Quantization (QT): precision reduction for transmitted data summaries.

Section 6 of the paper: after DR and CR have shrunk the dimensionality and
cardinality of the summary, a rounding-based quantizer shrinks the *precision*
of each scalar — keeping only ``s`` significant (mantissa) bits — which
reduces the number of bits on the wire without changing the number of
scalars.  The quantization error per point is bounded by
``Δ_QT ≤ 2^{-s} · max_p ‖p‖`` (Eq. 14), which Theorem 6.1 converts into an
additive term in the approximation error.
"""

from repro.quantization.rounding import RoundingQuantizer, IdentityQuantizer
from repro.quantization.bits import (
    DOUBLE_PRECISION_BITS,
    DOUBLE_EXPONENT_BITS,
    DOUBLE_SIGNIFICAND_BITS,
    bits_per_scalar,
    scalars_to_bits,
)

__all__ = [
    "RoundingQuantizer",
    "IdentityQuantizer",
    "DOUBLE_PRECISION_BITS",
    "DOUBLE_EXPONENT_BITS",
    "DOUBLE_SIGNIFICAND_BITS",
    "bits_per_scalar",
    "scalars_to_bits",
]
