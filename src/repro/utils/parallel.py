"""Thread-pool helpers for parallel per-source execution.

The distributed and streaming engines execute one compute section per data
source; those sections are dominated by BLAS kernels (matmul, SVD), which
release the GIL, so a thread pool achieves real parallel speed-up without
serializing the shards across processes.

Determinism contract: every mapped task must draw randomness only from state
owned by its item (per-source generators pre-derived from the master seed)
and must not touch the metered :class:`~repro.distributed.network.
SimulatedNetwork` — transmissions happen in a serial phase afterwards, in
source order, so transmission logs, ledgers, and reports are identical
whatever the thread interleaving.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` knob to a concrete worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (defaulting to
    1 — sequential — so existing behaviour is opt-out); ``0`` or a negative
    value means "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer (0 = all cores), got {env!r}"
                ) from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
    executor: Optional[ThreadPoolExecutor] = None,
) -> List[_R]:
    """Order-preserving map over ``items``, threaded when ``jobs > 1``.

    ``executor`` lets hot-loop callers (the streaming engine maps once per
    batch step) reuse one long-lived pool instead of paying pool
    setup/teardown per call.  Exceptions propagate to the caller exactly as
    in a sequential loop.
    """
    items = list(items)
    if executor is not None:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(executor.map(fn, items))
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))
