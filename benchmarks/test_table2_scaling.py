"""E9 — Table 2: communication/complexity scaling with n and d.

Table 2 of the paper is analytical.  This benchmark validates that the
*measured* communication cost and data-source running time of the
implementation scale with (n, d) the way the table predicts:

* FSS communication grows linearly with d; JL+FSS communication is (nearly)
  independent of d.
* JL+FSS / JL+FSS+JL source complexity grows roughly linearly with n·d;
  FSS / FSS+JL grows super-linearly (n·d·min(n, d)).
* The closed-form predictions of ``repro.core.theory`` agree with the
  measurements on the direction of every comparison.
"""

from __future__ import annotations

from typing import Dict

import pytest

from bench_helpers import print_table, run_once
from repro.core.pipelines import FSSPipeline, JLFSSPipeline, JLFSSJLPipeline
from repro.core.theory import scaling_table
from repro.datasets import make_gaussian_mixture

CORESET = 200
RANK = 12
JL_DIM = 64


def _measure(n: int, d: int) -> Dict[str, Dict[str, float]]:
    points, _, _ = make_gaussian_mixture(n=n, d=d, k=2, separation=3.0, seed=5)
    rows: Dict[str, Dict[str, float]] = {}
    pipelines = {
        "FSS": FSSPipeline(k=2, seed=1, coreset_size=CORESET, pca_rank=RANK),
        "JL+FSS": JLFSSPipeline(k=2, seed=1, coreset_size=CORESET, pca_rank=RANK, jl_dimension=JL_DIM),
        "JL+FSS+JL": JLFSSJLPipeline(k=2, seed=1, coreset_size=CORESET, pca_rank=RANK, jl_dimension=JL_DIM),
    }
    for name, pipeline in pipelines.items():
        report = pipeline.run(points)
        rows[name] = {
            "comm_scalars": float(report.communication_scalars),
            "source_seconds": float(report.source_seconds),
        }
    return rows


def _scaling_run():
    base = _measure(n=1500, d=200)
    wide = _measure(n=1500, d=800)     # 4x dimension
    tall = _measure(n=6000, d=200)     # 4x cardinality
    return base, wide, tall


@pytest.mark.benchmark(group="table2")
def test_table2_scaling(benchmark):
    base, wide, tall = run_once(benchmark, _scaling_run)

    print_table("Table 2 check — base (n=1500, d=200)", base, ["comm_scalars", "source_seconds"])
    print_table("Table 2 check — wide (n=1500, d=800)", wide, ["comm_scalars", "source_seconds"])
    print_table("Table 2 check — tall (n=6000, d=200)", tall, ["comm_scalars", "source_seconds"])

    theory = scaling_table(n=1500, d=200, k=2, epsilon=0.2)
    print("\nAnalytical Table 2 rows (orders only, constants dropped):")
    for name, costs in theory.items():
        print(f"  {name:<12} communication ~ {costs.communication:,.0f}   complexity ~ {costs.complexity:,.0f}")

    # Claim: FSS communication grows linearly with d (ships the d x t basis)...
    fss_growth = wide["FSS"]["comm_scalars"] / base["FSS"]["comm_scalars"]
    assert fss_growth > 2.0, fss_growth
    # ...while the JL-based summaries barely grow with d.
    alg1_growth = wide["JL+FSS"]["comm_scalars"] / base["JL+FSS"]["comm_scalars"]
    alg3_growth = wide["JL+FSS+JL"]["comm_scalars"] / base["JL+FSS+JL"]["comm_scalars"]
    assert alg1_growth < fss_growth
    assert alg3_growth < fss_growth
    # Claim: communication of every coreset-based pipeline is (near-)
    # independent of n: quadrupling n changes the transmitted scalars by at
    # most a small factor (the JL dimension's log n term).
    for name in ("FSS", "JL+FSS", "JL+FSS+JL"):
        n_growth = tall[name]["comm_scalars"] / base[name]["comm_scalars"]
        assert n_growth < 1.5, (name, n_growth)
