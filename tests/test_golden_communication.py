"""Golden regression suite for communication accounting.

``tests/goldens/communication.json`` pins the uplink scalars/bits and the
per-tag scalar tables of **every** registered composition under the ideal
network (fixed dataset, seeds, and summary sizes — see
``repro.metrics.profile.GOLDEN_CONFIG``).  Any refactor that perturbs a wire
format, a sampler draw, a default size, or the metering itself shows up here
as an exact integer diff.  The fixture was generated from the pre-network-
refactor implementation, so it also certifies that the unreliable-edge layer
is a strict no-op under ``ideal`` conditions.

Intentional changes: regenerate with
``PYTHONPATH=src python tests/goldens/regenerate_communication.py`` and
review the JSON diff like code.
"""

import json
from pathlib import Path

import pytest

from repro.core import registry
from repro.metrics.profile import GOLDEN_CONFIG, communication_profile

FIXTURE = Path(__file__).resolve().parent / "goldens" / "communication.json"


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current_profiles():
    return communication_profile()


class TestGoldenFixtureShape:
    def test_fixture_exists_and_has_config(self, fixture):
        assert fixture["config"] == {k: v for k, v in GOLDEN_CONFIG.items()}

    def test_fixture_covers_every_registered_pipeline(self, fixture):
        # A newly registered composition must be added to the goldens in the
        # same PR (regenerate the fixture) — silently unpinned pipelines
        # would erode the suite.
        assert sorted(fixture["profiles"]) == registry.registered_names()

    def test_fixture_values_are_integer_exact(self, fixture):
        for name, profile in fixture["profiles"].items():
            assert isinstance(profile["uplink_scalars"], int), name
            assert isinstance(profile["uplink_bits"], int), name
            assert all(
                isinstance(v, int) for v in profile["scalars_by_tag"].values()
            ), name


class TestGoldenCommunication:
    def test_profiles_match_fixture_exactly(self, fixture, current_profiles):
        mismatches = {}
        for name, pinned in fixture["profiles"].items():
            got = current_profiles[name]
            if got != pinned:
                mismatches[name] = {"pinned": pinned, "got": got}
        assert not mismatches, (
            "communication drifted from the golden fixture (regenerate only "
            f"if the change is intended): {json.dumps(mismatches, indent=2)}"
        )

    def test_bits_consistent_with_tags(self, fixture):
        # Internal consistency of the fixture itself: the uplink scalar
        # count never exceeds the total per-tag count (tags include the
        # downlink; uplink is a subset).
        for name, profile in fixture["profiles"].items():
            total_tagged = sum(profile["scalars_by_tag"].values())
            assert profile["uplink_scalars"] <= total_tagged, name
