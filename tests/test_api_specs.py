"""Tests for the declarative spec layer (repro.api.specs / serialization)."""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.api.serialization import dumps_toml
from repro.core import registry

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None

requires_toml = pytest.mark.skipif(tomllib is None, reason="tomllib requires 3.11+")


# ---------------------------------------------------------------------------
# PipelineConfig validation
# ---------------------------------------------------------------------------

class TestPipelineConfig:
    def test_unknown_field_is_a_type_error(self):
        with pytest.raises(TypeError, match="jl_dim"):
            api.PipelineConfig(algorithm="jl-fss", k=2, jl_dim=20)

    def test_unknown_algorithm_lists_registered(self):
        with pytest.raises(ValueError, match="jl-fss"):
            api.PipelineConfig(algorithm="quantum-kmeans", k=2)

    def test_kind_foreign_knob_rejected_eagerly(self):
        with pytest.raises(ValueError, match="total_samples"):
            api.PipelineConfig(algorithm="fss", k=2, total_samples=40)
        with pytest.raises(ValueError, match="coreset_size"):
            api.PipelineConfig(algorithm="bklw", k=2, coreset_size=50)
        with pytest.raises(ValueError, match="batch_size"):
            api.PipelineConfig(algorithm="fss", k=2, batch_size=128)

    def test_error_names_the_accepted_knobs(self):
        with pytest.raises(ValueError, match="coreset_size"):
            # The message lists the accepted knob set for the kind.
            api.PipelineConfig(algorithm="fss", k=2, total_samples=40)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="k"):
            api.PipelineConfig(algorithm="fss", k=0)
        with pytest.raises(ValueError, match="epsilon"):
            api.PipelineConfig(algorithm="fss", k=2, epsilon=1.5)
        with pytest.raises(ValueError, match="coreset_size"):
            api.PipelineConfig(algorithm="fss", k=2, coreset_size=-3)

    def test_kind_property(self):
        assert api.PipelineConfig(algorithm="fss", k=2).kind == "single-source"
        assert api.PipelineConfig(algorithm="bklw", k=2).kind == "multi-source"
        assert api.PipelineConfig(algorithm="stream-fss", k=2).kind == "streaming"

    def test_quantizer_materialisation(self):
        config = api.PipelineConfig(algorithm="fss", k=2, quantize_bits=10)
        assert config.quantizer().significant_bits == 10
        # >= 53 bits keeps full doubles (the CLI's historical semantics).
        assert api.PipelineConfig(
            algorithm="fss", k=2, quantize_bits=60
        ).quantizer() is None
        assert api.PipelineConfig(algorithm="fss", k=2).quantizer() is None

    def test_to_overrides_maps_quantize_bits(self):
        config = api.PipelineConfig(
            algorithm="jl-fss", k=2, coreset_size=50, quantize_bits=8
        )
        overrides = config.to_overrides()
        assert overrides["coreset_size"] == 50
        assert overrides["quantizer"].significant_bits == 8
        assert "quantize_bits" not in overrides
        assert "k" not in overrides


class TestDataAndNetworkSpecs:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="mnist"):
            api.DataSpec(name="imagenet")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="ideal"):
            api.NetworkSpec(preset="5g")

    def test_bad_dropout_grammar_rejected(self):
        with pytest.raises(ValueError, match="SOURCE_INDEX"):
            api.NetworkSpec(dropout=("banana",))

    def test_network_kwargs_resolution(self):
        spec = api.NetworkSpec(preset="lossy", loss=0.1, retries=2,
                               dropout=("3:1", "5"))
        kwargs = spec.to_kwargs(default_seed=9)
        assert kwargs["network"].default_link.loss == pytest.approx(0.1)
        assert kwargs["network"].retries == 2
        assert kwargs["fault_plan"].dropout == {"source-3": 1, "source-5": 0}
        assert kwargs["network_seed"] == 9

    def test_network_seed_override_wins(self):
        assert api.NetworkSpec(network_seed=4).to_kwargs(9)["network_seed"] == 4


class TestExperimentSpec:
    def test_multi_source_requires_num_sources(self):
        with pytest.raises(ValueError, match="num_sources"):
            api.ExperimentSpec(
                pipeline=api.PipelineConfig(algorithm="bklw", k=2)
            )

    def test_streaming_requires_num_sources(self):
        with pytest.raises(ValueError, match="num_sources"):
            api.ExperimentSpec(
                pipeline=api.PipelineConfig(algorithm="stream-fss", k=2)
            )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="random"):
            api.ExperimentSpec(
                pipeline=api.PipelineConfig(algorithm="fss", k=2),
                strategy="round-robin",
            )

    def test_from_dict_rejects_unknown_sections(self):
        with pytest.raises(ValueError, match="pipelines"):
            api.ExperimentSpec.from_dict(
                {"pipelines": {"algorithm": "fss", "k": 2}}
            )


# ---------------------------------------------------------------------------
# Round-tripping
# ---------------------------------------------------------------------------

def _spec_strategy():
    """Hypothesis strategy over valid single/multi/streaming specs."""
    single = sorted(registry.registered_names(multi_source=False))
    multi = sorted(registry.registered_names(multi_source=True, streaming=False))
    streaming = sorted(registry.registered_names(streaming=True))

    def pipeline(draw):
        kind = draw(st.sampled_from(["single", "multi", "streaming"]))
        k = draw(st.integers(min_value=1, max_value=8))
        knobs = {}
        if draw(st.booleans()):
            knobs["epsilon"] = draw(st.floats(min_value=0.01, max_value=0.99,
                                              allow_nan=False))
        if kind == "single":
            name = draw(st.sampled_from(single))
            if draw(st.booleans()):
                knobs["coreset_size"] = draw(st.integers(1, 500))
            if draw(st.booleans()):
                knobs["quantize_bits"] = draw(st.integers(1, 52))
        elif kind == "multi":
            name = draw(st.sampled_from(multi))
            if draw(st.booleans()):
                knobs["total_samples"] = draw(st.integers(1, 500))
        else:
            name = draw(st.sampled_from(streaming))
            if draw(st.booleans()):
                knobs["batch_size"] = draw(st.integers(1, 1024))
            if draw(st.booleans()):
                knobs["window"] = draw(st.integers(1, 16))
        return api.PipelineConfig(algorithm=name, k=k, **knobs), kind

    @st.composite
    def spec(draw):
        config, kind = pipeline(draw)
        return api.ExperimentSpec(
            pipeline=config,
            data=api.DataSpec(
                name=draw(st.sampled_from(["mnist", "neurips"])),
                n=draw(st.one_of(st.none(), st.integers(10, 10000))),
                d=draw(st.one_of(st.none(), st.integers(2, 500))),
            ),
            network=api.NetworkSpec(
                preset=draw(st.sampled_from(["ideal", "lossy", "edge-wan"])),
                loss=draw(st.one_of(
                    st.none(),
                    st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
                )),
                retries=draw(st.one_of(st.none(), st.integers(0, 5))),
                dropout=tuple(draw(st.lists(
                    st.integers(0, 9).map(str), max_size=2, unique=True
                ))),
            ),
            runs=draw(st.integers(1, 10)),
            seed=draw(st.integers(0, 2**31 - 1)),
            num_sources=(None if kind == "single"
                         else draw(st.integers(1, 16))),
            strategy=draw(st.sampled_from(api.PARTITION_STRATEGIES)),
        )

    return spec()


class TestRoundTrip:
    @given(spec=_spec_strategy())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dict_round_trip(self, spec):
        assert api.ExperimentSpec.from_dict(spec.to_dict()) == spec

    @given(spec=_spec_strategy())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_json_round_trip(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert api.ExperimentSpec.from_dict(payload) == spec

    @requires_toml
    @given(spec=_spec_strategy())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_toml_round_trip(self, spec):
        payload = tomllib.loads(dumps_toml(spec.to_dict()))
        assert api.ExperimentSpec.from_dict(payload) == spec

    @requires_toml
    @given(spec=_spec_strategy(),
           axes=st.lists(st.sampled_from([
               ("k", (2, 5)), ("quantize_bits", (6, 10, 14)),
               ("net", ("ideal", "lossy")), ("seed", (0, 1)),
               ("dataset", ("mnist", "neurips")),
           ]), max_size=3, unique_by=lambda kv: kv[0]))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sweep_toml_round_trip(self, spec, axes):
        sweep = api.SweepSpec(base=spec, axes=tuple(axes))
        payload = tomllib.loads(dumps_toml(sweep.to_dict()))
        assert api.SweepSpec.from_dict(payload) == sweep

    def test_file_round_trip_both_formats(self, tmp_path):
        spec = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="jl-fss", k=3,
                                        coreset_size=80, quantize_bits=10),
            data=api.DataSpec(name="neurips", n=500, d=100),
            network=api.NetworkSpec(preset="lossy", retries=2),
            runs=4,
            seed=11,
        )
        for suffix in (".toml", ".json") if tomllib else (".json",):
            path = api.dump_spec(spec, tmp_path / f"spec{suffix}")
            assert api.load_spec(path) == spec

    def test_unsupported_extension_rejected(self, tmp_path):
        spec = api.ExperimentSpec(
            pipeline=api.PipelineConfig(algorithm="fss", k=2)
        )
        with pytest.raises(ValueError, match="yaml"):
            api.dump_spec(spec, tmp_path / "spec.yaml")


# ---------------------------------------------------------------------------
# Sweep expansion
# ---------------------------------------------------------------------------

def _base_spec(**kwargs):
    defaults = dict(
        pipeline=api.PipelineConfig(algorithm="jl-fss", k=2, coreset_size=60),
        data=api.DataSpec(name="mnist", n=300, d=64),
        runs=2,
        seed=3,
    )
    defaults.update(kwargs)
    return api.ExperimentSpec(**defaults)


class TestSweepExpansion:
    def test_cartesian_product_in_declaration_order(self):
        sweep = api.SweepSpec(
            base=_base_spec(),
            axes={"quantize_bits": [6, 10], "net": ["ideal", "lossy"]},
        )
        cells = sweep.cells()
        assert sweep.cell_count() == len(cells) == 4
        assert [c.cell_id for c in cells] == [
            "quantize_bits=6,net=ideal", "quantize_bits=6,net=lossy",
            "quantize_bits=10,net=ideal", "quantize_bits=10,net=lossy",
        ]
        assert cells[0].spec.pipeline.quantize_bits == 6
        assert cells[1].spec.network.preset == "lossy"
        # All cells keep the base seed: paired Monte-Carlo runs.
        assert {c.spec.seed for c in cells} == {3}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="quantize_bits"):
            api.SweepSpec(base=_base_spec(), axes={"qt_bits": [6]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            api.SweepSpec(base=_base_spec(), axes={"k": []})

    def test_invalid_cell_raises_at_expansion(self):
        # Sweeping algorithm onto a multi-source name without num_sources
        # must fail loudly when that cell's spec is built.
        base = _base_spec(pipeline=api.PipelineConfig(algorithm="jl-fss", k=2))
        sweep = api.SweepSpec(base=base, axes={"algorithm": ["bklw"]})
        with pytest.raises(ValueError, match="num_sources"):
            sweep.cells()

    def test_kind_foreign_knob_caught_at_expansion(self):
        # Sweeping algorithm onto a kind that rejects a base knob fails
        # with the eager PipelineConfig validation error.
        sweep = api.SweepSpec(base=_base_spec(), axes={"algorithm": ["bklw"]})
        with pytest.raises(ValueError, match="coreset_size"):
            sweep.cells()

    def test_axis_routing_covers_all_sections(self):
        sweep = api.SweepSpec(
            base=_base_spec(num_sources=4),
            axes={"dataset": ["neurips"], "loss": [0.2], "runs": [5],
                  "k": [7]},
        )
        cell = sweep.cells()[0]
        assert cell.spec.data.name == "neurips"
        assert cell.spec.network.loss == pytest.approx(0.2)
        assert cell.spec.runs == 5
        assert cell.spec.pipeline.k == 7

    def test_axisless_sweep_is_one_base_cell(self):
        cells = api.SweepSpec(base=_base_spec()).cells()
        assert len(cells) == 1
        assert cells[0].cell_id == "base"
        assert cells[0].spec == _base_spec()

    def test_apply_axis_overrides_unknown_name(self):
        with pytest.raises(ValueError, match="available"):
            api.apply_axis_overrides(_base_spec(), {"bogus": 1})

    def test_apply_axis_overrides_validates_jointly(self):
        # algorithm=bklw alone would fail (multi-source needs num_sources);
        # paired with a num_sources override the combination is valid and
        # must not be rejected at an intermediate per-section step.
        base = _base_spec(pipeline=api.PipelineConfig(algorithm="jl-fss", k=2))
        spec = api.apply_axis_overrides(
            base, {"algorithm": "bklw", "num_sources": 4}
        )
        assert spec.pipeline.algorithm == "bklw"
        assert spec.num_sources == 4

    def test_scalar_axis_value_is_one_value_axis(self):
        # `net = "lossy"` / `k = 5` in a sweep TOML (missing brackets) must
        # become one-value axes, not iterate the string or crash.
        sweep = api.SweepSpec(
            base=_base_spec(), axes={"net": "lossy", "k": 5}
        )
        assert sweep.axes == (("net", ("lossy",)), ("k", (5,)))
        assert sweep.cell_count() == 1

    def test_duplicate_axis_names_rejected(self):
        # Tuple-form axes could repeat a name, producing a bogus grid that
        # to_dict() would silently collapse after a round-trip.
        with pytest.raises(ValueError, match="duplicate sweep axis"):
            api.SweepSpec(
                base=_base_spec(), axes=(("k", (2, 3)), ("k", (4, 5)))
            )

    def test_sweep_pairs_algorithm_and_num_sources_axes(self):
        sweep = api.SweepSpec(
            base=_base_spec(pipeline=api.PipelineConfig(algorithm="jl-fss", k=2)),
            axes={"algorithm": ["jl-fss", "bklw"], "num_sources": [4]},
        )
        cells = sweep.cells()
        assert [c.spec.pipeline.algorithm for c in cells] == ["jl-fss", "bklw"]
        assert all(c.spec.num_sources == 4 for c in cells)


class TestConfigurationBridge:
    def test_solved_configuration_feeds_pipeline_config(self):
        from repro.core.configuration import configure_joint_reduction

        solved = configure_joint_reduction(
            n=1000, d=50, k=3, error_bound=4.0,
            optimal_cost_lower_bound=50.0, max_norm=1.0,
        )
        overrides = solved.as_pipeline_overrides()
        config = api.PipelineConfig(algorithm="jl-fss-jl", k=3, **overrides)
        assert config.quantize_bits == solved.significant_bits
        assert config.coreset_size == solved.coreset_cardinality
        assert solved.to_dict()["significant_bits"] == solved.significant_bits
