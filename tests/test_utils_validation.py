"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive_int,
    check_weights,
)


class TestCheckMatrix:
    def test_returns_float_2d(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == float
        assert out.shape == (2, 2)

    def test_promotes_1d(self):
        assert check_matrix([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_matrix([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_matrix([[np.inf, 1.0]])

    def test_min_rows_enforced(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((1, 3)), min_rows=2)

    def test_allow_empty(self):
        out = check_matrix(np.zeros((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)


class TestCheckWeights:
    def test_none_gives_unit_weights(self):
        assert np.allclose(check_weights(None, 4), np.ones(4))

    def test_valid_passthrough(self):
        w = check_weights([1.0, 2.0], 2)
        assert np.allclose(w, [1.0, 2.0])

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            check_weights([1.0], 2)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            check_weights([-1.0, 1.0], 2)

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            check_weights([np.nan, 1.0], 2)

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            check_weights(np.ones((2, 2)), 2)


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3, "k") == 3

    def test_numpy_int_accepted(self):
        assert check_positive_int(np.int64(5), "k") == 5

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "k")

    def test_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "k")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0


class TestCheckFraction:
    def test_valid(self):
        assert check_fraction(0.5, "eps") == 0.5

    def test_zero_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "eps")

    def test_one_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "eps")

    def test_inclusive_bounds(self):
        assert check_fraction(0.0, "eps", inclusive_low=True) == 0.0
        assert check_fraction(1.0, "eps", inclusive_high=True) == 1.0

    def test_custom_range(self):
        assert check_fraction(0.3, "eps", high=1.0 / 3.0, inclusive_high=True) == 0.3
        with pytest.raises(ValueError):
            check_fraction(0.4, "eps", high=1.0 / 3.0, inclusive_high=True)
