"""Benchmark: content-addressed stage caching across sweep re-runs.

Two cold/warm pairs, both recorded as rows in ``BENCH_sweep.json``
(uploaded as a CI artifact so the trajectory is comparable across PRs):

* the paper-style quantization sweep (examples/specs/
  quantization_sweep.toml — 8 cells over quantize_bits × network) run
  twice against one stage cache: the warm pass must be >50% cache hits
  and strictly faster;
* a larger multi-axis sweep whose source-side stage work (full-dimension
  FSS on 4000×256) dominates the uncached floor (server solves +
  evaluations): the warm pass must show a ≥2× wall-time reduction.
"""

from __future__ import annotations

import time
from pathlib import Path

from bench_helpers import record_bench
from repro import api

SWEEP_SPEC = (
    Path(__file__).resolve().parent.parent
    / "examples" / "specs" / "quantization_sweep.toml"
)


def _timed_sweep(sweep, cache_dir):
    """One sweep pass against a fresh StageCache handle (no memory-layer
    carry-over between passes; only the on-disk entries persist)."""
    cache = api.StageCache(cache_dir)
    start = time.perf_counter()
    outcomes = api.run_sweep(sweep, cache=cache)
    return outcomes, time.perf_counter() - start, cache.counters


def _row(outcomes, wall_seconds, counters):
    mean_cost = sum(o.summary.mean_normalized_cost for o in outcomes) / len(outcomes)
    return {
        "cells": float(len(outcomes)),
        "wall_seconds": float(wall_seconds),
        "cache_hits": float(counters.hits),
        "cache_misses": float(counters.misses),
        "cache_hit_rate": float(counters.hit_rate),
        "mean_normalized_cost": float(mean_cost),
    }


def _assert_bit_parity(cold, warm):
    assert [o.cell_id for o in warm] == [o.cell_id for o in cold]
    for a, b in zip(cold, warm):
        assert a.summary.mean_normalized_cost == b.summary.mean_normalized_cost
        assert a.summary.mean_normalized_communication == \
            b.summary.mean_normalized_communication
        assert a.run_seeds == b.run_seeds


def test_example_quantization_sweep_warm_rerun(tmp_path):
    """The CI contract: re-running the example sweep is >50% hits and faster."""
    sweep = api.load_spec(SWEEP_SPEC)
    assert isinstance(sweep, api.SweepSpec)
    cache_dir = tmp_path / "stage_cache"

    cold, cold_seconds, cold_counters = _timed_sweep(sweep, cache_dir)
    warm, warm_seconds, warm_counters = _timed_sweep(sweep, cache_dir)

    print(f"\n{SWEEP_SPEC.name}: {len(cold)} cells")
    print(f"cold: {cold_seconds:.3f}s, {cold_counters.hits} hit(s), "
          f"{cold_counters.misses} miss(es)")
    print(f"warm: {warm_seconds:.3f}s, {warm_counters.hits} hit(s), "
          f"{warm_counters.misses} miss(es) "
          f"({cold_seconds / warm_seconds:.1f}x speedup)")
    record_bench("sweep", {
        "quantization_sweep_cold": _row(cold, cold_seconds, cold_counters),
        "quantization_sweep_warm": _row(warm, warm_seconds, warm_counters),
    })

    _assert_bit_parity(cold, warm)
    assert warm_counters.hit_rate > 0.5
    assert warm_counters.misses == 0
    assert warm_seconds < cold_seconds


def test_multi_axis_sweep_speedup(tmp_path):
    """The acceptance bar: a multi-axis sweep re-runs at least 2x faster
    warm, because the expensive distinct work — full-dimension FSS per
    Monte-Carlo run plus the shared reference solve — replays from cache
    and only the uncached floor (server solves, evaluations) remains."""
    base = api.ExperimentSpec(
        pipeline=api.PipelineConfig(algorithm="fss", k=2,
                                    coreset_size=150, pca_rank=20),
        data=api.DataSpec(name="mnist", n=4000, d=256),
        runs=3,
        seed=11,
    )
    sweep = api.SweepSpec(base=base, axes={
        "quantize_bits": [6, 10, 14],
        "net": ["ideal", "lossy"],
    })
    cache_dir = tmp_path / "stage_cache"

    cold, cold_seconds, cold_counters = _timed_sweep(sweep, cache_dir)
    warm, warm_seconds, warm_counters = _timed_sweep(sweep, cache_dir)

    print(f"\nmulti-axis fss sweep: {len(cold)} cells")
    print(f"cold: {cold_seconds:.3f}s, {cold_counters.misses} distinct "
          f"computation(s)")
    print(f"warm: {warm_seconds:.3f}s "
          f"({cold_seconds / warm_seconds:.1f}x speedup)")
    record_bench("sweep", {
        "multi_axis_cold": _row(cold, cold_seconds, cold_counters),
        "multi_axis_warm": _row(warm, warm_seconds, warm_counters),
    })

    _assert_bit_parity(cold, warm)
    assert warm_counters.misses == 0
    assert cold_seconds / warm_seconds >= 2.0
