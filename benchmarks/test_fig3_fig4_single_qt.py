"""E5/E6 — Figures 3 and 4: single-source pipelines with quantization.

The paper sweeps the number of significant bits ``s`` retained by the
rounding quantizer (1..53) for FSS+QT, JL+FSS+QT, FSS+JL+QT, and
JL+FSS+JL+QT and plots, against ``s``: (a) the normalized k-means cost,
(b) the normalized communication cost, and (c) the running time.

Expected shape (paper): the communication cost grows roughly linearly with
``s``; the k-means cost is flat for moderate-to-large ``s`` and only blows up
when ``s`` is very small; the running time is essentially independent of
``s``.  Consequently a properly configured quantizer (moderate ``s``) cuts
communication by roughly 2/3 relative to s = 53 at no cost in quality.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from bench_helpers import (
    MONTE_CARLO_RUNS,
    QT_BITS_GRID,
    print_series,
    run_once,
    single_source_factories,
)
from repro.metrics import ExperimentRunner


def _sweep(points) -> Dict[str, Dict[str, List[float]]]:
    """Run the s-sweep; returns series[metric][algorithm] aligned with QT_BITS_GRID."""
    runner = ExperimentRunner(points, k=2, monte_carlo_runs=max(1, MONTE_CARLO_RUNS - 1), seed=21)
    cost_series: Dict[str, List[float]] = {}
    comm_series: Dict[str, List[float]] = {}
    time_series: Dict[str, List[float]] = {}
    for bits in QT_BITS_GRID:
        factories = single_source_factories(points.shape[1], quantizer_bits=bits)
        result = runner.run_single_source(factories)
        for label in factories:
            cost_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "normalized_cost")))
            )
            comm_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "normalized_communication")))
            )
            time_series.setdefault(label, []).append(
                float(np.mean(result.metric_samples(label, "source_seconds")))
            )
    return {"cost": cost_series, "comm": comm_series, "time": time_series}


def _check_shape(series: Dict[str, Dict[str, List[float]]]) -> None:
    grid = list(QT_BITS_GRID)
    for label, comm in series["comm"].items():
        # (b) Communication shrinks when fewer significant bits are kept.
        assert comm[0] < comm[-1], (label, comm)
        # (a) Moderate quantization does not blow up the k-means cost: the
        # cost at s = 20 stays close to the unquantized cost at s = 53.
        cost = series["cost"][label]
        s20 = grid.index(20)
        assert cost[s20] <= cost[-1] * 1.3 + 0.1, (label, cost)


@pytest.mark.benchmark(group="fig3")
def test_fig3_mnist_qt_sweep(benchmark, mnist_dataset):
    points, _ = mnist_dataset
    series = run_once(benchmark, lambda: _sweep(points))
    print_series("Fig. 3(a) MNIST-like: normalized k-means cost vs s",
                 "s (bits)", QT_BITS_GRID, series["cost"])
    print_series("Fig. 3(b) MNIST-like: normalized communication vs s",
                 "s (bits)", QT_BITS_GRID, series["comm"])
    print_series("Fig. 3(c) MNIST-like: source running time (s) vs s",
                 "s (bits)", QT_BITS_GRID, series["time"])
    _check_shape(series)


@pytest.mark.benchmark(group="fig4")
def test_fig4_neurips_qt_sweep(benchmark, neurips_dataset):
    points, _ = neurips_dataset
    series = run_once(benchmark, lambda: _sweep(points))
    print_series("Fig. 4(a) NeurIPS-like: normalized k-means cost vs s",
                 "s (bits)", QT_BITS_GRID, series["cost"])
    print_series("Fig. 4(b) NeurIPS-like: normalized communication vs s",
                 "s (bits)", QT_BITS_GRID, series["comm"])
    print_series("Fig. 4(c) NeurIPS-like: source running time (s) vs s",
                 "s (bits)", QT_BITS_GRID, series["time"])
    _check_shape(series)
