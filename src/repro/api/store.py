"""Persisted experiment results: JSONL run records with provenance.

Every executed cell becomes one :class:`RunRecord` — the spec that produced
it, a hash of that spec, the per-run Monte-Carlo seeds, the aggregate
:class:`~repro.metrics.experiment.AlgorithmSummary`, every per-run
:class:`~repro.metrics.evaluation.PipelineEvaluation`, and git/version
provenance — appended to a :class:`ResultStore` (one JSON object per line
under ``results/`` by convention).  Stores reload into records, filter on
spec fields, and render paper-style comparison tables.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.metrics.evaluation import PipelineEvaluation
from repro.metrics.experiment import AlgorithmSummary

#: Record format version, bumped on incompatible layout changes.
STORE_VERSION = 1

#: Default metrics rendered by :meth:`ResultStore.compare` (aggregate
#: AlgorithmSummary fields — the paper's three headline columns).
DEFAULT_COMPARE_METRICS = (
    "mean_normalized_cost",
    "mean_normalized_communication",
    "mean_source_seconds",
)


def spec_hash(spec_dict: Mapping[str, Any]) -> str:
    """Stable content hash of a spec dict (canonical JSON, sha256)."""
    canonical = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def provenance() -> Dict[str, Any]:
    """Version/git provenance stamped on every record."""
    import platform

    import numpy

    import repro

    return {
        "repro_version": getattr(repro, "__version__", "unknown"),
        "numpy_version": numpy.__version__,
        "python_version": platform.python_version(),
        "git_commit": _git_commit(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One persisted experiment cell."""

    algorithm: str
    spec: Dict[str, Any]
    summary: Dict[str, Any]
    evaluations: Tuple[Dict[str, Any], ...] = ()
    run_seeds: Tuple[int, ...] = ()
    cell_id: Optional[str] = None
    spec_hash: str = ""
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: Stage-cache accounting for the cell (hits/misses/stored/corrupt);
    #: empty when the cell ran uncached.
    cache: Dict[str, Any] = field(default_factory=dict)
    version: int = STORE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "evaluations", tuple(dict(e) for e in self.evaluations))
        object.__setattr__(self, "run_seeds", tuple(int(s) for s in self.run_seeds))
        if not self.spec_hash:
            object.__setattr__(self, "spec_hash", spec_hash(self.spec))

    # -------------------------------------------------------------- views
    def algorithm_summary(self) -> AlgorithmSummary:
        """Rehydrate the aggregate summary dataclass."""
        return AlgorithmSummary(**self.summary)

    def pipeline_evaluations(self) -> List[PipelineEvaluation]:
        """Rehydrate the per-run evaluations."""
        return [PipelineEvaluation.from_dict(e) for e in self.evaluations]

    def spec_field(self, dotted: str) -> Any:
        """Look up a spec value by dotted path (``"pipeline.k"``) or by bare
        field name searched across the spec sections."""
        node: Any = self.spec
        if "." in dotted:
            for part in dotted.split("."):
                if not isinstance(node, Mapping) or part not in node:
                    return None
                node = node[part]
            return node
        if dotted in self.spec:
            return self.spec[dotted]
        for section in ("pipeline", "data", "network"):
            table = self.spec.get(section)
            if isinstance(table, Mapping) and dotted in table:
                return table[dotted]
        return None

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "cell_id": self.cell_id,
            "algorithm": self.algorithm,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "run_seeds": list(self.run_seeds),
            "summary": self.summary,
            "evaluations": [dict(e) for e in self.evaluations],
            "provenance": self.provenance,
            "cache": dict(self.cache),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ValueError(f"unknown RunRecord fields: {unknown}")
        payload = dict(payload)
        payload["evaluations"] = tuple(payload.get("evaluations", ()))
        payload["run_seeds"] = tuple(payload.get("run_seeds", ()))
        return cls(**payload)


class ResultStore:
    """A JSONL file of :class:`RunRecord` objects (append + load + query)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------- writing
    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creates the file and parents on first write)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return record

    def extend(self, records: Sequence[RunRecord]) -> None:
        for record in records:
            self.append(record)

    # ------------------------------------------------------------- reading
    def load(self) -> List[RunRecord]:
        """All records in append order (empty list for a missing file)."""
        if not self.path.exists():
            return []
        records: List[RunRecord] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{line_number}: invalid JSONL record: {exc}"
                    ) from None
                records.append(RunRecord.from_dict(payload))
        return records

    def __len__(self) -> int:
        return len(self.load())

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.load())

    def filter(self, **criteria: Any) -> List[RunRecord]:
        """Records whose fields match every criterion.

        Criteria match record attributes (``algorithm``, ``cell_id``,
        ``spec_hash``) first, then spec fields by bare or dotted name —
        ``store.filter(algorithm="jl-fss", quantize_bits=10)``.  Dotted
        paths use ``__`` in keyword form (``pipeline__k=5``).
        """
        records = self.load()
        for key, wanted in criteria.items():
            dotted = key.replace("__", ".")
            is_attr = key in ("algorithm", "cell_id", "spec_hash")
            if not is_attr and records and all(
                record.spec_field(dotted) is None for record in records
            ):
                # Spec dicts omit unset fields, so a path absent from EVERY
                # record is a typo, not an empty match.
                raise KeyError(
                    f"unknown filter criterion {key!r}: no record has spec "
                    f"field {dotted!r}; criteria match record attributes "
                    f"(algorithm, cell_id, spec_hash) or spec fields by "
                    f"bare/dotted name"
                )
            matched = []
            for record in records:
                actual = (getattr(record, key) if is_attr
                          else record.spec_field(dotted))
                if actual == wanted:
                    matched.append(record)
            records = matched
        return records

    # ------------------------------------------------------------- tables
    def compare(
        self,
        metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
        records: Optional[Sequence[RunRecord]] = None,
    ) -> "ComparisonTable":
        """Build a comparison table of aggregate metrics across records."""
        return compare_records(
            self.load() if records is None else records, metrics
        )


def _comparison_table(
    entries: Sequence[Tuple[str, str, Mapping[str, Any]]],
    metrics: Sequence[str],
) -> "ComparisonTable":
    """Shared core of ``compare_records``/``compare_outcomes``: one row per
    ``(cell, algorithm, summary mapping)`` entry (unknown metric names raise
    ``KeyError`` with the valid set)."""
    available = tuple(
        f.name for f in dataclasses.fields(AlgorithmSummary) if f.name != "algorithm"
    )
    rows: List[Dict[str, Any]] = []
    for cell, algorithm, summary in entries:
        row: Dict[str, Any] = {"cell": cell, "algorithm": algorithm}
        for metric in metrics:
            if metric not in available:
                raise KeyError(
                    f"unknown summary metric {metric!r}; available: "
                    f"{', '.join(available)}"
                )
            row[metric] = summary.get(metric)
        rows.append(row)
    return ComparisonTable(metrics=tuple(metrics), rows=rows)


def compare_records(
    records: Sequence[RunRecord],
    metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
) -> "ComparisonTable":
    """One comparison row per record: cell id, algorithm, chosen aggregate
    metrics (unknown metric names raise ``KeyError`` with the valid set)."""
    return _comparison_table(
        [(r.cell_id or r.algorithm, r.algorithm, r.summary) for r in records],
        metrics,
    )


def compare_outcomes(
    outcomes: Sequence[Any],
    metrics: Sequence[str] = DEFAULT_COMPARE_METRICS,
) -> "ComparisonTable":
    """Same table as :func:`compare_records`, built straight from in-memory
    :class:`~repro.api.runner.ExperimentOutcome` objects — no RunRecord
    construction (spec hashing, evaluation copies) or provenance stamp."""
    return _comparison_table(
        [(o.cell_id or o.label, o.label, vars(o.summary)) for o in outcomes],
        metrics,
    )


@dataclass(frozen=True)
class ComparisonTable:
    """Rendered-on-demand comparison rows (``str(table)`` → aligned text)."""

    metrics: Tuple[str, ...]
    rows: List[Dict[str, Any]]

    def __str__(self) -> str:
        if not self.rows:
            return "(empty result store)"
        headers = ["cell", "algorithm", *self.metrics]
        formatted = [
            [self._format(row.get(column)) for column in headers]
            for row in self.rows
        ]
        widths = [
            max(len(header), *(len(line[i]) for line in formatted))
            for i, header in enumerate(headers)
        ]
        lines = [
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "  ".join("-" * width for width in widths),
        ]
        for line in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        return "\n".join(lines)

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)


__all__ = [
    "STORE_VERSION",
    "DEFAULT_COMPARE_METRICS",
    "spec_hash",
    "provenance",
    "RunRecord",
    "ResultStore",
    "ComparisonTable",
    "compare_records",
]
