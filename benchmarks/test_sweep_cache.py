"""Benchmark: content-addressed stage caching across sweep re-runs.

Two cold/warm pairs, both recorded as rows in ``BENCH_sweep.json``
(uploaded as a CI artifact so the trajectory is comparable across PRs):

* the paper-style quantization sweep (examples/specs/
  quantization_sweep.toml — 8 cells over quantize_bits × network) run
  twice against one stage cache: the warm pass must be >50% cache hits
  and strictly faster;
* a larger multi-axis sweep whose source-side stage work (full-dimension
  FSS on 4000×256) dominates the uncached floor (server solves +
  evaluations): the warm pass must show a ≥2× wall-time reduction.
"""

from __future__ import annotations

import time
from pathlib import Path

from bench_helpers import record_bench
from repro import api

SWEEP_SPEC = (
    Path(__file__).resolve().parent.parent
    / "examples" / "specs" / "quantization_sweep.toml"
)


def _timed_sweep(sweep, cache_dir):
    """One sweep pass against a fresh StageCache handle (no memory-layer
    carry-over between passes; only the on-disk entries persist)."""
    cache = api.StageCache(cache_dir)
    start = time.perf_counter()
    outcomes = api.run_sweep(sweep, cache=cache)
    return outcomes, time.perf_counter() - start, cache.counters


def _row(outcomes, wall_seconds, counters):
    mean_cost = sum(o.summary.mean_normalized_cost for o in outcomes) / len(outcomes)
    return {
        "cells": float(len(outcomes)),
        "wall_seconds": float(wall_seconds),
        "cache_hits": float(counters.hits),
        "cache_misses": float(counters.misses),
        "cache_hit_rate": float(counters.hit_rate),
        "mean_normalized_cost": float(mean_cost),
    }


def _assert_bit_parity(cold, warm):
    assert [o.cell_id for o in warm] == [o.cell_id for o in cold]
    for a, b in zip(cold, warm):
        assert a.summary.mean_normalized_cost == b.summary.mean_normalized_cost
        assert a.summary.mean_normalized_communication == \
            b.summary.mean_normalized_communication
        assert a.run_seeds == b.run_seeds


def test_example_quantization_sweep_warm_rerun(tmp_path):
    """The CI contract: re-running the example sweep is >50% hits and faster."""
    sweep = api.load_spec(SWEEP_SPEC)
    assert isinstance(sweep, api.SweepSpec)
    cache_dir = tmp_path / "stage_cache"

    cold, cold_seconds, cold_counters = _timed_sweep(sweep, cache_dir)
    warm, warm_seconds, warm_counters = _timed_sweep(sweep, cache_dir)

    print(f"\n{SWEEP_SPEC.name}: {len(cold)} cells")
    print(f"cold: {cold_seconds:.3f}s, {cold_counters.hits} hit(s), "
          f"{cold_counters.misses} miss(es)")
    print(f"warm: {warm_seconds:.3f}s, {warm_counters.hits} hit(s), "
          f"{warm_counters.misses} miss(es) "
          f"({cold_seconds / warm_seconds:.1f}x speedup)")
    record_bench("sweep", {
        "quantization_sweep_cold": _row(cold, cold_seconds, cold_counters),
        "quantization_sweep_warm": _row(warm, warm_seconds, warm_counters),
    })

    _assert_bit_parity(cold, warm)
    assert warm_counters.hit_rate > 0.5
    assert warm_counters.misses == 0
    assert warm_seconds < cold_seconds


def test_multi_axis_sweep_speedup(tmp_path):
    """The acceptance bar: a multi-axis sweep re-runs at least 2x faster
    warm, because the expensive distinct work — full-dimension FSS per
    Monte-Carlo run plus the shared reference solve — replays from cache
    and only the uncached floor (server solves, evaluations) remains."""
    base = api.ExperimentSpec(
        pipeline=api.PipelineConfig(algorithm="fss", k=2,
                                    coreset_size=150, pca_rank=20),
        data=api.DataSpec(name="mnist", n=4000, d=256),
        runs=3,
        seed=11,
    )
    sweep = api.SweepSpec(base=base, axes={
        "quantize_bits": [6, 10, 14],
        "net": ["ideal", "lossy"],
    })
    cache_dir = tmp_path / "stage_cache"

    cold, cold_seconds, cold_counters = _timed_sweep(sweep, cache_dir)
    warm, warm_seconds, warm_counters = _timed_sweep(sweep, cache_dir)

    print(f"\nmulti-axis fss sweep: {len(cold)} cells")
    print(f"cold: {cold_seconds:.3f}s, {cold_counters.misses} distinct "
          f"computation(s)")
    print(f"warm: {warm_seconds:.3f}s "
          f"({cold_seconds / warm_seconds:.1f}x speedup)")
    record_bench("sweep", {
        "multi_axis_cold": _row(cold, cold_seconds, cold_counters),
        "multi_axis_warm": _row(warm, warm_seconds, warm_counters),
    })

    _assert_bit_parity(cold, warm)
    assert warm_counters.misses == 0
    assert cold_seconds / warm_seconds >= 2.0


def test_resume_overhead(tmp_path):
    """Crash-tolerance must be close to free: a durable sweep (fsynced
    store + journal) is compared against a plain one, and a post-crash
    ``resume`` pass — which restores the committed prefix from disk and
    executes only the missing cells — against a full re-run.  All three
    land as rows in BENCH_sweep.json."""
    from repro.utils import faultpoints

    sweep = api.load_spec(SWEEP_SPEC)
    cache_dir = tmp_path / "stage_cache"

    plain, plain_seconds, _ = _timed_sweep(sweep, cache_dir)

    store = api.ResultStore(tmp_path / "durable.jsonl")
    cache = api.StageCache(cache_dir)
    start = time.perf_counter()
    durable = api.run_sweep(sweep, cache=cache, store=store)
    durable_seconds = time.perf_counter() - start
    _assert_bit_parity(plain, durable)

    # Crash mid-sweep (simulated kill at the 5th record commit), resume.
    crashed = api.ResultStore(tmp_path / "crashed.jsonl")
    try:
        faultpoints.arm("store.append", at=5)
        try:
            api.run_sweep(sweep, cache=api.StageCache(cache_dir), store=crashed)
        except faultpoints.FaultInjected:
            pass
    finally:
        faultpoints.disarm()
    committed = len(crashed.load())
    start = time.perf_counter()
    resumed = api.run_sweep(sweep, cache=api.StageCache(cache_dir),
                            store=crashed, resume=True)
    resume_seconds = time.perf_counter() - start
    restored = sum(1 for o in resumed if isinstance(o, api.RestoredOutcome))
    assert restored == committed == 4
    assert len(crashed.load()) == len(durable)

    print(f"\nresume overhead over {SWEEP_SPEC.name}:")
    print(f"plain:   {plain_seconds:.3f}s (no store)")
    print(f"durable: {durable_seconds:.3f}s (fsynced store + journal, "
          f"{durable_seconds / plain_seconds:.2f}x plain)")
    print(f"resume:  {resume_seconds:.3f}s ({restored}/{len(resumed)} cells "
          f"restored, {resume_seconds / durable_seconds:.2f}x a full "
          f"durable run)")
    record_bench("sweep", {
        "resume_plain": {"cells": float(len(plain)),
                         "wall_seconds": float(plain_seconds)},
        "resume_durable": {"cells": float(len(durable)),
                           "wall_seconds": float(durable_seconds)},
        "resume_after_crash": {"cells": float(len(resumed)),
                               "cells_restored": float(restored),
                               "wall_seconds": float(resume_seconds)},
    })

    # A resume that re-runs half the grid must beat a full durable re-run
    # (the restored half costs a disk read, not an execution).
    assert resume_seconds < durable_seconds * 1.5
