"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.utils.linalg import (
    frobenius_tail_energy,
    moore_penrose_inverse,
    pairwise_squared_distances,
    project_onto_top_singular_subspace,
    randomized_svd,
    safe_svd,
    squared_norms,
)


class TestSquaredNorms:
    def test_matches_manual(self):
        x = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 1.0]])
        assert np.allclose(squared_norms(x), [25.0, 0.0, 2.0])

    def test_single_vector_promoted(self):
        assert np.allclose(squared_norms(np.array([3.0, 4.0])), [25.0])


class TestPairwiseSquaredDistances:
    def test_exact_small_case(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [0.0, 2.0]])
        expected = np.array([[0.0, 4.0], [1.0, 5.0]])
        assert np.allclose(pairwise_squared_distances(a, b), expected)

    def test_symmetry_with_self(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 4))
        d2 = pairwise_squared_distances(a, a)
        assert np.allclose(d2, d2.T)
        assert np.allclose(np.diag(d2), 0.0)

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((20, 6)) * 1e-8
        assert np.all(pairwise_squared_distances(a, a) >= 0.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_squared_distances(np.zeros((2, 3)), np.zeros((2, 4)))


class TestSafeSvd:
    def test_reconstruction(self):
        rng = np.random.default_rng(2)
        m = rng.standard_normal((8, 5))
        u, s, vt = safe_svd(m)
        assert np.allclose(u @ np.diag(s) @ vt, m, atol=1e-10)

    def test_singular_values_sorted(self):
        rng = np.random.default_rng(3)
        m = rng.standard_normal((10, 10))
        _, s, _ = safe_svd(m)
        assert np.all(np.diff(s) <= 1e-12)


class TestRandomizedSvd:
    def test_captures_dominant_directions(self):
        rng = np.random.default_rng(4)
        # Rank-2 matrix plus tiny noise.
        base = np.outer(rng.standard_normal(50), rng.standard_normal(30))
        base += np.outer(rng.standard_normal(50), rng.standard_normal(30))
        noisy = base + 1e-8 * rng.standard_normal((50, 30))
        u, s, vt = randomized_svd(noisy, rank=2, seed=0)
        approx = u @ np.diag(s) @ vt
        rel_err = np.linalg.norm(noisy - approx) / np.linalg.norm(noisy)
        assert rel_err < 1e-4

    def test_shapes(self):
        rng = np.random.default_rng(5)
        m = rng.standard_normal((20, 12))
        u, s, vt = randomized_svd(m, rank=3, seed=1)
        assert u.shape == (20, 3)
        assert s.shape == (3,)
        assert vt.shape == (3, 12)

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            randomized_svd(np.eye(3), rank=0)


class TestMoorePenroseInverse:
    def test_pseudoinverse_property(self):
        rng = np.random.default_rng(6)
        m = rng.standard_normal((6, 3))
        pinv = moore_penrose_inverse(m)
        assert np.allclose(m @ pinv @ m, m, atol=1e-8)

    def test_square_invertible_matches_inverse(self):
        m = np.array([[2.0, 0.0], [0.0, 4.0]])
        assert np.allclose(moore_penrose_inverse(m), np.linalg.inv(m))


class TestProjectionHelpers:
    def test_projection_is_idempotent(self):
        rng = np.random.default_rng(7)
        m = rng.standard_normal((30, 10))
        projected, basis = project_onto_top_singular_subspace(m, rank=4)
        reprojected = projected @ basis @ basis.T
        assert np.allclose(projected, reprojected, atol=1e-10)

    def test_basis_orthonormal(self):
        rng = np.random.default_rng(8)
        m = rng.standard_normal((30, 10))
        _, basis = project_onto_top_singular_subspace(m, rank=4)
        assert np.allclose(basis.T @ basis, np.eye(4), atol=1e-10)

    def test_tail_energy_matches_residual(self):
        rng = np.random.default_rng(9)
        m = rng.standard_normal((25, 12))
        projected, _ = project_onto_top_singular_subspace(m, rank=5)
        residual = np.linalg.norm(m - projected) ** 2
        assert np.isclose(frobenius_tail_energy(m, 5), residual, rtol=1e-8)

    def test_tail_energy_zero_beyond_rank(self):
        m = np.eye(4)
        assert frobenius_tail_energy(m, 4) == 0.0
        assert frobenius_tail_energy(m, 10) == 0.0
