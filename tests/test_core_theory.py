"""Tests for repro.core.theory — the Table 2 scaling expressions."""

import pytest

from repro.core.theory import THEORY_TABLE_ROWS, scaling_table, theoretical_costs


class TestTheoreticalCosts:
    def test_all_rows_evaluate(self):
        table = scaling_table(n=60_000, d=784, k=2, epsilon=0.2, m=10)
        assert set(table) == set(THEORY_TABLE_ROWS)
        for costs in table.values():
            assert costs.communication > 0
            assert costs.complexity > 0

    def test_jl_fss_communication_logarithmic_in_n(self):
        small = theoretical_costs("JL+FSS", n=10**4, d=784, k=2, epsilon=0.2)
        large = theoretical_costs("JL+FSS", n=10**8, d=784, k=2, epsilon=0.2)
        # n grows by 10^4, communication only by the log ratio (factor 2).
        assert large.communication / small.communication < 3.0

    def test_fss_communication_linear_in_d(self):
        small = theoretical_costs("FSS", n=10**4, d=100, k=2, epsilon=0.2)
        large = theoretical_costs("FSS", n=10**4, d=10_000, k=2, epsilon=0.2)
        assert large.communication / small.communication == pytest.approx(100.0)

    def test_alg3_combines_best_of_both(self):
        n, d, k, eps = 10**5, 5000, 2, 0.2
        alg1 = theoretical_costs("JL+FSS", n, d, k, eps)
        alg2 = theoretical_costs("FSS+JL", n, d, k, eps)
        alg3 = theoretical_costs("JL+FSS+JL", n, d, k, eps)
        assert alg3.communication == pytest.approx(alg2.communication)
        assert alg3.complexity == pytest.approx(alg1.complexity)

    def test_alg1_complexity_near_linear_vs_fss_superlinear(self):
        n, d, k, eps = 10**5, 5000, 2, 0.2
        fss = theoretical_costs("FSS", n, d, k, eps)
        alg1 = theoretical_costs("JL+FSS", n, d, k, eps)
        assert alg1.complexity < fss.complexity

    def test_jl_bklw_beats_bklw_in_communication_for_large_d(self):
        bklw = theoretical_costs("BKLW", n=10**5, d=10**4, k=2, epsilon=0.2, m=10)
        alg4 = theoretical_costs("JL+BKLW", n=10**5, d=10**4, k=2, epsilon=0.2, m=10)
        assert alg4.communication < bklw.communication

    def test_nr_reference(self):
        nr = theoretical_costs("NR", n=100, d=10, k=2, epsilon=0.2)
        assert nr.communication == 1000
        assert nr.complexity == 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            theoretical_costs("quantum-kmeans", 10, 10, 2, 0.2)

    def test_alias_names(self):
        a = theoretical_costs("Alg1", 1000, 100, 2, 0.2)
        b = theoretical_costs("JL+FSS", 1000, 100, 2, 0.2)
        assert a.communication == b.communication
