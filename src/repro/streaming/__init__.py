"""Streaming: online distributed clustering over batched arrivals.

The paper's protocols are one-shot — each source compresses once, the server
solves once.  This package turns every registered stage composition into a
*streaming* algorithm: sources ingest timestamped batches, maintain
bounded-memory merge-and-reduce coreset trees
(:class:`~repro.streaming.tree.CoresetTree`), and ship only incremental
summaries through the metered network; the server folds them and answers
k-means queries at any point in the stream
(:class:`~repro.streaming.server.StreamingServer`).  The execution engine
that schedules batches and produces reports is
:class:`~repro.core.streaming.StreamingEngine`.
"""

from repro.streaming.tree import Bucket, CoresetTree, TreeDelta
from repro.streaming.source import BucketUpdate, SourceUpdate, StreamingSource
from repro.streaming.server import (
    EmptySummaryError,
    FoldRejectedError,
    FoldResult,
    StreamingServer,
    UnknownSourceError,
    UpdateGapError,
)

__all__ = [
    "Bucket",
    "CoresetTree",
    "TreeDelta",
    "BucketUpdate",
    "SourceUpdate",
    "StreamingSource",
    "StreamingServer",
    "EmptySummaryError",
    "FoldRejectedError",
    "FoldResult",
    "UnknownSourceError",
    "UpdateGapError",
]
