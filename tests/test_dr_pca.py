"""Tests for repro.dr.pca — PCA/SVD projections."""

import numpy as np
import pytest

from repro.dr.pca import PCAProjection, pca_target_dimension


class TestTargetDimension:
    def test_formula(self):
        # t = k + ceil(4k/eps^2) - 1
        assert pca_target_dimension(2, 1.0 / 3.0) == 2 + int(np.ceil(8 / (1.0 / 9.0))) - 1

    def test_grows_with_k(self):
        assert pca_target_dimension(10, 0.5) > pca_target_dimension(2, 0.5)


class TestPCAProjection:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCAProjection(rank=2).transform(np.zeros((3, 4)))

    def test_basis_orthonormal(self, high_dim_points):
        pca = PCAProjection(rank=5).fit(high_dim_points)
        basis = pca.basis
        assert np.allclose(basis.T @ basis, np.eye(5), atol=1e-10)

    def test_transform_shape(self, high_dim_points):
        pca = PCAProjection(rank=7).fit(high_dim_points)
        out = pca.transform(high_dim_points)
        assert out.shape == (high_dim_points.shape[0], 7)

    def test_project_in_place_keeps_dimension(self, high_dim_points):
        pca = PCAProjection(rank=4).fit(high_dim_points)
        projected = pca.project_in_place(high_dim_points)
        assert projected.shape == high_dim_points.shape

    def test_projection_idempotent(self, high_dim_points):
        pca = PCAProjection(rank=4).fit(high_dim_points)
        once = pca.project_in_place(high_dim_points)
        twice = pca.project_in_place(once)
        assert np.allclose(once, twice, atol=1e-8)

    def test_full_rank_projection_is_identity(self, blob_points):
        d = blob_points.shape[1]
        pca = PCAProjection(rank=d).fit(blob_points)
        assert np.allclose(pca.project_in_place(blob_points), blob_points, atol=1e-8)

    def test_residual_energy_decreases_with_rank(self, high_dim_points):
        low = PCAProjection(rank=2).fit(high_dim_points).residual_energy(high_dim_points)
        high = PCAProjection(rank=20).fit(high_dim_points).residual_energy(high_dim_points)
        assert high <= low

    def test_residual_energy_zero_at_full_rank(self, blob_points):
        pca = PCAProjection(rank=blob_points.shape[1]).fit(blob_points)
        assert pca.residual_energy(blob_points) == pytest.approx(0.0, abs=1e-6)

    def test_rank_capped_by_data(self):
        points = np.random.default_rng(0).standard_normal((5, 3))
        pca = PCAProjection(rank=10).fit(points)
        assert pca.effective_rank <= 3

    def test_transmitted_scalars_is_basis_size(self, high_dim_points):
        pca = PCAProjection(rank=6).fit(high_dim_points)
        assert pca.transmitted_scalars == high_dim_points.shape[1] * 6

    def test_approximate_close_to_exact_on_low_rank_data(self):
        rng = np.random.default_rng(3)
        low_rank = rng.standard_normal((200, 5)) @ rng.standard_normal((5, 80))
        exact = PCAProjection(rank=5).fit(low_rank)
        approx = PCAProjection(rank=5, approximate=True, seed=0).fit(low_rank)
        exact_resid = exact.residual_energy(low_rank)
        approx_resid = approx.residual_energy(low_rank)
        assert approx_resid <= exact_resid + 1e-6 * np.linalg.norm(low_rank) ** 2

    def test_inverse_transform_roundtrip_on_subspace(self, high_dim_points):
        pca = PCAProjection(rank=6).fit(high_dim_points)
        coords = pca.transform(high_dim_points)
        reconstructed = pca.inverse_transform(coords)
        assert np.allclose(reconstructed, pca.project_in_place(high_dim_points), atol=1e-8)

    def test_dimension_mismatch_raises(self, high_dim_points):
        pca = PCAProjection(rank=3).fit(high_dim_points)
        with pytest.raises(ValueError):
            pca.transform(np.zeros((2, high_dim_points.shape[1] + 1)))
        with pytest.raises(ValueError):
            pca.inverse_transform(np.zeros((2, 4)))

    def test_fit_transform_equivalence(self, blob_points):
        a = PCAProjection(rank=3).fit_transform(blob_points)
        b = PCAProjection(rank=3).fit(blob_points).transform(blob_points)
        # Sign ambiguity of singular vectors allows per-column sign flips.
        assert np.allclose(np.abs(a), np.abs(b), atol=1e-8)
