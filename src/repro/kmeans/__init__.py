"""Weighted k-means substrate.

This package provides the clustering machinery the paper's pipelines depend
on: cost functions (Eq. 1, 2, 4), k-means++ / D²-sampling seeding, a weighted
Lloyd solver used both at the edge server and as the reference solver for the
optimal-cost denominator, and the bicriteria approximation (adaptive
sampling) used by sensitivity sampling and by the lower bound ``E`` in the
quantizer configuration of Section 6.3.
"""

from repro.kmeans.cost import (
    kmeans_cost,
    weighted_kmeans_cost,
    partition_cost,
    assign_to_centers,
    assign_and_cost,
    cluster_means,
)
from repro.kmeans.seeding import kmeans_plus_plus, d2_sampling
from repro.kmeans.lloyd import WeightedKMeans, KMeansResult
from repro.kmeans.bicriteria import bicriteria_approximation, BicriteriaResult

__all__ = [
    "kmeans_cost",
    "weighted_kmeans_cost",
    "partition_cost",
    "assign_to_centers",
    "assign_and_cost",
    "cluster_means",
    "kmeans_plus_plus",
    "d2_sampling",
    "WeightedKMeans",
    "KMeansResult",
    "bicriteria_approximation",
    "BicriteriaResult",
]
