"""Spec files: TOML/JSON round-tripping for experiment and sweep specs.

``load_spec`` reads a ``.toml`` or ``.json`` file and returns an
:class:`~repro.api.specs.ExperimentSpec` or — when the payload carries a
``base``/``axes`` section — a :class:`~repro.api.specs.SweepSpec`.
``dump_spec`` writes either back out.  TOML reading uses the standard
library ``tomllib``; writing uses a small emitter restricted to the value
shapes specs contain (strings, ints, floats, booleans, flat lists, nested
tables), so no third-party TOML writer is required.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from repro.api.specs import ExperimentSpec, SweepSpec

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None

SpecLike = Union[ExperimentSpec, SweepSpec]


def spec_from_dict(payload: Mapping[str, Any]) -> SpecLike:
    """Build the right spec type from a parsed payload: sweeps carry a
    ``base`` (and usually ``axes``) section, experiments a ``pipeline``."""
    if "base" in payload or "axes" in payload:
        return SweepSpec.from_dict(payload)
    return ExperimentSpec.from_dict(payload)


def load_spec(path: Union[str, Path]) -> SpecLike:
    """Load an experiment or sweep spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        payload = json.loads(text)
    elif path.suffix.lower() == ".toml":
        if tomllib is None:
            raise RuntimeError(
                "TOML specs require Python >= 3.11 (tomllib); "
                "use a .json spec instead"
            )
        payload = tomllib.loads(text)
    else:
        raise ValueError(
            f"unsupported spec format {path.suffix!r} for {path.name}; "
            "use .toml or .json"
        )
    if not isinstance(payload, dict):
        raise ValueError(f"spec file {path.name} must contain a table/object")
    return spec_from_dict(payload)


def dump_spec(spec: SpecLike, path: Union[str, Path]) -> Path:
    """Write a spec to ``path`` (format chosen by the extension)."""
    path = Path(path)
    payload = spec.to_dict()
    if path.suffix.lower() == ".json":
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    elif path.suffix.lower() == ".toml":
        text = dumps_toml(payload)
    else:
        raise ValueError(
            f"unsupported spec format {path.suffix!r} for {path.name}; "
            "use .toml or .json"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Minimal TOML emitter (spec-shaped payloads only).
# ---------------------------------------------------------------------------

def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a dot or exponent ("1.0", not "1").
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings share JSON escaping
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    raise TypeError(f"cannot emit {type(value).__name__} as a TOML value")


def _emit_table(lines: list, table: Mapping[str, Any], prefix: str) -> None:
    scalars = {k: v for k, v in table.items() if not isinstance(v, Mapping)}
    subtables = {k: v for k, v in table.items() if isinstance(v, Mapping)}
    if prefix and (scalars or not subtables):
        lines.append(f"[{prefix}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    if scalars or prefix:
        lines.append("")
    for key, value in subtables.items():
        _emit_table(lines, value, f"{prefix}.{key}" if prefix else key)


def dumps_toml(payload: Mapping[str, Any]) -> str:
    """Serialize a nested dict of spec values to TOML text."""
    lines: list = []
    _emit_table(lines, payload, "")
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


__all__ = ["load_spec", "dump_spec", "spec_from_dict", "dumps_toml", "SpecLike"]
