"""The stage-composition execution engine.

The seed implementations of the paper's algorithms each re-implemented the
same protocol skeleton: time the source computation, meter every transmission
through a :class:`~repro.distributed.network.SimulatedNetwork`, solve
weighted k-means at the server, and lift the centers back through the
inverses of whatever DR maps were applied.  This module owns that skeleton
once, for *any* declarative composition of stages:

* :class:`StagePipeline` executes a list of
  :class:`~repro.stages.base.Stage` objects for a single data source;
* :class:`DistributedStagePipeline` executes
  :class:`~repro.stages.distributed.DistributedStage` objects over an
  :class:`~repro.distributed.cluster.EdgeCluster` of shards.

Both produce the same :class:`~repro.core.report.PipelineReport` as the seed
pipelines — the classes in :mod:`repro.core.pipelines` and
:mod:`repro.core.distributed_pipelines` are now thin factories over stage
compositions, and :mod:`repro.core.registry` registers further compositions
the monolithic implementations could not express.

Protocol sequence (single source)
---------------------------------
1. **Seed handshake** — every stage with ``requires_shared_seed`` derives one
   seed from the master generator, in declaration order, *before* any source
   computation: data-oblivious DR maps are agreed upon by both end points up
   front, which is why describing them costs zero communication.
2. **Source** (timed) — stages transform the working
   :class:`~repro.stages.base.SourceState`; the final state is encoded for
   the wire (subspace summaries as coordinates + basis, coresets as points +
   weights + shift, raw data as-is), quantizing the main payload on send.
3. **Transmission** — every message is metered by the network.
4. **Server** (timed) — reconstruct the summary, solve weighted k-means, and
   pull the centers back through the recorded lifts in reverse stage order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import CacheLike, pack_effect, unpack_effect
from repro.core.report import PipelineReport
from repro.distributed.cluster import EdgeCluster
from repro.distributed.conditions import (
    ConditionLike,
    FaultPlan,
    NetworkCondition,
    resolve_condition,
)
from repro.distributed.network import SimulatedNetwork
from repro.distributed.partition import partition_dataset
from repro.kmeans.lloyd import WeightedKMeans
from repro.quantization.rounding import RoundingQuantizer
from repro.stages.base import SourceState, Stage, StageContext, StageEffect
from repro.stages.distributed import DistributedStage, DistributedStageContext
from repro.stages.qt import QuantizeStage
from repro.utils.clock import perf_counter
from repro.utils.parallel import resolve_jobs
from repro.utils.random import SeedLike, as_generator, derive_seed
from repro.utils.validation import check_fraction, check_matrix, check_positive_int

_SOURCE = "source-0"


@dataclass
class WireSummary:
    """A source state encoded for transmission.

    ``messages`` are ``(tag, payload, significant_bits)`` triples in
    transmission order; ``decode`` reconstructs the point set the server
    solves on (run inside the server's timed section).
    """

    messages: List[Tuple[str, object, Optional[int]]]
    decode: Callable[[], np.ndarray]
    weights: Optional[np.ndarray]
    cardinality: int
    dimension: int
    quantizer_bits: Optional[int]


def encode_for_wire(state: SourceState) -> WireSummary:
    """Encode a source state into the paper's wire formats.

    * raw data → the (optionally quantized) matrix;
    * subspace summary → per-point subspace coordinates (quantized) plus the
      basis at full precision (Theorem 4.1's FSS format);
    * coreset → points (quantized) plus weights and the shift Δ at full
      precision (Section 6.2: only the points are quantized).
    """
    quantizer = state.wire_quantizer
    bits: Optional[int] = None
    if state.subspace is not None:
        basis = state.subspace.basis  # (d_current, t)
        payload = state.points @ basis
        if quantizer is not None:
            payload = quantizer.quantize(payload)
            bits = quantizer.significant_bits
        tag = "pca-coords" if state.is_raw else "coreset-coords"
        messages: List[Tuple[str, object, Optional[int]]] = [
            (tag, payload, bits),
            ("pca-basis", basis, None),
        ]
        decode = lambda: payload @ basis.T  # noqa: E731 - captured payload/basis
        dimension = int(basis.shape[1])
    else:
        payload = state.points
        if quantizer is not None:
            payload = quantizer.quantize(payload)
            bits = quantizer.significant_bits
        tag = "raw-data" if state.is_raw else "coreset-points"
        messages = [(tag, payload, bits)]
        decode = lambda: payload  # noqa: E731
        dimension = int(payload.shape[1])
    if not state.is_raw:
        messages.append(("coreset-weights", state.weights, None))
        messages.append(("coreset-shift", float(state.shift), None))
    return WireSummary(
        messages=messages,
        decode=decode,
        weights=state.weights,
        cardinality=state.cardinality,
        dimension=dimension,
        quantizer_bits=bits,
    )


class _MeteredContext(StageContext):
    """A :class:`StageContext` that counts ``derive_seed`` draws.

    The stage cache stores each stage's draw count so that a cache hit can
    *burn* the same number of draws from the master generator — leaving
    every downstream draw (later stages, the server solver seed)
    bit-identical to a cache-cold run.  Deliberately not a dataclass: a new
    defaulted field would disturb subclass field ordering.
    """

    draws: int = 0

    def derive_seed(self) -> int:
        self.draws += 1
        return super().derive_seed()


class StagePipeline:
    """Execute a composition of stages for a single data source.

    Parameters
    ----------
    stages:
        The stage composition to execute.  Subclasses may instead override
        :meth:`build_stages` (the eight paper pipelines do, deriving their
        stages from the classic constructor arguments).
    k:
        Number of clusters.
    epsilon, delta:
        Accuracy / confidence parameters handed to every stage for derived
        defaults.
    quantizer:
        Optional rounding quantizer; sugar for appending a
        :class:`~repro.stages.qt.QuantizeStage` (the +QT variants of
        Section 6).
    server_n_init, server_max_iterations:
        Parameters of the server-side weighted k-means solver.
    seed:
        Master seed controlling every random choice in the pipeline.
    name:
        Report label; defaults to the class-level ``name``.
    network:
        Simulated-network condition: a
        :class:`~repro.distributed.conditions.NetworkCondition`, a preset
        name (``"ideal"``, ``"lossy"``, ``"edge-wan"``), or ``None`` for the
        ideal wire.  Under ``ideal`` every pipeline is bit-identical to the
        condition-free implementation.
    fault_plan:
        Optional scripted node failures (dropout / flaky / stragglers).
    retries:
        Override of the condition's per-message retransmission budget.
    network_seed:
        Override of the condition's loss/jitter seed (network randomness
        never touches the pipeline's master generator).
    stage_cache:
        Optional :class:`~repro.core.cache.StageCache` (or a per-cell
        :class:`~repro.core.cache.StageCacheView`).  When set, every
        ``cacheable`` stage is resolved through content-addressed
        memoization: the stage's output is loaded from the cache when its
        prefix key hits, and computed-then-stored otherwise.  Results are
        bit-identical with and without the cache — hits replay the exact
        number of master-generator draws the stage would have consumed.
    """

    #: Human-readable algorithm name; subclasses or ``name=`` override.
    name: str = "stages"

    def __init__(
        self,
        stages: Optional[Sequence[Stage]] = None,
        *,
        k: int,
        epsilon: float = 0.2,
        delta: float = 0.1,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        server_max_iterations: int = 100,
        seed: SeedLike = None,
        name: Optional[str] = None,
        network: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        retries: Optional[int] = None,
        network_seed: Optional[int] = None,
        stage_cache: Optional[CacheLike] = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.delta = check_fraction(delta, "delta")
        self.quantizer = quantizer
        self.server_n_init = check_positive_int(server_n_init, "server_n_init")
        self.server_max_iterations = check_positive_int(
            server_max_iterations, "server_max_iterations"
        )
        self.network_condition: NetworkCondition = resolve_condition(
            network
        ).with_overrides(retries=retries, seed=network_seed)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.stage_cache = stage_cache
        self._rng = as_generator(seed)
        self._stages = None if stages is None else list(stages)
        if name is not None:
            self.name = str(name)

    # -------------------------------------------------------------- assembly
    def build_stages(self) -> List[Stage]:
        """Return the stage composition for one run.

        The default returns the stages given at construction; the concrete
        paper pipelines override this to derive their composition from the
        classic constructor arguments.
        """
        if self._stages is None:
            raise NotImplementedError(
                f"{type(self).__name__} must be given stages or override build_stages()"
            )
        return list(self._stages)

    def _wire_stages(self) -> List[Stage]:
        stages = self.build_stages()
        if self.quantizer is not None:
            stages.append(QuantizeStage(self.quantizer))
        return stages

    def _server_solver(self, seed: SeedLike) -> WeightedKMeans:
        return WeightedKMeans(
            k=self.k,
            n_init=self.server_n_init,
            max_iterations=self.server_max_iterations,
            seed=seed,
        )

    @property
    def quantizer_bits(self) -> Optional[int]:
        return None if self.quantizer is None else self.quantizer.significant_bits

    # ------------------------------------------------------------------ API
    def run(self, points: np.ndarray) -> PipelineReport:
        """Execute the composition on a dataset held by a single source.

        Under a lossy condition the wire messages retry up to the budget;
        with only one source there is no partial participation to fall back
        to, so an exhausted budget propagates as
        :class:`~repro.distributed.conditions.DeliveryError`.
        """
        points = check_matrix(points, "points")
        network = SimulatedNetwork(
            condition=self.network_condition, fault_plan=self.fault_plan
        )
        cache = self.stage_cache
        context_cls = StageContext if cache is None else _MeteredContext
        ctx = context_cls(
            k=self.k, epsilon=self.epsilon, delta=self.delta, rng=self._rng
        )
        stages = self._wire_stages()

        # Seed handshake: pre-shared randomness is agreed before the protocol
        # runs, so data-oblivious maps cost zero communication.
        for stage in stages:
            stage.handshake(ctx)

        # ---------------------------------------------------------- source
        source_start = perf_counter()
        state = SourceState(points=points)
        lifts = []
        details: Dict[str, float] = {}
        key = None if cache is None else cache.root_key(
            points, self.k, self.epsilon, self.delta
        )
        for stage in stages:
            if cache is None:
                effect = stage.apply_at_source(state, ctx)
            else:
                # The chain key is extended BEFORE the stage draws from the
                # master generator: it covers the rng position the stage
                # starts from, so equal keys guarantee equal outputs.
                key = cache.chain_key(key, stage, ctx.rng)
                if stage.cacheable:
                    effect = self._cached_apply(cache, key, stage, state, ctx)
                else:
                    effect = stage.apply_at_source(state, ctx)
            state = effect.state
            if effect.lift is not None:
                lifts.append(effect.lift)
            details.update(effect.details)
        wire = encode_for_wire(state)
        source_seconds = perf_counter() - source_start

        # One batched call for the whole summary: bit-identical messages,
        # with the per-send link/fault-plan resolution hoisted out.
        network.send_many(
            _SOURCE, "server",
            [(tag, payload, bits) for tag, payload, bits in wire.messages],
        )
        network.advance_round()

        # ---------------------------------------------------------- server
        server_start = perf_counter()
        summary_points = wire.decode()
        solver = self._server_solver(ctx.derive_seed())
        result = solver.fit(summary_points, wire.weights)
        centers = result.centers
        for lift in reversed(lifts):
            centers = lift(centers)
        server_seconds = perf_counter() - server_start

        report = PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=network.uplink_scalars(),
            communication_bits=network.uplink_bits(),
            source_seconds=source_seconds,
            server_seconds=server_seconds,
            summary_cardinality=wire.cardinality,
            summary_dimension=wire.dimension,
            quantizer_bits=wire.quantizer_bits,
            participating_sources=1,
            failed_sources=0,
            retransmissions=network.retransmissions(),
            messages_lost=network.lost_messages(),
            simulated_network_seconds=network.simulated_seconds(),
            tag_scalars=network.log.scalars_by_tag(),
        )
        return report.with_detail(**details)

    def _cached_apply(
        self,
        cache: CacheLike,
        key: str,
        stage: Stage,
        state: SourceState,
        ctx: "_MeteredContext",
    ) -> "StageEffect":
        """Resolve one cacheable stage through the content-addressed cache.

        The per-key lock makes concurrent cells racing on the same prefix
        dedupe in-process: the first computes and stores, the rest block and
        hit.  The wait is bounded (``StageCache.lock_timeout``): a holder
        wedged mid-compute degrades dedupe to double-compute, never to a
        deadlocked sweep.  A stored entry that cannot be honoured (corrupt
        file, version skew, unbuildable lift) falls through to
        recomputation — the cache degrades to a slower run, never to a
        wrong or crashed one.
        """
        with cache.locked(key):
            payload = cache.lookup(key)
            if payload is not None:
                rebuilt = unpack_effect(payload, stage, state)
                if rebuilt is not None:
                    effect, seed_draws = rebuilt
                    # Burn the draws the stage would have consumed so every
                    # downstream draw stays bit-identical to a cold run.
                    for _ in range(seed_draws):
                        ctx.derive_seed()
                    cache.count_hit()
                    return effect
            draws_before = ctx.draws
            effect = stage.apply_at_source(state, ctx)
            stored = False
            try:
                cache.store(key, pack_effect(effect, ctx.draws - draws_before))
                stored = True
            except OSError:
                pass  # unwritable cache directory: run uncached
            cache.count_miss(stored=stored)
            return effect


class DistributedStagePipeline:
    """Execute a composition of distributed stages over per-source shards.

    Owns the full multi-source skeleton: cluster construction, the seed
    handshake, per-stage execution through the metered network, the server's
    weighted k-means solve on the stage-produced coreset, lift-back, and the
    report with the paper's parallel-complexity accounting (``source_seconds``
    is the *maximum* per-source computation time; the per-source total is in
    ``details``).
    """

    name: str = "stages (distributed)"

    def __init__(
        self,
        stages: Optional[Sequence[DistributedStage]] = None,
        *,
        k: int,
        epsilon: float = 1.0 / 3.0,
        delta: float = 0.1,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        seed: SeedLike = None,
        name: Optional[str] = None,
        jobs: Optional[int] = None,
        network: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        retries: Optional[int] = None,
        network_seed: Optional[int] = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(
            epsilon, "epsilon", high=1.0 / 3.0, inclusive_high=True
        )
        self.delta = check_fraction(delta, "delta")
        self.quantizer = quantizer
        self.server_n_init = check_positive_int(server_n_init, "server_n_init")
        #: Worker threads for the per-source compute sections (``None``
        #: consults ``REPRO_JOBS``; 1 = sequential; 0 = all cores).  Results
        #: are identical for every value — only wall-clock changes.
        self.jobs = resolve_jobs(jobs)
        #: Simulated-network condition (preset name / NetworkCondition /
        #: None → ideal) with optional retry/seed overrides applied, plus the
        #: scripted fault plan.  See :mod:`repro.distributed.conditions`.
        self.network_condition: NetworkCondition = resolve_condition(
            network
        ).with_overrides(retries=retries, seed=network_seed)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._rng = as_generator(seed)
        self._stages = None if stages is None else list(stages)
        if name is not None:
            self.name = str(name)

    # -------------------------------------------------------------- assembly
    def build_stages(self) -> List[DistributedStage]:
        if self._stages is None:
            raise NotImplementedError(
                f"{type(self).__name__} must be given stages or override build_stages()"
            )
        return list(self._stages)

    @property
    def quantizer_bits(self) -> Optional[int]:
        return None if self.quantizer is None else self.quantizer.significant_bits

    # ------------------------------------------------------------------ API
    def run(self, shards: Sequence[np.ndarray]) -> PipelineReport:
        """Execute the composition over per-source shards of the dataset."""
        shards = [check_matrix(s, "shard") for s in shards]
        if not shards:
            raise ValueError("at least one shard is required")
        stages = self.build_stages()
        ctx = DistributedStageContext(
            k=self.k,
            epsilon=self.epsilon,
            delta=self.delta,
            rng=self._rng,
            quantizer=self.quantizer,
            original_dimension=int(shards[0].shape[1]),
            total_cardinality=int(sum(s.shape[0] for s in shards)),
            min_cardinality=int(min(s.shape[0] for s in shards)),
            num_sources=len(shards),
            jobs=self.jobs,
        )

        # Seed handshake before the cluster exists: pre-shared randomness is
        # part of deployment configuration, not of the protocol run.
        for stage in stages:
            stage.handshake(ctx)

        cluster = EdgeCluster.from_shards(
            shards,
            k=self.k,
            seed=derive_seed(self._rng),
            server_n_init=self.server_n_init,
            condition=self.network_condition,
            fault_plan=self.fault_plan,
        )

        coreset = None
        lifts = []
        details: Dict[str, float] = {}
        for stage in stages:
            effect = stage.apply_to_cluster(cluster, ctx)
            if effect.coreset is not None:
                coreset = effect.coreset
            if effect.lift is not None:
                lifts.append(effect.lift)
            details.update(effect.details)
        if coreset is None:
            raise RuntimeError(
                "the stage composition produced no summary for the server "
                "(it needs a CR / gather stage)"
            )

        # ---------------------------------------------------------- server
        server_start = perf_counter()
        result = cluster.server.solve_kmeans(coreset)
        centers = result.centers
        for lift in reversed(lifts):
            centers = lift(centers)
        server_seconds = perf_counter() - server_start

        failed = len(cluster.failed_source_ids)
        report = PipelineReport(
            algorithm=self.name,
            centers=centers,
            communication_scalars=cluster.network.uplink_scalars(),
            communication_bits=cluster.network.uplink_bits(),
            source_seconds=cluster.max_source_compute_seconds(),
            server_seconds=server_seconds + cluster.server.compute_seconds,
            summary_cardinality=coreset.size,
            summary_dimension=cluster.dimension,
            quantizer_bits=self.quantizer_bits,
            participating_sources=cluster.num_sources - failed,
            failed_sources=failed,
            retransmissions=cluster.network.retransmissions(),
            messages_lost=cluster.network.lost_messages(),
            simulated_network_seconds=cluster.network.simulated_seconds(),
            tag_scalars=cluster.network.log.scalars_by_tag(),
        )
        return report.with_detail(
            total_source_seconds=cluster.total_source_compute_seconds(),
            num_sources=cluster.num_sources,
            **details,
        )

    def run_on_dataset(
        self,
        points: np.ndarray,
        num_sources: int,
        strategy: str = "random",
        partition_seed: SeedLike = None,
    ) -> PipelineReport:
        """Convenience wrapper: partition ``points`` and run the pipeline."""
        points = check_matrix(points, "points")
        seed = partition_seed if partition_seed is not None else derive_seed(self._rng)
        indices = partition_dataset(points, num_sources, strategy=strategy, seed=seed)
        return self.run([points[idx] for idx in indices])
