"""Unit tests for the stage protocol and the concrete DR/CR/QT stages."""

import numpy as np
import pytest

from repro.core.engine import StagePipeline, encode_for_wire
from repro.stages import (
    FSSStage,
    JLStage,
    PCAStage,
    QuantizeStage,
    SensitivityStage,
    SourceState,
    StageContext,
    UniformStage,
)
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.random import as_generator


@pytest.fixture()
def ctx():
    return StageContext(k=3, epsilon=0.2, delta=0.1, rng=as_generator(7))


@pytest.fixture()
def raw_state(high_dim_points):
    return SourceState(points=high_dim_points)


def _handshaken(stage, ctx):
    stage.handshake(ctx)
    return stage


class TestSourceState:
    def test_raw_until_weighted(self, raw_state):
        assert raw_state.is_raw
        weighted = raw_state.evolve(weights=np.ones(raw_state.cardinality))
        assert not weighted.is_raw

    def test_evolve_preserves_other_fields(self, raw_state):
        changed = raw_state.evolve(shift=3.0)
        assert changed.shift == 3.0
        assert changed.points is raw_state.points


class TestJLStage:
    def test_requires_handshake(self, raw_state, ctx):
        with pytest.raises(RuntimeError):
            JLStage(10).apply_at_source(raw_state, ctx)

    def test_projects_and_registers_lift(self, raw_state, ctx):
        stage = _handshaken(JLStage(10), ctx)
        effect = stage.apply_at_source(raw_state, ctx)
        assert effect.state.dimension == 10
        assert effect.lift is not None
        lifted = effect.lift(effect.state.points[:5])
        assert lifted.shape == (5, raw_state.dimension)

    def test_explicit_dimension_capped_at_input(self, raw_state, ctx):
        stage = _handshaken(JLStage(10_000), ctx)
        effect = stage.apply_at_source(raw_state, ctx)
        assert effect.state.dimension == raw_state.dimension

    def test_clears_recorded_subspace(self, raw_state, ctx):
        pca_effect = PCAStage(5).apply_at_source(raw_state, ctx)
        assert pca_effect.state.subspace is not None
        jl = _handshaken(JLStage(10), ctx)
        assert jl.apply_at_source(pca_effect.state, ctx).state.subspace is None


class TestPCAStage:
    def test_projects_in_place_and_accumulates_shift(self, raw_state, ctx):
        effect = PCAStage(5).apply_at_source(raw_state, ctx)
        state = effect.state
        # In-place projection keeps the ambient dimension but moves energy
        # into the shift.
        assert state.dimension == raw_state.dimension
        assert state.shift > 0.0
        assert state.subspace is not None
        assert state.subspace.effective_rank == 5


class TestCRStages:
    @pytest.mark.parametrize("stage_cls", [SensitivityStage, UniformStage])
    def test_sampling_produces_weighted_coreset(self, stage_cls, raw_state, ctx):
        effect = stage_cls(40).apply_at_source(raw_state, ctx)
        state = effect.state
        assert not state.is_raw
        assert state.cardinality == 40
        assert state.weights.shape == (40,)
        # Deterministic total weight: the coreset stands in for all n points.
        assert state.weights.sum() == pytest.approx(raw_state.cardinality)

    def test_fss_stage_records_subspace(self, raw_state, ctx):
        effect = FSSStage(size=40, pca_rank=6).apply_at_source(raw_state, ctx)
        state = effect.state
        assert state.cardinality == 40
        assert state.subspace.effective_rank == 6
        assert state.shift > 0.0

    def test_sampling_after_pca_keeps_subspace(self, raw_state, ctx):
        pca_state = PCAStage(6).apply_at_source(raw_state, ctx).state
        ss_state = SensitivityStage(40).apply_at_source(pca_state, ctx).state
        assert ss_state.subspace is pca_state.subspace
        assert ss_state.shift >= pca_state.shift


class TestQuantizeStage:
    def test_arms_wire_quantizer(self, raw_state, ctx):
        effect = QuantizeStage(8).apply_at_source(raw_state, ctx)
        assert effect.state.wire_quantizer.significant_bits == 8

    def test_accepts_quantizer_instance(self, raw_state, ctx):
        quantizer = RoundingQuantizer(12)
        effect = QuantizeStage(quantizer).apply_at_source(raw_state, ctx)
        assert effect.state.wire_quantizer is quantizer


class TestWireEncoding:
    def test_raw_state_single_message(self, raw_state):
        wire = encode_for_wire(raw_state)
        tags = [tag for tag, _, _ in wire.messages]
        assert tags == ["raw-data"]
        assert wire.quantizer_bits is None

    def test_coreset_without_subspace(self, raw_state, ctx):
        state = UniformStage(30).apply_at_source(raw_state, ctx).state
        wire = encode_for_wire(state)
        assert [tag for tag, _, _ in wire.messages] == [
            "coreset-points", "coreset-weights", "coreset-shift",
        ]

    def test_subspace_summary_ships_coords_plus_basis(self, raw_state, ctx):
        state = FSSStage(size=30, pca_rank=5).apply_at_source(raw_state, ctx).state
        wire = encode_for_wire(state)
        tags = [tag for tag, _, _ in wire.messages]
        assert tags == [
            "coreset-coords", "pca-basis", "coreset-weights", "coreset-shift",
        ]
        coords = wire.messages[0][1]
        assert coords.shape == (30, 5)
        assert wire.dimension == 5
        # Server-side reconstruction embeds the coords back into ambient
        # coordinates.
        assert wire.decode().shape == (30, raw_state.dimension)

    def test_quantizer_applies_to_main_payload_only(self, raw_state, ctx):
        state = FSSStage(size=30, pca_rank=5).apply_at_source(raw_state, ctx).state
        state = QuantizeStage(6).apply_at_source(state, ctx).state
        wire = encode_for_wire(state)
        bits = {tag: b for tag, _, b in wire.messages}
        assert bits["coreset-coords"] == 6
        assert bits["pca-basis"] is None
        assert bits["coreset-weights"] is None
        assert wire.quantizer_bits == 6


class TestAdHocCompositions:
    """The engine must execute compositions the seed code could not express."""

    def test_empty_composition_is_nr(self, high_dim_points):
        n, d = high_dim_points.shape
        report = StagePipeline([], k=3, seed=0, name="NR (ad hoc)").run(high_dim_points)
        assert report.algorithm == "NR (ad hoc)"
        assert report.communication_scalars == n * d

    def test_pca_ss_matches_fss_wire_cost(self, high_dim_points):
        """PCA+SS recomposes FSS from primitives: identical wire geometry."""
        from repro.core.pipelines import FSSPipeline

        fss = FSSPipeline(k=3, seed=0, coreset_size=40, pca_rank=6).run(high_dim_points)
        recomposed = StagePipeline(
            [PCAStage(6), SensitivityStage(40)], k=3, seed=0, name="PCA+SS"
        ).run(high_dim_points)
        assert recomposed.communication_scalars == fss.communication_scalars
        assert recomposed.summary_dimension == fss.summary_dimension

    def test_double_jl_uniform_qt(self, high_dim_points):
        """A three-stage novel composition runs end to end with lift-back."""
        pipeline = StagePipeline(
            [JLStage(20), UniformStage(30), JLStage(10), QuantizeStage(8)],
            k=3, seed=5, name="JL+Uniform+JL+QT",
        )
        report = pipeline.run(high_dim_points)
        assert report.centers.shape == (3, high_dim_points.shape[1])
        assert np.all(np.isfinite(report.centers))
        assert report.summary_dimension == 10
        assert report.quantizer_bits == 8
        assert report.communication_bits < report.communication_scalars * 64

    def test_stageless_pipeline_requires_stages(self, high_dim_points):
        with pytest.raises(NotImplementedError):
            StagePipeline(k=3).run(high_dim_points)
