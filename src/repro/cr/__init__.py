"""Cardinality reduction (CR): coreset constructions for k-means.

The paper's CR primitive is the FSS coreset (Feldman–Schmidt–Sohler,
reference [11], Theorem 3.2): project the data onto its top principal
subspace to bound the intrinsic dimension, then run sensitivity sampling on
the projected points, carrying the discarded energy as a constant shift Δ in
the generalized coreset definition (Definition 3.2).

Also provided: plain sensitivity sampling (used directly by disSS in the
distributed setting) and a uniform-sampling coreset as an ablation baseline.
"""

from repro.cr.coreset import Coreset
from repro.cr.sensitivity import SensitivitySampler, sensitivity_sample_size
from repro.cr.fss import FSSCoreset, fss_coreset_size
from repro.cr.uniform import UniformCoreset

__all__ = [
    "Coreset",
    "SensitivitySampler",
    "sensitivity_sample_size",
    "FSSCoreset",
    "fss_coreset_size",
    "UniformCoreset",
]
