"""The :class:`Topology` spec: who folds into whom.

A topology is an immutable child → parent map over node identifiers:
sources are ``"source-<i>"``, mid-tree aggregators are
``"agg-<level>-<index>"``, and the root parent is always the server.  The
constructors guarantee a deterministic shape for a given ``(num_sources,
fan_in, depth)`` — source ``i`` always lands on aggregator ``i // fan_in``
of the first layer, and so on upward — so a fixed (topology, seed) pair
reproduces bit-identical runs.

The star is the degenerate tree with no aggregators; engines treat it as
"no topology" and keep the exact flat code path.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.distributed.conditions import AGGREGATOR_PREFIX, SERVER_ID
from repro.utils.validation import check_positive_int


def is_aggregator_id(node_id: str) -> bool:
    """True for mid-tree aggregator identifiers (``"agg-..."``)."""
    return str(node_id).startswith(AGGREGATOR_PREFIX)


def source_id(index: int) -> str:
    """Canonical identifier of source ``index`` (``"source-<i>"``)."""
    return f"source-{int(index)}"


def _sort_key(node_id: str) -> Tuple:
    """Natural sort: numeric components compare numerically."""
    parts = node_id.split("-")
    return tuple(int(p) if p.isdigit() else p for p in parts)


class Topology:
    """An immutable aggregation topology over ``num_sources`` sources.

    Parameters
    ----------
    parents:
        Child → parent map.  Keys must be exactly the sources
        ``source-0 .. source-<m-1>`` plus every aggregator that appears as
        a parent; parent values are aggregator ids or :data:`SERVER_ID`.
        The graph must be a forest rooted at the server (every node has one
        parent, no cycles, no childless aggregators).
    """

    def __init__(self, parents: Dict[str, str]) -> None:
        self._parents = {str(c): str(p) for c, p in parents.items()}
        self._children: Dict[str, List[str]] = {}
        for child, parent in self._parents.items():
            self._children.setdefault(parent, []).append(child)
        for parent in self._children:
            self._children[parent].sort(key=_sort_key)
        self._validate()
        self._levels = self._compute_levels()
        #: Aggregators in deterministic upward processing order: ascending
        #: level, then natural id order — every child is emitted before its
        #: parent aggregator runs.
        self.aggregator_ids: Tuple[str, ...] = tuple(
            sorted(
                (n for n in self._parents if is_aggregator_id(n)),
                key=lambda n: (self._levels[n], _sort_key(n)),
            )
        )
        self.source_ids: Tuple[str, ...] = tuple(
            source_id(i) for i in range(self.num_sources)
        )

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        sources = [n for n in self._parents if not is_aggregator_id(n)]
        for node in sources:
            if not node.startswith("source-"):
                raise ValueError(
                    f"unrecognized node id {node!r}: sources are "
                    f"'source-<i>', aggregators '{AGGREGATOR_PREFIX}...'"
                )
        indices = set()
        for node in sources:
            suffix = node[len("source-"):]
            if not suffix.isdigit():
                raise ValueError(f"malformed source id {node!r}")
            indices.add(int(suffix))
        if not indices:
            raise ValueError("a topology needs at least one source")
        if indices != set(range(len(indices))):
            raise ValueError(
                "source ids must be contiguous source-0 .. source-<m-1>; "
                f"got {sorted(indices)}"
            )
        self.num_sources = len(indices)
        for child, parent in self._parents.items():
            if parent == SERVER_ID:
                continue
            if not is_aggregator_id(parent):
                raise ValueError(
                    f"{child!r} names parent {parent!r}, which is neither "
                    f"the server nor an aggregator"
                )
            if parent not in self._parents:
                raise ValueError(
                    f"{child!r} names parent {parent!r}, which has no "
                    f"parent entry of its own (dangling aggregator)"
                )
        for node in self._parents:
            if is_aggregator_id(node) and not self._children.get(node):
                raise ValueError(f"aggregator {node!r} has no children")
        # Every parent chain must reach the server without revisiting a node.
        for node in self._parents:
            seen = {node}
            cursor = self._parents[node]
            while cursor != SERVER_ID:
                if cursor in seen:
                    raise ValueError(f"cycle through {cursor!r}")
                seen.add(cursor)
                cursor = self._parents[cursor]

    def _compute_levels(self) -> Dict[str, int]:
        levels: Dict[str, int] = {}

        def level_of(node: str) -> int:
            if node in levels:
                return levels[node]
            if not is_aggregator_id(node):
                levels[node] = 0
                return 0
            value = 1 + max(level_of(c) for c in self._children[node])
            levels[node] = value
            return value

        for node in self._parents:
            level_of(node)
        return levels

    # ---------------------------------------------------------- constructors
    @classmethod
    def star(cls, num_sources: int) -> "Topology":
        """Every source uplinks straight to the server (the flat baseline)."""
        m = check_positive_int(num_sources, "num_sources")
        return cls({source_id(i): SERVER_ID for i in range(m)})

    @classmethod
    def balanced(
        cls,
        num_sources: int,
        fan_in: int,
        depth: Optional[int] = None,
    ) -> "Topology":
        """A balanced tree: contiguous blocks of ``fan_in`` children per
        aggregator, layered until the top layer fits the server's fan-in.

        ``depth`` forces an exact number of aggregation layers (0 = star);
        when ``None``, layers are added while a layer has more than
        ``fan_in`` nodes — so ``num_sources <= fan_in`` degenerates to the
        star and the server itself never takes more than ``fan_in``
        children.
        """
        m = check_positive_int(num_sources, "num_sources")
        fan_in = check_positive_int(fan_in, "fan_in")
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        if depth is not None and depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        parents: Dict[str, str] = {}
        current = [source_id(i) for i in range(m)]
        level = 0
        while True:
            if depth is None:
                if len(current) <= fan_in:
                    break
            elif level >= depth:
                break
            level += 1
            width = math.ceil(len(current) / fan_in)
            layer = [f"{AGGREGATOR_PREFIX}{level}-{j}" for j in range(width)]
            for idx, child in enumerate(current):
                parents[child] = layer[idx // fan_in]
            current = layer
        for child in current:
            parents[child] = SERVER_ID
        return cls(parents)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "Topology":
        """Build from explicit ``(child, parent)`` pairs."""
        parents: Dict[str, str] = {}
        for child, parent in edges:
            child, parent = str(child), str(parent)
            if child in parents and parents[child] != parent:
                raise ValueError(
                    f"{child!r} has two parents: {parents[child]!r} and "
                    f"{parent!r}"
                )
            if child == SERVER_ID:
                raise ValueError("the server cannot be a child")
            parents[child] = parent
        return cls(parents)

    # ---------------------------------------------------------------- queries
    def parent(self, node_id: str) -> str:
        return self._parents[str(node_id)]

    def children(self, node_id: str) -> Tuple[str, ...]:
        return tuple(self._children.get(str(node_id), ()))

    def level(self, node_id: str) -> int:
        return self._levels[str(node_id)]

    @property
    def is_star(self) -> bool:
        return not self.aggregator_ids

    @property
    def num_aggregators(self) -> int:
        return len(self.aggregator_ids)

    @property
    def hops(self) -> int:
        """Longest source → server path length (1 for the star)."""
        longest = 1
        for node in self.source_ids:
            count = 0
            while node != SERVER_ID:
                node = self._parents[node]
                count += 1
            longest = max(longest, count)
        return longest

    def subtree_nodes(self, node_id: str) -> Tuple[str, ...]:
        """The node plus every descendant, in natural order."""
        out: List[str] = []
        frontier = [str(node_id)]
        while frontier:
            node = frontier.pop()
            out.append(node)
            frontier.extend(self._children.get(node, ()))
        return tuple(sorted(out, key=_sort_key))

    def subtree_sources(self, node_id: str) -> Tuple[str, ...]:
        """The sources under a node (the blast radius of its failure)."""
        return tuple(
            n for n in self.subtree_nodes(node_id) if not is_aggregator_id(n)
        )

    def describe(self) -> str:
        if self.is_star:
            return f"star({self.num_sources})"
        return (
            f"tree({self.num_sources} sources, "
            f"{self.num_aggregators} aggregators, {self.hops} hops)"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Topology) and self._parents == other._parents

    def __hash__(self) -> int:
        return hash(frozenset(self._parents.items()))

    def __repr__(self) -> str:
        return f"Topology<{self.describe()}>"


TopologyLike = Union[None, str, Topology]


def resolve_topology(
    topology: TopologyLike,
    fan_in: Optional[int],
    num_sources: int,
) -> Optional[Topology]:
    """Resolve an engine's ``(topology, fan_in)`` knobs against the actual
    source count.  Returns ``None`` for the star (engines keep the exact
    flat code path) and a validated :class:`Topology` otherwise.
    """
    if isinstance(topology, Topology):
        if fan_in is not None:
            raise ValueError(
                "fan_in cannot be combined with an explicit Topology"
            )
        if topology.num_sources != num_sources:
            raise ValueError(
                f"topology covers {topology.num_sources} sources but the "
                f"run has {num_sources}"
            )
        return None if topology.is_star else topology
    if topology is None or topology == "star":
        if fan_in is not None:
            raise ValueError("fan_in requires topology='tree'")
        return None
    if topology == "tree":
        if fan_in is None:
            raise ValueError("topology='tree' requires fan_in")
        built = Topology.balanced(num_sources, fan_in)
        return None if built.is_star else built
    raise ValueError(
        f"unknown topology {topology!r}: expected 'star', 'tree', or a "
        f"Topology instance"
    )
