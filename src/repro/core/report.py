"""The result record every pipeline returns.

A :class:`PipelineReport` carries everything the paper's evaluation section
measures for one run of one algorithm: the centers (already lifted back to
the original space), the communication cost in scalars and in bits, the
summary geometry, and separate source/server computation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.quantization.bits import DOUBLE_PRECISION_BITS


@dataclass
class PipelineReport:
    """Outcome of one pipeline execution.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name, e.g. ``"JL+FSS (Alg1)"``.
    centers:
        The k centers in the *original* d-dimensional space.
    communication_scalars:
        Uplink scalars transmitted by the data source(s).
    communication_bits:
        Uplink bits (differs from ``64 × scalars`` only when quantized).
    source_seconds:
        Local computation time at the data source(s) — the paper's
        complexity metric.  In the multi-source case this is the *maximum*
        per-source time (sources compute in parallel).
    server_seconds:
        Computation time at the edge server (informational only).
    summary_cardinality, summary_dimension:
        Shape of the transmitted summary (0/0 for the NR baseline, which has
        no summary).
    quantizer_bits:
        Significant bits retained by the quantizer, or ``None`` when no
        quantization was applied.
    details:
        Free-form extra accounting (per-tag scalar breakdown etc.).
    """

    algorithm: str
    centers: np.ndarray
    communication_scalars: int
    communication_bits: int
    source_seconds: float
    server_seconds: float
    summary_cardinality: int = 0
    summary_dimension: int = 0
    quantizer_bits: Optional[int] = None
    details: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ derived
    def normalized_communication(self, n: int, d: int) -> float:
        """Communication cost normalized by the raw dataset size.

        The paper's Table 3/4 metric: transmitted bits divided by the bits of
        the raw dataset at double precision (``64 · n · d``).
        """
        raw_bits = DOUBLE_PRECISION_BITS * int(n) * int(d)
        if raw_bits <= 0:
            raise ValueError("n and d must be positive")
        return float(self.communication_bits) / raw_bits

    def with_detail(self, **kwargs: float) -> "PipelineReport":
        """Return self after merging extra detail entries (fluent helper)."""
        self.details.update({k: float(v) for k, v in kwargs.items()})
        return self
