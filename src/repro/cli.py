"""Command-line interface: run one communication-efficient k-means pipeline.

Example invocations::

    python -m repro --dataset mnist --algorithm jl-fss-jl --k 2
    python -m repro --dataset neurips --algorithm bklw --sources 10
    python -m repro --dataset mnist --algorithm jl-fss --quantize-bits 10 --runs 3
    python -m repro --algorithm pca-ss --n 500 --d 100   # registry composition
    python -m repro --list-algorithms
    python -m repro stream --algorithm stream-fss --batch-size 512 --query-every 4
    python -m repro stream --algorithm stream-fss-window --window 8
    python -m repro --algorithm bklw --sources 10 --net-preset lossy --dropout 3:1
    python -m repro stream --algorithm stream-fss --net-preset edge-wan --loss 0.1

Algorithms are resolved through the pipeline registry
(:mod:`repro.core.registry`), so every registered stage composition — the
paper's eight algorithms plus the novel ones — is runnable here.  The default
command generates the named synthetic dataset (see :mod:`repro.datasets`),
runs the chosen algorithm for the requested number of Monte-Carlo runs, and
prints the paper's three metrics: normalized k-means cost, normalized
communication cost, and data-source running time.  The ``stream`` subcommand
runs a streaming composition over batched arrivals and prints the cost and
communication of every mid-stream query.

Both subcommands accept the unreliable-edge simulation flags
(``--net-preset``, ``--loss``, ``--retries``, ``--dropout``); degraded runs
report their participation, retransmissions, and simulated network time.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional

from repro.core import registry
from repro.datasets import load_benchmark_dataset
from repro.distributed.conditions import FaultPlan, NetworkCondition
from repro.metrics import ExperimentRunner
from repro.quantization.rounding import RoundingQuantizer


def _algorithms() -> Dict[str, tuple]:
    """CLI algorithm name -> (pipeline factory, is_multi_source)."""
    return {
        spec.name: (spec.factory, spec.multi_source)
        for spec in registry.registered_specs()
    }


#: Backwards-compatible view of the registry (kept because external callers
#: and the test suite introspect it).
ALGORITHMS = _algorithms()


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-efficient k-means for edge-based machine learning "
                    "(ICDCS 2020 reproduction).",
        epilog="Streaming mode: `repro stream --help` runs a stream-* "
               "composition over batched arrivals (merge-and-reduce coreset "
               "trees, sliding windows, continuous queries).",
    )
    parser.add_argument("--dataset", choices=("mnist", "neurips"), default="mnist",
                        help="synthetic benchmark dataset to generate")
    parser.add_argument("--n", type=int, default=None, help="dataset cardinality override")
    parser.add_argument("--d", type=int, default=None, help="dataset dimension override")
    parser.add_argument("--algorithm", choices=registry.registered_names(),
                        default="jl-fss-jl",
                        help="registered pipeline composition to run")
    parser.add_argument("--list-algorithms", action="store_true",
                        help="print the registered compositions and exit")
    parser.add_argument("--k", type=int, default=2, help="number of clusters")
    parser.add_argument("--runs", type=int, default=1, help="Monte-Carlo repetitions")
    parser.add_argument("--sources", type=int, default=10,
                        help="number of data sources (multi-source algorithms only)")
    parser.add_argument("--coreset-size", type=int, default=300,
                        help="coreset cardinality (single-source algorithms)")
    parser.add_argument("--total-samples", type=int, default=300,
                        help="disSS global sample budget (multi-source algorithms)")
    parser.add_argument("--pca-rank", type=int, default=None,
                        help="PCA / disPCA rank t")
    parser.add_argument("--jl-dimension", type=int, default=None,
                        help="JL target dimension d'")
    parser.add_argument("--quantize-bits", type=int, default=None,
                        help="significant bits kept by the rounding quantizer (default: no quantization)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads for per-source computation "
                             "(multi-source algorithms; 1 = sequential, "
                             "0 = all cores; results are identical either way)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    _add_network_arguments(parser)
    return parser


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    """Unreliable-edge simulation flags shared by both subcommands."""
    group = parser.add_argument_group("network simulation")
    group.add_argument("--net-preset", choices=registry.network_preset_names(),
                       default="ideal",
                       help="simulated network condition preset (default: ideal, "
                            "the loss-free wire)")
    group.add_argument("--loss", type=float, default=None,
                       help="override the per-message Bernoulli loss probability "
                            "of every link (0 <= loss < 1)")
    group.add_argument("--retries", type=int, default=None,
                       help="override the per-message retransmission budget "
                            "(every attempt is metered)")
    group.add_argument("--dropout", action="append", default=None,
                       metavar="SOURCE[:ROUND]",
                       help="drop source SOURCE (index) permanently at protocol "
                            "round / batch step ROUND (default 0); repeatable")


def _parse_dropout(specs) -> Dict[str, int]:
    """Parse repeated ``--dropout i[:round]`` flags into a FaultPlan map."""
    dropout: Dict[str, int] = {}
    for spec in specs or ():
        index, _, at_round = str(spec).partition(":")
        try:
            dropout[f"source-{int(index)}"] = int(at_round) if at_round else 0
        except ValueError:
            raise SystemExit(
                f"invalid --dropout {spec!r}: expected SOURCE_INDEX[:ROUND]"
            ) from None
    return dropout


def _network_settings(args: argparse.Namespace) -> Dict[str, object]:
    """Resolve the network flags into create_pipeline keyword arguments."""
    condition: NetworkCondition = registry.network_preset(args.net_preset)
    condition = condition.with_overrides(loss=args.loss, retries=args.retries)
    dropout = _parse_dropout(args.dropout)
    return {
        "network": condition,
        "fault_plan": FaultPlan(dropout=dropout) if dropout else None,
        # Loss draws follow the experiment seed so degraded runs reproduce.
        "network_seed": args.seed,
    }


def _print_degradation(report) -> None:
    """One status line for runs that saw losses or lost sources."""
    if report.failed_sources or report.messages_lost:
        print(f"degraded run: {report.participating_sources} participating, "
              f"{report.failed_sources} failed source(s), "
              f"{report.retransmissions} retransmissions, "
              f"{report.messages_lost} lost messages, "
              f"{report.simulated_network_seconds:.3f}s simulated network time")


def list_algorithms() -> str:
    """Human-readable table of registered compositions."""
    lines = []
    for spec in registry.registered_specs():
        if spec.streaming:
            kind = "stream"
        elif spec.multi_source:
            kind = "multi "
        else:
            kind = "single"
        flag = " [novel]" if spec.novel else ""
        lines.append(f"{spec.name:<18} {kind} {spec.description}{flag}")
    return "\n".join(lines)


def _make_factory(args: argparse.Namespace):
    """Return (factory, is_multi) building a fresh pipeline per run seed."""
    is_multi = registry.is_multi_source(args.algorithm)
    quantizer: Optional[RoundingQuantizer] = None
    if args.quantize_bits is not None and args.quantize_bits < 53:
        quantizer = RoundingQuantizer(args.quantize_bits)

    network_settings = _network_settings(args)

    def factory(seed: int):
        return registry.create_pipeline(
            args.algorithm,
            k=args.k,
            coreset_size=args.coreset_size,
            total_samples=args.total_samples,
            pca_rank=args.pca_rank,
            jl_dimension=args.jl_dimension,
            quantizer=quantizer,
            seed=seed,
            jobs=getattr(args, "jobs", None),
            **network_settings,
        )

    return factory, is_multi


def run(args: argparse.Namespace) -> Dict[str, float]:
    """Execute the experiment described by parsed arguments.

    Returns the summary row (also printed) so programmatic callers and tests
    can inspect it.
    """
    points, spec = load_benchmark_dataset(args.dataset, n=args.n, d=args.d, seed=args.seed)
    print(f"dataset: {spec.name} (n={spec.n}, d={spec.d}), algorithm: {args.algorithm}, "
          f"k={args.k}, runs={args.runs}")

    runner = ExperimentRunner(points, k=args.k, monte_carlo_runs=args.runs, seed=args.seed)
    factory, is_multi = _make_factory(args)
    label = args.algorithm
    if is_multi:
        result = runner.run_multi_source({label: factory}, num_sources=args.sources)
    else:
        result = runner.run_single_source({label: factory})

    summary = result.summary()[label]
    row = {
        "normalized_cost": summary.mean_normalized_cost,
        "normalized_communication": summary.mean_normalized_communication,
        "source_seconds": summary.mean_source_seconds,
        "runs": float(summary.runs),
        "mean_participating_sources": summary.mean_participating_sources,
        "total_retransmissions": float(summary.total_retransmissions),
    }
    print(f"normalized k-means cost : {row['normalized_cost']:.4f}")
    print(f"normalized communication: {row['normalized_communication']:.6f}")
    print(f"source running time (s) : {row['source_seconds']:.3f}")
    if summary.total_failed_sources or summary.total_messages_lost:
        print(f"degraded runs: mean participation "
              f"{summary.mean_participating_sources:.2f}, "
              f"{summary.total_failed_sources} failed source(s), "
              f"{summary.total_retransmissions} retransmissions, "
              f"{summary.total_messages_lost} lost messages, "
              f"{summary.mean_simulated_network_seconds:.3f}s mean simulated "
              f"network time")
    return row


# ---------------------------------------------------------------------------
# The `stream` subcommand: batched arrivals + continuous queries.
# ---------------------------------------------------------------------------

def build_stream_parser() -> argparse.ArgumentParser:
    """Argument parser of ``repro stream`` (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Streaming distributed k-means: sources ingest timestamped "
                    "batches into merge-and-reduce coreset trees; the server "
                    "answers queries at any point in the stream.",
    )
    parser.add_argument("--dataset", choices=("mnist", "neurips"), default="mnist",
                        help="synthetic benchmark dataset to stream")
    parser.add_argument("--n", type=int, default=None, help="dataset cardinality override")
    parser.add_argument("--d", type=int, default=None, help="dataset dimension override")
    parser.add_argument("--algorithm",
                        choices=registry.registered_names(streaming=True),
                        default="stream-fss",
                        help="registered streaming composition to run")
    parser.add_argument("--k", type=int, default=2, help="number of clusters")
    parser.add_argument("--sources", type=int, default=4,
                        help="number of concurrently streaming data sources")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="rows per timestamped batch")
    parser.add_argument("--window", type=int, default=None,
                        help="sliding window in batches (default: full prefix)")
    parser.add_argument("--query-every", type=int, default=None,
                        help="answer a k-means query every N batch steps "
                             "(default: only at end of stream)")
    parser.add_argument("--coreset-size", type=int, default=300,
                        help="per-bucket coreset cardinality")
    parser.add_argument("--pca-rank", type=int, default=None,
                        help="FSS intrinsic rank t")
    parser.add_argument("--jl-dimension", type=int, default=None,
                        help="JL target dimension d'")
    parser.add_argument("--quantize-bits", type=int, default=None,
                        help="significant bits kept by the rounding quantizer "
                             "(default: no quantization)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads for per-source batch compression "
                             "(1 = sequential, 0 = all cores; results are "
                             "identical either way)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    _add_network_arguments(parser)
    return parser


def run_stream(args: argparse.Namespace) -> Dict[str, float]:
    """Execute one streaming run and print the per-query trajectory.

    Returns the final-query summary row for programmatic callers and tests.
    """
    from repro.kmeans.cost import kmeans_cost
    from repro.metrics.evaluation import EvaluationContext, evaluate_report
    from repro.quantization.bits import DOUBLE_PRECISION_BITS

    points, spec = load_benchmark_dataset(args.dataset, n=args.n, d=args.d, seed=args.seed)
    quantizer: Optional[RoundingQuantizer] = None
    if args.quantize_bits is not None and args.quantize_bits < 53:
        quantizer = RoundingQuantizer(args.quantize_bits)
    engine = registry.create_pipeline(
        args.algorithm,
        k=args.k,
        coreset_size=args.coreset_size,
        pca_rank=args.pca_rank,
        jl_dimension=args.jl_dimension,
        quantizer=quantizer,
        batch_size=args.batch_size,
        window=args.window,
        query_every=args.query_every,
        seed=args.seed,
        jobs=getattr(args, "jobs", None),
        **_network_settings(args),
    )
    print(f"dataset: {spec.name} (n={spec.n}, d={spec.d}), algorithm: {args.algorithm}, "
          f"k={args.k}, sources={args.sources}, batch={args.batch_size}, "
          f"window={engine.window if engine.window is not None else 'none'}")

    report = engine.run_on_dataset(points, num_sources=args.sources, partition_seed=args.seed)

    context = EvaluationContext.build(points, args.k, seed=args.seed)
    raw_bits = DOUBLE_PRECISION_BITS * spec.n * spec.d
    print(f"{'step':>6} {'norm. cost':>12} {'norm. comm':>12} {'summary':>9} {'buckets':>9}")
    for query in report.queries:
        cost = kmeans_cost(points, query.centers)
        normalized = cost / context.reference_cost if context.reference_cost > 0 else float("inf")
        print(f"{query.time:>6} {normalized:>12.4f} "
              f"{query.windowed_bits / raw_bits:>12.6f} "
              f"{query.summary_cardinality:>9} {query.live_buckets:>9}")

    evaluation = evaluate_report(report, context)
    row = {
        "normalized_cost": evaluation.normalized_cost,
        "normalized_communication": evaluation.normalized_communication,
        "source_seconds": evaluation.source_seconds,
        "queries": float(len(report.queries)),
        "max_live_buckets": report.details["max_live_buckets"],
        "participating_sources": float(report.participating_sources),
    }
    print(f"final normalized k-means cost : {row['normalized_cost']:.4f}")
    print(f"final normalized communication: {row['normalized_communication']:.6f}")
    print(f"max live buckets per source   : {int(row['max_live_buckets'])}")
    _print_degradation(report)
    return row


def main(argv=None) -> int:
    """Console entry point."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stream":
        run_stream(build_stream_parser().parse_args(argv[1:]))
        return 0
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_algorithms:
        print(list_algorithms())
        return 0
    run(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
