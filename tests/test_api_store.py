"""Tests for the persisted result store (repro.api.store)."""

import json

import pytest

from repro import api
from repro.api.store import compare_records, spec_hash


def _spec_dict(**overrides):
    payload = {
        "pipeline": {"algorithm": "jl-fss", "k": 2, "coreset_size": 60},
        "runs": 2,
        "seed": 3,
        "strategy": "random",
    }
    payload.update(overrides)
    return payload


def _record(cell_id="cell-a", algorithm="jl-fss", cost=1.05, **spec_overrides):
    return api.RunRecord(
        algorithm=algorithm,
        spec=_spec_dict(**spec_overrides),
        summary={
            "algorithm": "JL+FSS (Alg1)",
            "mean_normalized_cost": cost,
            "max_normalized_cost": cost + 0.01,
            "mean_normalized_communication": 0.04,
            "mean_source_seconds": 0.003,
            "runs": 2,
            "mean_participating_sources": 1.0,
            "total_failed_sources": 0,
            "total_retransmissions": 0,
            "total_messages_lost": 0,
            "mean_simulated_network_seconds": 0.0,
        },
        evaluations=(
            {"algorithm": "JL+FSS (Alg1)", "normalized_cost": cost,
             "normalized_communication": 0.04, "communication_scalars": 100,
             "communication_bits": 6400, "source_seconds": 0.003,
             "server_seconds": 0.001, "summary_cardinality": 60,
             "summary_dimension": 10},
        ),
        run_seeds=(11, 22),
        cell_id=cell_id,
        provenance={"repro_version": "test"},
    )


class TestRunRecord:
    def test_round_trip(self):
        record = _record()
        clone = api.RunRecord.from_dict(json.loads(
            json.dumps(record.to_dict())
        ))
        assert clone == record

    def test_spec_hash_is_stable_and_content_addressed(self):
        a, b = _record(), _record()
        assert a.spec_hash == b.spec_hash == spec_hash(a.spec)
        assert _record(seed=4).spec_hash != a.spec_hash

    def test_rehydration(self):
        record = _record()
        summary = record.algorithm_summary()
        assert summary.mean_normalized_cost == pytest.approx(1.05)
        evaluations = record.pipeline_evaluations()
        assert len(evaluations) == 1
        assert evaluations[0].communication_bits == 6400

    def test_spec_field_lookup(self):
        record = _record()
        assert record.spec_field("pipeline.k") == 2
        assert record.spec_field("k") == 2          # bare name searches sections
        assert record.spec_field("runs") == 2       # top-level field
        assert record.spec_field("nonexistent") is None

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            api.RunRecord.from_dict({"algorithm": "x", "spec": {},
                                     "summary": {}, "bogus": 1})


class TestResultStore:
    def test_append_load_round_trip(self, tmp_path):
        store = api.ResultStore(tmp_path / "results" / "store.jsonl")
        first, second = _record("cell-a"), _record("cell-b", cost=1.10)
        store.append(first)
        store.append(second)
        loaded = store.load()
        assert loaded == [first, second]
        assert len(store) == 2
        assert [r.cell_id for r in store] == ["cell-a", "cell-b"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert api.ResultStore(tmp_path / "nope.jsonl").load() == []

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(_record().to_dict()) + "\nnot-json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            api.ResultStore(path).load()

    def test_filter_on_record_and_spec_fields(self, tmp_path):
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.extend([
            _record("cell-a", cost=1.0),
            _record("cell-b", cost=1.2, seed=9),
            _record("cell-c", algorithm="fss"),
        ])
        assert [r.cell_id for r in store.filter(algorithm="jl-fss")] == \
            ["cell-a", "cell-b"]
        assert [r.cell_id for r in store.filter(seed=9)] == ["cell-b"]
        assert [r.cell_id for r in store.filter(pipeline__k=2,
                                                algorithm="fss")] == ["cell-c"]
        assert store.filter(seed=12345) == []

    def test_filter_typoed_criterion_raises(self, tmp_path):
        # A criterion naming a field no record has is a typo, not an
        # empty match (the silent-drop footgun class this PR removes).
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.append(_record())
        with pytest.raises(KeyError, match="unknown filter criterion"):
            store.filter(algoritm="jl-fss")

    def test_compare_table(self, tmp_path):
        store = api.ResultStore(tmp_path / "store.jsonl")
        store.extend([_record("cell-a", cost=1.0), _record("cell-b", cost=1.2)])
        table = store.compare()
        assert table.metrics == api.DEFAULT_COMPARE_METRICS
        assert [row["cell"] for row in table.rows] == ["cell-a", "cell-b"]
        text = str(table)
        assert "cell-a" in text and "mean_normalized_cost" in text

    def test_compare_unknown_metric_lists_available(self):
        with pytest.raises(KeyError, match="mean_normalized_cost"):
            compare_records([_record()], metrics=("not_a_metric",))

    def test_empty_table_renders(self):
        assert "empty" in str(compare_records([]))


class TestProvenance:
    def test_provenance_fields(self):
        stamp = api.provenance()
        assert set(stamp) == {"repro_version", "numpy_version",
                              "python_version", "git_commit"}
        assert stamp["repro_version"] not in (None, "")
