"""Network conditions: link models, fault plans, and named presets.

The paper meters communication over an ideal in-process network, but its
edge-deployment setting is exactly where links are lossy, sources straggle,
and nodes drop mid-protocol.  This module describes *how* a simulated
deployment misbehaves; :class:`~repro.distributed.network.SimulatedNetwork`
consumes these descriptions to decide, deterministically per seed, which
transmissions are lost, how long each one takes on the simulated clock, and
which nodes are unreachable at a given protocol round.

Three orthogonal pieces:

* :class:`LinkModel` — per-link Bernoulli message loss plus bandwidth and
  latency parameters feeding the simulated-time metric;
* :class:`FaultPlan` — scripted node failures: permanent dropout at a given
  round, flaky-then-recover windows, and straggler delay factors;
* :class:`NetworkCondition` — a named bundle of link defaults, per-node
  overrides, deterministic heterogeneity, and a retry budget.  The presets
  in :data:`NETWORK_PRESETS` (``ideal``, ``lossy``, ``edge-wan``) are the
  registry/CLI-facing entry points.

Determinism contract: nothing here owns random state.  Loss draws and
heterogeneity jitter are produced by generators derived via
:func:`repro.utils.random.generator_for_name` from ``(condition seed, link
name)``, so per-link streams are independent of the transmission schedule —
``jobs=1`` and ``jobs=N`` runs see identical losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.utils.random import generator_for_name
from repro.utils.validation import check_fraction

#: Node identifier of the edge server (the uplink receiver).
SERVER_ID = "server"

#: Node-id prefix of mid-tree aggregators (``"agg-<level>-<index>"``).
#: Traffic *into* an aggregator is upward-bound and counts as uplink.
AGGREGATOR_PREFIX = "agg-"


class DeliveryError(RuntimeError):
    """A transmission could not be delivered within its retry budget.

    Raised by :meth:`SimulatedNetwork.send` after the last attempt was lost,
    or immediately when an endpoint is down per the fault plan.  Protocol
    drivers catch it to exclude the affected source from the current round.
    """

    def __init__(self, sender: str, receiver: str, tag: str, reason: str) -> None:
        self.sender = sender
        self.receiver = receiver
        self.tag = tag
        self.reason = reason
        super().__init__(
            f"delivery failed {sender} -> {receiver} ({tag}): {reason}"
        )


@dataclass(frozen=True)
class LinkModel:
    """Quality parameters of one (node ↔ server) link.

    Attributes
    ----------
    loss:
        Per-message Bernoulli loss probability (each retry attempt draws
        independently).
    latency_seconds:
        Fixed per-message propagation delay on the simulated clock.
    bandwidth_bits_per_second:
        Link throughput; ``inf`` models an infinitely fast wire (the seed
        behaviour).  Transmission time is ``latency + bits / bandwidth``.
    """

    loss: float = 0.0
    latency_seconds: float = 0.0
    bandwidth_bits_per_second: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.loss) < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if self.bandwidth_bits_per_second <= 0:
            raise ValueError("bandwidth_bits_per_second must be positive")

    def transmission_seconds(self, bits: int) -> float:
        """Simulated wall-time one message of ``bits`` occupies this link."""
        if math.isinf(self.bandwidth_bits_per_second):
            return float(self.latency_seconds)
        return float(self.latency_seconds) + float(bits) / float(
            self.bandwidth_bits_per_second
        )

    @property
    def is_ideal(self) -> bool:
        return (
            self.loss == 0.0
            and self.latency_seconds == 0.0
            and math.isinf(self.bandwidth_bits_per_second)
        )


@dataclass(frozen=True)
class FaultPlan:
    """Scripted node failures, keyed by node id and protocol round.

    Attributes
    ----------
    dropout:
        ``node id -> round``: the node fails permanently at the *start* of
        that round (0-based); every send from or to it afterwards raises
        :class:`DeliveryError`.
    flaky:
        ``node id -> (down_from, up_at)``: the node is unreachable during
        rounds ``[down_from, up_at)`` and then recovers.  One-shot protocols
        treat an unreachable source like a dropout for the current run;
        streaming protocols skip the affected steps and resume.
    stragglers:
        ``node id -> factor``: multiplies the node's simulated link time
        (a factor of 3 models a device on a 3× slower/busier link).
    """

    dropout: Dict[str, int] = field(default_factory=dict)
    flaky: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    stragglers: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node, at_round in self.dropout.items():
            if int(at_round) < 0:
                raise ValueError(f"dropout round for {node!r} must be >= 0")
        for node, (down, up) in self.flaky.items():
            if not 0 <= int(down) < int(up):
                raise ValueError(
                    f"flaky window for {node!r} must satisfy 0 <= down < up"
                )
        for node, factor in self.stragglers.items():
            if float(factor) < 1.0:
                raise ValueError(f"straggler factor for {node!r} must be >= 1")

    # -------------------------------------------------------------- queries
    def is_permanently_down(self, node_id: str, round_index: int) -> bool:
        at = self.dropout.get(node_id)
        return at is not None and round_index >= int(at)

    def is_down(self, node_id: str, round_index: int) -> bool:
        """True when the node is unreachable at this round (either kind)."""
        if self.is_permanently_down(node_id, round_index):
            return True
        window = self.flaky.get(node_id)
        return window is not None and int(window[0]) <= round_index < int(window[1])

    def delay_factor(self, node_id: str) -> float:
        return float(self.stragglers.get(node_id, 1.0))

    @property
    def is_empty(self) -> bool:
        return not (self.dropout or self.flaky or self.stragglers)


@dataclass(frozen=True)
class NetworkCondition:
    """A named bundle of link quality, heterogeneity, and retry budget.

    Attributes
    ----------
    name:
        Preset / display name (``"ideal"``, ``"lossy"``, ``"edge-wan"`` or a
        custom label).
    default_link:
        Link model used for every node without an explicit override.
    link_overrides:
        Per-node :class:`LinkModel` replacements.
    retries:
        Retransmission budget per message: a send makes up to ``retries + 1``
        attempts before raising :class:`DeliveryError`.  Every attempt is
        metered — retries are real communication cost.
    heterogeneity:
        ``>= 0``; when positive, each node's bandwidth and latency are
        jittered deterministically (per node, from the condition seed) by a
        log-uniform factor in ``[1/(1+h), 1+h]``, modelling a fleet of
        devices on unequal links.
    seed:
        Base seed for loss draws and heterogeneity jitter.  Per-link
        generators are derived from ``(seed, link name)`` via
        :func:`repro.utils.random.generator_for_name` — never from global
        numpy state and never from the pipeline's master generator, so the
        algorithmic sampling sequence is untouched by network randomness.
    """

    name: str = "ideal"
    default_link: LinkModel = field(default_factory=LinkModel)
    link_overrides: Dict[str, LinkModel] = field(default_factory=dict)
    retries: int = 0
    heterogeneity: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if int(self.retries) < 0:
            raise ValueError("retries must be non-negative")
        if float(self.heterogeneity) < 0:
            raise ValueError("heterogeneity must be non-negative")

    # -------------------------------------------------------------- queries
    def link_for(self, node_id: str) -> LinkModel:
        """Resolve the effective link model of one node."""
        link = self.link_overrides.get(node_id, self.default_link)
        if self.heterogeneity <= 0 or node_id == SERVER_ID:
            return link
        rng = generator_for_name(int(self.seed), f"link-jitter:{node_id}")
        span = math.log1p(float(self.heterogeneity))
        bandwidth_factor = math.exp(rng.uniform(-span, span))
        latency_factor = math.exp(rng.uniform(-span, span))
        bandwidth = link.bandwidth_bits_per_second
        if not math.isinf(bandwidth):
            bandwidth = bandwidth * bandwidth_factor
        return replace(
            link,
            bandwidth_bits_per_second=bandwidth,
            latency_seconds=link.latency_seconds * latency_factor,
        )

    @property
    def is_ideal(self) -> bool:
        """True when no loss is possible on any link (delivery guaranteed)."""
        return self.default_link.loss == 0.0 and all(
            link.loss == 0.0 for link in self.link_overrides.values()
        )

    # ------------------------------------------------------------- builders
    def with_overrides(
        self,
        loss: Optional[float] = None,
        retries: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "NetworkCondition":
        """Return a copy with CLI-style scalar overrides applied."""
        condition = self
        if loss is not None:
            check_fraction(loss, "loss", low=0.0, inclusive_low=True)
            condition = replace(
                condition,
                default_link=replace(condition.default_link, loss=float(loss)),
                link_overrides={
                    node: replace(link, loss=float(loss))
                    for node, link in condition.link_overrides.items()
                },
            )
        if retries is not None:
            condition = replace(condition, retries=int(retries))
        if seed is not None:
            condition = replace(condition, seed=int(seed))
        return condition


def _ideal() -> NetworkCondition:
    return NetworkCondition(name="ideal")


def _lossy() -> NetworkCondition:
    return NetworkCondition(
        name="lossy",
        default_link=LinkModel(
            loss=0.2, latency_seconds=0.02, bandwidth_bits_per_second=10e6
        ),
        retries=5,
    )


def _edge_wan() -> NetworkCondition:
    return NetworkCondition(
        name="edge-wan",
        default_link=LinkModel(
            loss=0.05, latency_seconds=0.08, bandwidth_bits_per_second=2e6
        ),
        retries=3,
        heterogeneity=3.0,
    )


#: Named condition factories surfaced by the registry and the CLI.
NETWORK_PRESETS = {
    "ideal": _ideal,
    "lossy": _lossy,
    "edge-wan": _edge_wan,
}

ConditionLike = Union[None, str, NetworkCondition]


def resolve_condition(condition: ConditionLike) -> NetworkCondition:
    """Normalise a condition argument: ``None`` → ideal, str → preset."""
    if condition is None:
        return _ideal()
    if isinstance(condition, NetworkCondition):
        return condition
    key = str(condition).lower()
    try:
        return NETWORK_PRESETS[key]()
    except KeyError:
        raise KeyError(
            f"unknown network preset {condition!r}; available: "
            f"{', '.join(sorted(NETWORK_PRESETS))}"
        ) from None


__all__ = [
    "SERVER_ID",
    "AGGREGATOR_PREFIX",
    "DeliveryError",
    "LinkModel",
    "FaultPlan",
    "NetworkCondition",
    "NETWORK_PRESETS",
    "ConditionLike",
    "resolve_condition",
]
