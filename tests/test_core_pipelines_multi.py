"""Tests for the multi-source pipelines (distributed NR, BKLW, Algorithm 4)."""

import numpy as np
import pytest

from repro.core.distributed_pipelines import (
    BKLWPipeline,
    DistributedNoReductionPipeline,
    JLBKLWPipeline,
    default_distributed_samples,
)
from repro.distributed.partition import partition_dataset
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans
from repro.quantization.rounding import RoundingQuantizer

MULTI_PIPELINES = [DistributedNoReductionPipeline, BKLWPipeline, JLBKLWPipeline]
REDUCTION_PIPELINES = [BKLWPipeline, JLBKLWPipeline]


@pytest.fixture(scope="module")
def shards(high_dim_points):
    indices = partition_dataset(high_dim_points, 4, seed=0)
    return [high_dim_points[idx] for idx in indices]


class TestDefaults:
    def test_default_sample_budget(self):
        assert default_distributed_samples(10, 2) == 400
        assert default_distributed_samples(1, 2) == 200


class TestMultiSourcePipelines:
    @pytest.mark.parametrize("pipeline_cls", MULTI_PIPELINES)
    def test_centers_shape_and_finite(self, shards, pipeline_cls, high_dim_points):
        pipeline = pipeline_cls(k=3, seed=0, total_samples=80, pca_rank=8)
        report = pipeline.run(shards)
        assert report.centers.shape == (3, high_dim_points.shape[1])
        assert np.all(np.isfinite(report.centers))

    @pytest.mark.parametrize("pipeline_cls", MULTI_PIPELINES)
    def test_accounting(self, shards, pipeline_cls):
        report = pipeline_cls(k=3, seed=1, total_samples=80, pca_rank=8).run(shards)
        assert report.communication_scalars > 0
        assert report.source_seconds >= 0.0
        assert report.details["num_sources"] == len(shards)
        assert report.details["total_source_seconds"] >= report.source_seconds

    @pytest.mark.parametrize("pipeline_cls", REDUCTION_PIPELINES)
    def test_solution_quality(self, high_dim_blobs, pipeline_cls):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=5, seed=0)
        # jl_dimension is set to the ambient dimension: these blobs have a
        # very large between/within variance ratio, a regime in which the
        # paper's pinv lift-back of centers loses accuracy for aggressive JL
        # reduction (see test_lift_back_tradeoff below for that behaviour).
        pipeline = pipeline_cls(
            k=3, seed=2, total_samples=150, pca_rank=15,
            jl_dimension=points.shape[1],
        )
        report = pipeline.run_on_dataset(points, num_sources=4, partition_seed=0)
        assert kmeans_cost(points, report.centers) <= reference.cost * 1.5

    def test_lift_back_tradeoff_documented(self, high_dim_blobs):
        """With strongly separated clusters and an aggressive JL dimension,
        lifting centers through the pseudo-inverse loses part of the
        between-cluster component, so the cost degrades — the reason the
        paper's guarantees tie the JL dimension to ``O(ε^{-2} log(nk/δ))``
        rather than allowing arbitrary compression."""
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=5, seed=0)
        aggressive = JLBKLWPipeline(
            k=3, seed=2, total_samples=150, pca_rank=15, jl_dimension=20
        ).run_on_dataset(points, num_sources=4, partition_seed=0)
        conservative = JLBKLWPipeline(
            k=3, seed=2, total_samples=150, pca_rank=15,
            jl_dimension=points.shape[1],
        ).run_on_dataset(points, num_sources=4, partition_seed=0)
        assert kmeans_cost(points, conservative.centers) <= kmeans_cost(
            points, aggressive.centers
        )
        assert kmeans_cost(points, conservative.centers) <= reference.cost * 1.5

    @pytest.mark.parametrize("pipeline_cls", REDUCTION_PIPELINES)
    def test_communication_below_raw(self, shards, high_dim_points, pipeline_cls):
        n, d = high_dim_points.shape
        report = pipeline_cls(k=3, seed=3, total_samples=60, pca_rank=6).run(shards)
        assert report.communication_scalars < n * d

    def test_nr_transmits_everything(self, shards, high_dim_points):
        n, d = high_dim_points.shape
        report = DistributedNoReductionPipeline(k=2, seed=0).run(shards)
        assert report.communication_scalars == n * d

    def test_jlbklw_cheaper_than_bklw_high_dimension(self):
        """Theorem 5.4 vs 5.3: the JL projection shrinks both the disPCA
        sketches and the disSS samples, so for d >> log n Algorithm 4
        transmits less than BKLW."""
        from repro.datasets import make_gaussian_mixture

        points, _, _ = make_gaussian_mixture(n=600, d=400, k=3, seed=1)
        kwargs = dict(k=3, seed=4, total_samples=80, pca_rank=8)
        bklw = BKLWPipeline(**kwargs).run_on_dataset(points, 4, partition_seed=1)
        jlbklw = JLBKLWPipeline(jl_dimension=60, **kwargs).run_on_dataset(
            points, 4, partition_seed=1
        )
        assert jlbklw.communication_scalars < bklw.communication_scalars

    def test_quantizer_reduces_bits(self, shards):
        plain = BKLWPipeline(k=3, seed=5, total_samples=60, pca_rank=6).run(shards)
        quantized = BKLWPipeline(
            k=3, seed=5, total_samples=60, pca_rank=6, quantizer=RoundingQuantizer(8)
        ).run(shards)
        assert quantized.communication_bits < plain.communication_bits
        assert quantized.quantizer_bits == 8

    def test_run_on_dataset_matches_manual_partition(self, high_dim_points):
        pipeline = BKLWPipeline(k=2, seed=6, total_samples=50, pca_rank=5)
        report = pipeline.run_on_dataset(high_dim_points, num_sources=3, partition_seed=7)
        assert report.details["num_sources"] == 3

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            BKLWPipeline(k=2, epsilon=0.5)
