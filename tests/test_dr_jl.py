"""Tests for repro.dr.jl — JL random projections."""

import numpy as np
import pytest

from repro.dr.jl import JLProjection, jl_target_dimension
from repro.kmeans.cost import kmeans_cost


class TestTargetDimension:
    def test_decreases_with_epsilon(self):
        small = jl_target_dimension(1000, 5, epsilon=0.5)
        large = jl_target_dimension(1000, 5, epsilon=0.1)
        assert large > small

    def test_grows_logarithmically_with_n(self):
        d1 = jl_target_dimension(1000, 2, epsilon=0.2)
        d2 = jl_target_dimension(1000000, 2, epsilon=0.2)
        # Multiplying n by 1000 should add only an additive log term.
        assert d2 < d1 * 3

    def test_max_dimension_cap(self):
        assert jl_target_dimension(10**6, 10, 0.05, max_dimension=50) == 50

    def test_at_least_one(self):
        assert jl_target_dimension(2, 1, 0.9, delta=0.9, constant=0.001) >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            jl_target_dimension(0, 2, 0.2)
        with pytest.raises(ValueError):
            jl_target_dimension(10, 2, 1.5)


class TestJLProjection:
    def test_output_shape(self, high_dim_points):
        proj = JLProjection(high_dim_points.shape[1], 20, seed=0)
        out = proj.transform(high_dim_points)
        assert out.shape == (high_dim_points.shape[0], 20)

    def test_data_oblivious_zero_communication(self):
        proj = JLProjection(100, 10, seed=0)
        assert proj.transmitted_scalars == 0

    def test_same_seed_same_matrix(self):
        a = JLProjection(50, 8, seed=123)
        b = JLProjection(50, 8, seed=123)
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seed_different_matrix(self):
        a = JLProjection(50, 8, seed=1)
        b = JLProjection(50, 8, seed=2)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_linearity(self, high_dim_points):
        proj = JLProjection(high_dim_points.shape[1], 15, seed=3)
        x, y = high_dim_points[0], high_dim_points[1]
        lhs = proj.transform((2.0 * x + 3.0 * y)[None, :])
        rhs = 2.0 * proj.transform(x[None, :]) + 3.0 * proj.transform(y[None, :])
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_norm_preservation_on_average(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((200, 400))
        proj = JLProjection(400, 120, seed=1)
        original = np.linalg.norm(points, axis=1)
        projected = np.linalg.norm(proj.transform(points), axis=1)
        ratios = projected / original
        assert abs(ratios.mean() - 1.0) < 0.05
        assert ratios.std() < 0.15

    def test_distortion_diagnostic_moderate(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((100, 300))
        proj = JLProjection(300, 150, seed=2)
        assert proj.distortion(points) < 0.5

    def test_kmeans_cost_approximately_preserved(self, high_dim_blobs):
        points, _, centers = high_dim_blobs
        proj = JLProjection(points.shape[1], 60, seed=5)
        original = kmeans_cost(points, centers)
        projected = kmeans_cost(proj.transform(points), proj.transform(centers))
        assert 0.5 * original <= projected <= 1.5 * original

    def test_rademacher_ensemble(self, high_dim_points):
        proj = JLProjection(high_dim_points.shape[1], 30, seed=0, ensemble="rademacher")
        unique_entries = np.unique(np.round(np.abs(proj.matrix * np.sqrt(30)), 6))
        assert np.allclose(unique_entries, [1.0])
        out = proj.transform(high_dim_points)
        assert out.shape == (high_dim_points.shape[0], 30)

    def test_unknown_ensemble_rejected(self):
        with pytest.raises(ValueError):
            JLProjection(10, 5, ensemble="fourier")

    def test_inverse_transform_shape_and_consistency(self):
        proj = JLProjection(40, 10, seed=4)
        rng = np.random.default_rng(0)
        low = rng.standard_normal((6, 10))
        lifted = proj.inverse_transform(low)
        assert lifted.shape == (6, 40)
        # Projecting the lifted points back down must reproduce the inputs
        # (property of the Moore–Penrose inverse for full row-rank maps).
        assert np.allclose(proj.transform(lifted), low, atol=1e-8)

    def test_dimension_mismatch_raises(self):
        proj = JLProjection(20, 5, seed=0)
        with pytest.raises(ValueError):
            proj.transform(np.zeros((3, 21)))
        with pytest.raises(ValueError):
            proj.inverse_transform(np.zeros((3, 6)))

    def test_describe_mentions_dimensions(self):
        proj = JLProjection(20, 5, seed=0)
        assert "20" in proj.describe() and "5" in proj.describe()
