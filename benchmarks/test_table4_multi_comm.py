"""E4 — Table 4: multi-source normalized communication cost.

The paper reports, for MNIST and NeurIPS over 10 data sources, the total
uplink bits of BKLW and JL+BKLW normalized by the raw data size (plus the
NR = 1 baseline).

Expected shape (paper): both far below 1; JL+BKLW cheaper than BKLW (1.69e-2
vs 1.97e-2 on MNIST, 1.05e-2 vs 1.28e-2 on NeurIPS) because the disPCA
sketches and disSS samples travel in the JL-reduced dimension.
"""

from __future__ import annotations

import time

import pytest

from bench_helpers import NUM_SOURCES
from bench_helpers import (
    multi_source_factories,
    print_table,
    record_result,
    run_once,
    summarize_result,
)


def _table(runner, d):
    start = time.perf_counter()
    result = runner.run_multi_source(multi_source_factories(d), num_sources=NUM_SOURCES)
    wall = time.perf_counter() - start
    return result, wall, summarize_result(
        result, metrics=("normalized_communication", "normalized_cost")
    )


@pytest.mark.benchmark(group="table4")
def test_table4_mnist(benchmark, mnist_runner, mnist_dataset):
    points, _ = mnist_dataset
    result, wall, rows = run_once(benchmark, lambda: _table(mnist_runner, points.shape[1]))
    record_result("batch", result, wall_seconds=wall, prefix="mnist")
    rows["NR"] = {"normalized_communication": 1.0, "normalized_cost": 1.0}
    print_table("Table 4 (MNIST-like): normalized communication cost", rows,
                ["normalized_communication", "normalized_cost"])
    table = result.table("normalized_communication")
    assert table["BKLW"] < 0.6
    assert table["JL+BKLW (Alg4)"] < table["BKLW"]


@pytest.mark.benchmark(group="table4")
def test_table4_neurips(benchmark, neurips_runner, neurips_dataset):
    points, _ = neurips_dataset
    result, wall, rows = run_once(benchmark, lambda: _table(neurips_runner, points.shape[1]))
    record_result("batch", result, wall_seconds=wall, prefix="neurips")
    rows["NR"] = {"normalized_communication": 1.0, "normalized_cost": 1.0}
    print_table("Table 4 (NeurIPS-like): normalized communication cost", rows,
                ["normalized_communication", "normalized_cost"])
    table = result.table("normalized_communication")
    assert table["BKLW"] < 0.6
    assert table["JL+BKLW (Alg4)"] < table["BKLW"]
