"""Golden regression suite for communication accounting.

``tests/goldens/communication.json`` pins the uplink scalars/bits and the
per-tag scalar tables of **every** registered composition under the ideal
network (fixed dataset, seeds, and summary sizes — see
``repro.metrics.profile.GOLDEN_CONFIG``).  Any refactor that perturbs a wire
format, a sampler draw, a default size, or the metering itself shows up here
as an exact integer diff.  The fixture was generated from the pre-network-
refactor implementation, so it also certifies that the unreliable-edge layer
is a strict no-op under ``ideal`` conditions.

Intentional changes: regenerate with
``PYTHONPATH=src python tests/goldens/regenerate_communication.py`` and
review the JSON diff like code.
"""

import json
from pathlib import Path

import pytest

from repro.core import registry
from repro.metrics.profile import (
    GOLDEN_CONFIG,
    GOLDEN_TREE_OVERRIDES,
    communication_profile,
    tree_communication_profile,
)

FIXTURE = Path(__file__).resolve().parent / "goldens" / "communication.json"


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current_profiles():
    return communication_profile()


class TestGoldenFixtureShape:
    def test_fixture_exists_and_has_config(self, fixture):
        assert fixture["config"] == {k: v for k, v in GOLDEN_CONFIG.items()}

    def test_fixture_covers_every_registered_pipeline(self, fixture):
        # A newly registered composition must be added to the goldens in the
        # same PR (regenerate the fixture) — silently unpinned pipelines
        # would erode the suite.
        assert sorted(fixture["profiles"]) == registry.registered_names()

    def test_fixture_values_are_integer_exact(self, fixture):
        for name, profile in fixture["profiles"].items():
            assert isinstance(profile["uplink_scalars"], int), name
            assert isinstance(profile["uplink_bits"], int), name
            assert all(
                isinstance(v, int) for v in profile["scalars_by_tag"].values()
            ), name


class TestGoldenCommunication:
    def test_profiles_match_fixture_exactly(self, fixture, current_profiles):
        mismatches = {}
        for name, pinned in fixture["profiles"].items():
            got = current_profiles[name]
            if got != pinned:
                mismatches[name] = {"pinned": pinned, "got": got}
        assert not mismatches, (
            "communication drifted from the golden fixture (regenerate only "
            f"if the change is intended): {json.dumps(mismatches, indent=2)}"
        )

    def test_bits_consistent_with_tags(self, fixture):
        # Internal consistency of the fixture itself: the uplink scalar
        # count never exceeds the total per-tag count (tags include the
        # downlink; uplink is a subset).
        for name, profile in fixture["profiles"].items():
            total_tagged = sum(profile["scalars_by_tag"].values())
            assert profile["uplink_scalars"] <= total_tagged, name


class TestGoldenTreeCommunication:
    """The tree-mode section: streaming compositions through the golden
    fan-in-2 aggregation tree, aggregator hops pinned via @h<level> tags."""

    @pytest.fixture(scope="class")
    def current_tree_profiles(self):
        return tree_communication_profile()

    def test_tree_config_pinned(self, fixture):
        assert fixture["tree_config"] == {
            k: v for k, v in GOLDEN_TREE_OVERRIDES.items()
        }

    def test_tree_section_covers_every_streaming_pipeline(self, fixture):
        assert sorted(fixture["tree_profiles"]) == registry.registered_names(
            streaming=True
        )

    def test_tree_profiles_match_fixture_exactly(self, fixture, current_tree_profiles):
        mismatches = {}
        for name, pinned in fixture["tree_profiles"].items():
            got = current_tree_profiles[name]
            if got != pinned:
                mismatches[name] = {"pinned": pinned, "got": got}
        assert not mismatches, (
            "tree communication drifted from the golden fixture (regenerate "
            f"only if the change is intended): {json.dumps(mismatches, indent=2)}"
        )

    def test_every_tree_profile_pins_aggregator_hops(self, fixture):
        # The point of the section: each streaming composition's fixture row
        # covers mid-tree traffic — at the golden source count the fan-in-2
        # tree has exactly one aggregator level.
        for name, profile in fixture["tree_profiles"].items():
            hop_tags = [t for t in profile["scalars_by_tag"] if t.endswith("@h1")]
            assert hop_tags, name
            # Uplink covers both the sources' hop-0 and the aggregators'
            # hop-1 traffic, so the tree always ships more than the star.
            flat = fixture["profiles"][name]
            assert profile["uplink_scalars"] > flat["uplink_scalars"], name

    def test_flat_rows_unperturbed_by_tree_mode(self, fixture, current_tree_profiles):
        # The sources' own hop-0 tag totals are identical in star and tree
        # mode: aggregation only adds hops, it never changes what a source
        # transmits.
        for name, tree in fixture["tree_profiles"].items():
            flat_tags = fixture["profiles"][name]["scalars_by_tag"]
            hop0 = {
                tag: count
                for tag, count in tree["scalars_by_tag"].items()
                if "@h" not in tag
            }
            assert hop0 == flat_tags, name
