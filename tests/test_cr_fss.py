"""Tests for repro.cr.fss — the FSS coreset construction."""

import numpy as np
import pytest

from repro.cr.fss import FSSCoreset, fss_coreset_size
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans


class TestCoresetSizeFormula:
    def test_monotonicity(self):
        assert fss_coreset_size(4, 0.2) > fss_coreset_size(2, 0.2)
        assert fss_coreset_size(2, 0.1) > fss_coreset_size(2, 0.3)


class TestFSSCoreset:
    def test_build_returns_all_parts(self, high_dim_points):
        fss = FSSCoreset(k=3, size=80, pca_rank=10, seed=0)
        result = fss.build(high_dim_points)
        assert result.coreset.size == 80
        assert result.coreset.dimension == high_dim_points.shape[1]
        assert result.pca.is_fitted
        assert result.basis_scalars == high_dim_points.shape[1] * result.pca.effective_rank

    def test_shift_equals_pca_tail_energy(self, high_dim_points):
        fss = FSSCoreset(k=3, size=50, pca_rank=5, seed=1)
        result = fss.build(high_dim_points)
        assert result.coreset.shift == pytest.approx(
            result.pca.residual_energy(high_dim_points), rel=1e-6
        )

    def test_coreset_points_lie_in_principal_subspace(self, high_dim_points):
        fss = FSSCoreset(k=3, size=60, pca_rank=6, seed=2)
        result = fss.build(high_dim_points)
        basis = result.pca.basis
        reprojected = result.coreset.points @ basis @ basis.T
        assert np.allclose(result.coreset.points, reprojected, atol=1e-8)

    def test_coreset_cost_plus_shift_approximates_true_cost(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=5, seed=0)
        fss = FSSCoreset(k=3, size=150, pca_rank=15, seed=3)
        coreset = fss(points)
        approx = coreset.cost(reference.centers)
        true = kmeans_cost(points, reference.centers)
        assert approx == pytest.approx(true, rel=0.4)

    def test_total_weight_matches_cardinality(self, high_dim_points):
        fss = FSSCoreset(k=3, size=70, pca_rank=8, seed=4)
        coreset = fss(high_dim_points)
        assert coreset.total_weight == pytest.approx(high_dim_points.shape[0])

    def test_resolved_size_and_rank_caps(self):
        fss = FSSCoreset(k=2, epsilon=0.5, size=None, pca_rank=None, seed=0)
        assert fss.resolved_size(50) <= 50
        assert fss.resolved_rank(10, 5) <= 5

    def test_default_rank_from_epsilon(self):
        fss = FSSCoreset(k=2, epsilon=0.5, seed=0)
        # t = k + ceil(4k/eps^2) - 1 = 2 + 32 - 1 = 33, capped by data shape
        assert fss.resolved_rank(1000, 1000) == 33

    def test_approximate_svd_variant_runs(self, high_dim_points):
        fss = FSSCoreset(k=3, size=40, pca_rank=6, approximate_svd=True, seed=5)
        coreset = fss(high_dim_points)
        assert coreset.size == 40

    def test_reproducible_given_seed(self, high_dim_points):
        a = FSSCoreset(k=2, size=30, pca_rank=5, seed=11)(high_dim_points)
        b = FSSCoreset(k=2, size=30, pca_rank=5, seed=11)(high_dim_points)
        assert np.allclose(a.points, b.points)
        assert a.shift == pytest.approx(b.shift)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FSSCoreset(k=0)
        with pytest.raises(ValueError):
            FSSCoreset(k=2, epsilon=1.5)
        with pytest.raises(ValueError):
            FSSCoreset(k=2, size=0)
