"""The stage protocol: one composable step of a summary-building pipeline.

The paper frames every algorithm as a *composition* of dimensionality
reduction (DR), cardinality reduction (CR), and quantization (QT): NR is the
empty composition, FSS is ``PCA ∘ SS``, Algorithm 1 is ``JL ∘ FSS``,
Algorithm 3 is ``JL ∘ FSS ∘ JL``, and the +QT variants append a quantizer.
The seed implementations hard-coded each composition; this module defines the
:class:`Stage` protocol that lets the engine in :mod:`repro.core.engine`
execute *any* composition declaratively.

A stage transforms the data source's working state (:class:`SourceState`) and
returns a :class:`StageEffect` describing

* the new state (points / weights / shift / wire representation),
* an optional *lift* — the server-side inverse that pulls computed centers
  back up through this stage (the Moore–Penrose lift of a DR map; CR and QT
  stages need no lift), and
* free-form detail entries merged into the final report.

Stages whose randomness must be known to **both** end points (data-oblivious
DR maps such as JL, whose matrix the server re-derives from a seed) declare
``requires_shared_seed = True``; the engine then performs a *seed handshake*
— deriving one seed per such stage from the pipeline's master generator
before any source computation — mirroring the paper's assumption that the
projection seed is pre-shared and therefore costs zero communication.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.random import derive_seed


@dataclass
class StageContext:
    """Per-run execution context handed to every stage.

    Carries the clustering problem parameters and the pipeline's master
    random generator, from which stages derive their private seeds.
    """

    k: int
    epsilon: float
    delta: float
    rng: np.random.Generator

    def derive_seed(self) -> int:
        """Draw a fresh private seed from the pipeline's master generator."""
        return derive_seed(self.rng)


@dataclass
class SourceState:
    """The data source's working summary as it flows through the stages.

    Attributes
    ----------
    points:
        Current point set — the raw shard initially, a coreset after a CR
        stage, always in the ambient coordinates of the *current* space
        (which DR stages shrink).
    weights:
        Per-point weights once a CR stage ran; ``None`` while the state is
        still the raw dataset (the NR wire format).
    shift:
        Accumulated additive constant Δ of the generalized coreset
        (Definition 3.2); PCA-style stages add their discarded tail energy.
    subspace:
        When set (a fitted PCA-like map with ``basis``/``effective_rank``),
        the points lie in its principal subspace, so the wire format sends
        each point's subspace *coordinates* plus the basis — the FSS wire
        format of Theorem 4.1.  Any subsequent transform that moves the
        points out of the subspace must clear it.
    wire_quantizer:
        Quantizer to apply to the main payload at transmission time
        (quantize-on-send, Section 6); set by a QT stage or by the
        pipeline-level ``quantizer`` argument.
    """

    points: np.ndarray
    weights: Optional[np.ndarray] = None
    shift: float = 0.0
    subspace: Optional[object] = None
    wire_quantizer: Optional[object] = None

    # ------------------------------------------------------------ properties
    @property
    def is_raw(self) -> bool:
        """True while no CR stage has run (the state is the full dataset)."""
        return self.weights is None

    @property
    def cardinality(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def evolve(self, **changes) -> "SourceState":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Server-side inverse of a stage: maps centers from the stage's output space
#: back to its input space.
CenterLift = Callable[[np.ndarray], np.ndarray]


@dataclass
class StageEffect:
    """Everything one stage application produces."""

    state: SourceState
    lift: Optional[CenterLift] = None
    details: Dict[str, float] = field(default_factory=dict)


class Stage(abc.ABC):
    """One composable DR / CR / QT step executed at the data source.

    Concrete stages are *configuration* objects: constructing one performs no
    computation, and all data-dependent resolution (default sizes, dimension
    caps) happens inside :meth:`apply_at_source` against the state actually
    flowing through the pipeline.  A stage instance may therefore be applied
    to many datasets and reused across Monte-Carlo runs.
    """

    #: Human-readable stage name used in composed pipeline names.
    name: str = "stage"

    #: True when the stage's randomness must be pre-shared with the server
    #: (data-oblivious DR).  The engine then calls :meth:`handshake` before
    #: any source computation, in declaration order — reproducing the
    #: pre-shared-seed protocol of the paper.
    requires_shared_seed: bool = False

    #: True for CR stages (they replace the point set by a weighted coreset).
    #: The streaming engine re-applies the composition's CR stage to merged
    #: buckets of its coreset tree (merge-and-reduce), so it must be able to
    #: identify that stage declaratively.
    reduces_cardinality: bool = False

    #: True when the engine may memoize this stage's output through a
    #: content-addressed :class:`~repro.core.cache.StageCache`.  Requires
    #: that (a) the output is fully described by a
    #: :class:`~repro.core.cache.pack_effect` payload — points, weights,
    #: shift, subspace basis, details — and (b) any lift the stage produces
    #: is reconstructable from its configuration plus the pre-shared seed
    #: (:meth:`rebuild_lift`).  Stages that arm non-serializable state
    #: (e.g. the wire quantizer) stay ``False``; they still contribute
    #: their :meth:`fingerprint` to the cache key chain.
    cacheable: bool = False

    def handshake(self, ctx: StageContext) -> None:
        """Negotiate pre-shared randomness with the server (if any)."""
        if self.requires_shared_seed:
            self._shared_seed = ctx.derive_seed()

    @abc.abstractmethod
    def apply_at_source(self, state: SourceState, ctx: StageContext) -> StageEffect:
        """Transform the source's working state; runs inside the timed
        source-computation section."""

    # ------------------------------------------------------------- caching
    def fingerprint(self) -> Tuple:
        """Hashable identity of this stage's *configuration*.

        Two stage instances with equal fingerprints must compute identical
        outputs from identical inputs and seed streams — the fingerprint is
        one link of the content-addressed cache key chain
        (:meth:`~repro.core.cache.StageCache.chain_key`), so any
        constructor argument that changes the output must appear here.
        The default covers configuration-free stages only; configurable
        stages override it.
        """
        return (type(self).__name__,)

    def rebuild_lift(
        self, input_dimension: int, output_dimension: int
    ) -> Optional[CenterLift]:
        """Reconstruct the server-side lift for a cached application of this
        stage, given the dimensions it mapped between, or ``None`` when the
        lift cannot be rebuilt from configuration + pre-shared seed alone
        (the cache then recomputes the stage instead of honouring the hit).
        Only lift-producing cacheable stages override this.
        """
        return None

    # --------------------------------------------------------------- helpers
    @property
    def shared_seed(self) -> int:
        seed = getattr(self, "_shared_seed", None)
        if seed is None:
            raise RuntimeError(
                f"{type(self).__name__} requires a seed handshake before use; "
                "run it through a StagePipeline"
            )
        return seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
