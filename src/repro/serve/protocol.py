"""The ``repro serve`` wire protocol: newline-delimited JSON frames.

One request per line, one response per line, over a plain TCP stream.  The
payload of a fold is the *existing* in-process unit of delivery — a
:class:`~repro.streaming.source.SourceUpdate` bucket delta — serialized
through :meth:`Coreset.to_state` / :meth:`Coreset.from_state`, whose
``tolist()`` representation round-trips float64 exactly: a fold delivered
over the wire is bit-identical to one folded in-process.

Requests are JSON objects with an ``op`` key::

    {"op": "register", "tenant": "default", "source_id": "source-0"}
    {"op": "fold", "tenant": "default", "update": {...}}
    {"op": "query", "tenant": "default"}
    {"op": "healthz"} | {"op": "metrics"} | {"op": "snapshot"} | {"op": "shutdown"}

Responses always carry ``ok``; failures add a stable ``error`` code from
:data:`ERROR_CODES` plus a human-readable ``message`` and, for
``update-gap``, the ``expected`` index the client must replay from.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.cr.coreset import Coreset
from repro.streaming.server import (
    EmptySummaryError,
    UnknownSourceError,
    UpdateGapError,
)
from repro.streaming.source import BucketUpdate, SourceUpdate

#: Bumped on incompatible frame-layout changes; echoed by ``healthz``.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON frame (a fold carrying a full coreset delta);
#: the daemon's stream reader enforces it so a garbage client cannot buffer
#: unbounded bytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Stable error codes, so clients switch on codes instead of messages.
ERROR_BAD_REQUEST = "bad-request"
ERROR_UNKNOWN_SOURCE = "unknown-source"
ERROR_UPDATE_GAP = "update-gap"
ERROR_EMPTY_SUMMARY = "empty-summary"
ERROR_CODES = (
    ERROR_BAD_REQUEST,
    ERROR_UNKNOWN_SOURCE,
    ERROR_UPDATE_GAP,
    ERROR_EMPTY_SUMMARY,
)


class ProtocolError(ValueError):
    """A malformed frame (bad JSON, missing fields, wrong types)."""


# ------------------------------------------------------------------- frames
def dump_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one frame: compact JSON + newline (the frame delimiter)."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def parse_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame, raising :class:`ProtocolError` on anything that is
    not a JSON object."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"a frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ------------------------------------------------------- update (de)coding
def encode_bucket(bucket: BucketUpdate) -> Dict[str, Any]:
    """One bucket as it crosses the wire (the coreset via ``to_state``)."""
    return {
        "bucket_id": int(bucket.bucket_id),
        "level": int(bucket.level),
        "first_batch": int(bucket.first_batch),
        "last_batch": int(bucket.last_batch),
        "coreset": bucket.coreset.to_state(),
    }


def decode_bucket(payload: Dict[str, Any]) -> BucketUpdate:
    """Inverse of :func:`encode_bucket` (bit-identical coreset)."""
    try:
        return BucketUpdate(
            bucket_id=int(payload["bucket_id"]),
            coreset=Coreset.from_state(payload["coreset"]),
            first_batch=int(payload["first_batch"]),
            last_batch=int(payload["last_batch"]),
            level=int(payload["level"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed bucket update: {exc!r}") from None


def encode_update(update: SourceUpdate) -> Dict[str, Any]:
    """A :class:`SourceUpdate` as its wire frame payload."""
    return {
        "source_id": str(update.source_id),
        "batch_index": int(update.batch_index),
        "added": [encode_bucket(b) for b in update.added],
        "retired_ids": [int(i) for i in update.retired_ids],
    }


def decode_update(payload: Dict[str, Any]) -> SourceUpdate:
    """Inverse of :func:`encode_update`; the daemon folds the result."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"an update must be a JSON object, got {type(payload).__name__}"
        )
    try:
        added: List[BucketUpdate] = [decode_bucket(b) for b in payload.get("added", ())]
        return SourceUpdate(
            source_id=str(payload["source_id"]),
            batch_index=int(payload["batch_index"]),
            added=added,
            retired_ids=[int(i) for i in payload.get("retired_ids", ())],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed source update: {exc!r}") from None


# --------------------------------------------------------------- responses
def ok_response(**fields: Any) -> Dict[str, Any]:
    """A success frame."""
    return {"ok": True, **fields}


def error_response(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    """A failure frame with a stable error code."""
    return {"ok": False, "error": code, "message": message, **fields}


def encode_exception(exc: Exception) -> Dict[str, Any]:
    """Map a typed fold/query rejection onto its protocol error frame."""
    if isinstance(exc, UnknownSourceError):
        return error_response(
            ERROR_UNKNOWN_SOURCE, str(exc),
            source_id=exc.source_id, registered=list(exc.registered),
        )
    if isinstance(exc, UpdateGapError):
        return error_response(
            ERROR_UPDATE_GAP, str(exc),
            source_id=exc.source_id, expected=exc.expected, got=exc.got,
        )
    if isinstance(exc, EmptySummaryError):
        return error_response(ERROR_EMPTY_SUMMARY, str(exc))
    if isinstance(exc, ProtocolError):
        return error_response(ERROR_BAD_REQUEST, str(exc))
    raise TypeError(f"no protocol mapping for {type(exc).__name__}") from exc


__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_CODES",
    "ERROR_EMPTY_SUMMARY",
    "ERROR_UNKNOWN_SOURCE",
    "ERROR_UPDATE_GAP",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_bucket",
    "decode_update",
    "dump_frame",
    "encode_bucket",
    "encode_exception",
    "encode_update",
    "error_response",
    "ok_response",
    "parse_frame",
]
