"""Chaos integration: a real ``repro serve`` subprocess under concurrent
clients, SIGKILL'd mid-stream, restarted with ``--restore`` — and the
post-recovery query must be byte-identical to a run that never crashed.

The kill lands at the worst possible instant: ``serve.fold.ack`` fires after
an update is applied *and* persisted but before the ack leaves the daemon,
so the client must retransmit an update the snapshot already holds.  The
fold layer's watermarks turn that retransmission into a ``duplicate`` ack;
without them the replay would double-count the batch and the byte-compare
below would fail.

Runs in the CI chaos job (``pytest -m chaos``) and in tier-1; both runs use
``REPRO_FROZEN_CLOCK=1`` so timing fields are zero and the full query
response can be compared as canonical JSON bytes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distributed.network import SimulatedNetwork
from repro.serve.client import ServeClient, ServeSource
from repro.stages.base import StageContext
from repro.stages.cr import UniformStage
from repro.streaming.source import StreamingSource
from repro.utils import faultpoints
from repro.utils.random import as_generator

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parents[1]

CLIENTS = 3
BATCHES = 6  # per client -> 18 applied folds per scenario


def start_daemon(tmp_path: Path, *extra: str, port: int = 0,
                 faultpoint: str = "") -> tuple:
    """Launch `repro serve` as a subprocess; returns (proc, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_FROZEN_CLOCK"] = "1"
    env.pop("REPRO_FAULTPOINT", None)
    if faultpoint:
        env["REPRO_FAULTPOINT"] = faultpoint
    port_file = tmp_path / "port"
    port_file.unlink(missing_ok=True)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--port-file", str(port_file),
         "--k", "2", "--seed", "17",
         "--snapshot", str(tmp_path / "serve.json"), *extra],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died before listening:\n{proc.communicate()[1]}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never wrote its port file")


def make_source(index: int) -> StreamingSource:
    return StreamingSource(
        f"source-{index}", [UniformStage(12)], UniformStage(12),
        StageContext(k=2, epsilon=0.1, delta=0.1, rng=as_generator(100 + index)),
        SimulatedNetwork(),
    )


def stream_one_client(index: int, port: int, errors: list) -> None:
    """One client's whole stream, retrying across daemon restarts."""
    try:
        with ServeClient("127.0.0.1", port, timeout=5.0,
                         retry_interval=0.1, retry_deadline=60.0) as client:
            serve_source = ServeSource(make_source(index), client)
            serve_source.register()
            data = as_generator(1000 + index)
            for batch_index in range(BATCHES):
                serve_source.ingest(data.random((40, 5)), batch_index)
    except Exception as exc:  # surfaced by the main thread
        errors.append((index, exc))


def run_clients(port: int) -> None:
    errors: list = []
    threads = [
        threading.Thread(target=stream_one_client, args=(i, port, errors))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "a client thread hung"
    assert not errors, f"client failures: {errors}"


def final_query(port: int) -> dict:
    """The post-stream query, canonicalized for byte comparison."""
    with ServeClient("127.0.0.1", port, retry_deadline=30.0) as client:
        response = client.call({"op": "query", "tenant": "default"},
                               idempotent=False)
        metrics = client.metrics()
        client.shutdown()
    assert response.get("ok"), response
    assert response["updates_folded"] == CLIENTS * BATCHES
    response["_metrics_totals"] = metrics["totals"]["folds"]
    return response


def test_kill_restore_query_is_byte_identical(tmp_path):
    # Scenario A: the uncrashed reference run.
    clean_dir = tmp_path / "clean"
    clean_dir.mkdir()
    proc, port = start_daemon(clean_dir)
    try:
        run_clients(port)
        reference = final_query(port)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()

    # Scenario B: same streams, but the daemon dies a hard os._exit at the
    # 10th applied fold — after persisting it, before acking it.
    crash_dir = tmp_path / "crash"
    crash_dir.mkdir()
    proc, port = start_daemon(crash_dir, faultpoint="serve.fold.ack:exit:10")
    recovered = None
    try:
        clients = threading.Thread(target=run_clients, args=(port,))
        clients.start()
        assert proc.wait(timeout=120) == faultpoints.EXIT_CODE, (
            "the daemon should have died at the injected faultpoint"
        )
        # Restart on the same port from the snapshot the victim left behind.
        recovered, _ = start_daemon(
            crash_dir, "--restore", str(crash_dir / "serve.json"), port=port
        )
        clients.join(timeout=120)
        assert not clients.is_alive(), "clients never finished after restart"
        replayed = final_query(port)
        assert recovered.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        if recovered is not None and recovered.poll() is None:
            recovered.kill()

    # The acid test: canonical JSON bytes equal, crash or no crash.
    reference.pop("_metrics_totals")
    folds_after_recovery = replayed.pop("_metrics_totals")
    assert json.dumps(replayed, sort_keys=True) == \
        json.dumps(reference, sort_keys=True)
    # The restarted daemon saw at most the unacked tail as new folds — the
    # persisted prefix re-arrived as duplicates, never re-applied.
    assert folds_after_recovery <= CLIENTS * BATCHES - 9
