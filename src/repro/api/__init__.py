"""Declarative experiment API: typed specs, spec files, sweeps, results.

The public surface for describing and running experiments without writing
harness code::

    from repro.api import (
        PipelineConfig, DataSpec, NetworkSpec, ExperimentSpec, SweepSpec,
        load_spec, dump_spec, run_experiment, run_sweep,
        ResultStore, RunRecord,
    )

    spec = ExperimentSpec(
        pipeline=PipelineConfig(algorithm="jl-fss", k=5, coreset_size=200),
        data=DataSpec(name="mnist", n=2000, d=100),
        runs=10,
        seed=7,
    )
    outcome = run_experiment(spec)
    outcome.summary.mean_normalized_cost

The same spec serializes to TOML/JSON (``dump_spec``) and powers the
rebuilt CLI: ``repro run spec.toml``, ``repro sweep sweep.toml``,
``repro report results/sweep.jsonl``.
"""

from repro.api.journal import SweepJournal
from repro.api.runner import (
    ExperimentOutcome,
    FailedCell,
    RestoredOutcome,
    run_experiment,
    run_sweep,
)
from repro.api.serialization import dump_spec, dumps_toml, load_spec, spec_from_dict
from repro.core.cache import CacheStats, StageCache, StageCacheView
from repro.api.specs import (
    DATASET_NAMES,
    PARTITION_STRATEGIES,
    DataSpec,
    ExperimentSpec,
    NetworkSpec,
    PipelineConfig,
    SweepCell,
    SweepSpec,
    TopologySpec,
    apply_axis_overrides,
    axis_names,
    parse_dropout,
)
from repro.api.store import (
    DEFAULT_COMPARE_METRICS,
    ComparisonTable,
    ResultStore,
    RunRecord,
    StoreCheck,
    compare_outcomes,
    compare_records,
    provenance,
    spec_hash,
)

__all__ = [
    "PipelineConfig",
    "DataSpec",
    "NetworkSpec",
    "TopologySpec",
    "ExperimentSpec",
    "SweepSpec",
    "SweepCell",
    "PARTITION_STRATEGIES",
    "DATASET_NAMES",
    "parse_dropout",
    "axis_names",
    "apply_axis_overrides",
    "compare_outcomes",
    "compare_records",
    "load_spec",
    "dump_spec",
    "dumps_toml",
    "spec_from_dict",
    "run_experiment",
    "run_sweep",
    "ExperimentOutcome",
    "RestoredOutcome",
    "FailedCell",
    "SweepJournal",
    "StageCache",
    "StageCacheView",
    "CacheStats",
    "ResultStore",
    "RunRecord",
    "StoreCheck",
    "ComparisonTable",
    "spec_hash",
    "provenance",
    "DEFAULT_COMPARE_METRICS",
]
