"""Tests for the distributed protocols: disPCA, disSS, BKLW, EdgeCluster."""

import numpy as np
import pytest

from repro.distributed.bklw import BKLWCoreset
from repro.distributed.cluster import EdgeCluster
from repro.distributed.dispca import DistributedPCA
from repro.distributed.disss import DistributedSensitivitySampler, disss_sample_size
from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans
from repro.quantization.rounding import RoundingQuantizer


@pytest.fixture()
def cluster(high_dim_points):
    return EdgeCluster.from_dataset(high_dim_points, num_sources=4, k=3, seed=0)


class TestEdgeCluster:
    def test_from_dataset_partitions_everything(self, high_dim_points, cluster):
        assert cluster.num_sources == 4
        assert cluster.total_cardinality == high_dim_points.shape[0]
        assert cluster.dimension == high_dim_points.shape[1]

    def test_union_points_shape(self, high_dim_points, cluster):
        union = cluster.union_points()
        assert union.shape == high_dim_points.shape

    def test_from_shards(self, blob_points):
        shards = [blob_points[:100], blob_points[100:250], blob_points[250:]]
        cluster = EdgeCluster.from_shards(shards, k=2, seed=1)
        assert cluster.num_sources == 3
        assert cluster.total_cardinality == blob_points.shape[0]

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            EdgeCluster.from_shards([], k=2)

    def test_compute_time_aggregation(self, cluster):
        for source in cluster.sources:
            source.compute_seconds = 1.0
        cluster.sources[0].compute_seconds = 3.0
        assert cluster.total_source_compute_seconds() == pytest.approx(6.0)
        assert cluster.max_source_compute_seconds() == pytest.approx(3.0)


class TestDistributedPCA:
    def test_basis_is_orthonormal(self, cluster):
        dispca = DistributedPCA(k=3, rank=6)
        result = dispca.run(cluster.sources, cluster.server)
        basis = result.basis
        assert basis.shape == (120, result.rank)
        assert np.allclose(basis.T @ basis, np.eye(result.rank), atol=1e-8)

    def test_sources_projected_in_place(self, cluster):
        dispca = DistributedPCA(k=3, rank=5)
        result = dispca.run(cluster.sources, cluster.server)
        for source in cluster.sources:
            assert source.points.shape[1] == 120
            assert np.linalg.matrix_rank(source.points, tol=1e-6) <= result.rank

    def test_communication_accounted(self, cluster):
        dispca = DistributedPCA(k=3, rank=5)
        result = dispca.run(cluster.sources, cluster.server)
        # Each source sends rank singular values + a (d x rank) basis.
        expected = cluster.num_sources * (5 + 120 * 5)
        assert result.transmitted_scalars == expected
        assert cluster.network.uplink_scalars() == expected

    def test_projection_plus_delta_approximates_cost(self, high_dim_blobs):
        """Theorem 5.1: cost(P̃, X) + Δ sandwiches cost(P, X), where Δ is the
        total energy discarded by the projection."""
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=3, seed=0)
        cluster = EdgeCluster.from_dataset(points, num_sources=4, k=3, seed=1)
        originals = [source.points.copy() for source in cluster.sources]
        DistributedPCA(k=3, rank=20).run(cluster.sources, cluster.server)
        delta = sum(
            float(np.sum((orig - source.points) ** 2))
            for orig, source in zip(originals, cluster.sources)
        )
        projected_union = cluster.union_points()
        projected_cost = kmeans_cost(projected_union, reference.centers)
        original_cost = kmeans_cost(points, reference.centers)
        assert projected_cost <= original_cost * 1.1
        assert abs(projected_cost + delta - original_cost) <= 0.35 * original_cost

    def test_requires_sources(self, cluster):
        with pytest.raises(ValueError):
            DistributedPCA(k=2).run([], cluster.server)


class TestDistributedSensitivitySampler:
    def test_sample_size_formula_monotone(self):
        assert disss_sample_size(4, 50, 5, 0.2) > disss_sample_size(2, 50, 5, 0.2)
        assert disss_sample_size(2, 50, 5, 0.1) > disss_sample_size(2, 50, 5, 0.3)

    def test_coreset_merged_at_server(self, cluster):
        disss = DistributedSensitivitySampler(k=3, total_samples=80)
        result = disss.run(cluster.sources, cluster.server)
        assert result.coreset.size >= 80
        assert result.per_source_sizes.shape == (cluster.num_sources,)
        assert result.transmitted_scalars > 0

    def test_coreset_total_weight_close_to_n(self, cluster):
        disss = DistributedSensitivitySampler(k=3, total_samples=100)
        result = disss.run(cluster.sources, cluster.server)
        assert result.coreset.total_weight == pytest.approx(
            cluster.total_cardinality, rel=0.35
        )

    def test_coreset_cost_approximates_union_cost(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=3, seed=0)
        cluster = EdgeCluster.from_dataset(points, num_sources=3, k=3, seed=2)
        disss = DistributedSensitivitySampler(k=3, total_samples=150)
        result = disss.run(cluster.sources, cluster.server)
        approx = result.coreset.cost(reference.centers)
        assert approx == pytest.approx(reference.cost, rel=0.5)

    def test_quantizer_reduces_bits(self, high_dim_points):
        def run_with(quantizer):
            cluster = EdgeCluster.from_dataset(high_dim_points, num_sources=3, k=2, seed=3)
            disss = DistributedSensitivitySampler(k=2, total_samples=60, quantizer=quantizer)
            disss.run(cluster.sources, cluster.server)
            return cluster.network.uplink_bits(), cluster.network.uplink_scalars()

        bits_full, scalars_full = run_with(None)
        bits_q, scalars_q = run_with(RoundingQuantizer(8))
        assert scalars_q == pytest.approx(scalars_full, rel=0.2)
        assert bits_q < bits_full

    def test_requires_sources(self, cluster):
        with pytest.raises(ValueError):
            DistributedSensitivitySampler(k=2, total_samples=10).run([], cluster.server)


class TestBKLW:
    def test_builds_coreset_and_accounts_both_stages(self, cluster):
        builder = BKLWCoreset(k=3, pca_rank=6, total_samples=80)
        result = builder.build(cluster.sources, cluster.server)
        assert result.coreset.size > 0
        assert result.dispca.transmitted_scalars > 0
        assert result.disss.transmitted_scalars > 0
        assert result.transmitted_scalars == (
            result.dispca.transmitted_scalars + result.disss.transmitted_scalars
        )

    def test_coreset_supports_accurate_kmeans(self, high_dim_blobs):
        points, _, _ = high_dim_blobs
        reference = solve_reference_kmeans(points, 3, n_init=3, seed=0)
        cluster = EdgeCluster.from_dataset(points, num_sources=4, k=3, seed=4)
        builder = BKLWCoreset(k=3, pca_rank=15, total_samples=150)
        result = builder.build(cluster.sources, cluster.server)
        server_result = cluster.server.solve_kmeans(result.coreset)
        cost = kmeans_cost(points, server_result.centers)
        assert cost <= reference.cost * 1.5

    def test_resolved_samples_default(self, cluster):
        builder = BKLWCoreset(k=3)
        assert builder.resolved_samples(cluster.sources) > 0

    def test_requires_sources(self, cluster):
        with pytest.raises(ValueError):
            BKLWCoreset(k=2).build([], cluster.server)
