"""Tests for repro.core.report."""

import numpy as np
import pytest

from repro.core.report import PipelineReport


def _report(**overrides):
    defaults = dict(
        algorithm="test",
        centers=np.zeros((2, 3)),
        communication_scalars=100,
        communication_bits=6400,
        source_seconds=0.5,
        server_seconds=0.1,
    )
    defaults.update(overrides)
    return PipelineReport(**defaults)


class TestPipelineReport:
    def test_normalized_communication_full_precision(self):
        report = _report()
        # raw bits = 64 * 10 * 10 = 6400 -> ratio 1.0
        assert report.normalized_communication(10, 10) == pytest.approx(1.0)

    def test_normalized_communication_quantized(self):
        report = _report(communication_bits=3200)
        assert report.normalized_communication(10, 10) == pytest.approx(0.5)

    def test_invalid_dataset_size(self):
        with pytest.raises(ValueError):
            _report().normalized_communication(0, 10)

    def test_with_detail_merges(self):
        report = _report().with_detail(alpha=1.0).with_detail(beta=2)
        assert report.details == {"alpha": 1.0, "beta": 2.0}
