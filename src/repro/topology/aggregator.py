"""The mid-tree aggregator: fold child summaries, ship one bucket upward.

An :class:`AggregatorNode` is both halves of the streaming protocol at
once.  Downward it is a server: it registers its children and folds their
:class:`~repro.streaming.source.SourceUpdate`\\ s under the same watermarked
at-least-once contract as :class:`~repro.streaming.server.StreamingServer`
(duplicates ack as no-ops, gaps are typed rejections).  Upward it is a
source: whenever its child view changed it merges every live child bucket
(exact, by coreset mergeability — the same merge the
:class:`~repro.streaming.tree.CoresetTree` performs), re-compresses the
merged summary with the composition's CR stage (timed as aggregator
compute), and ships *one* replacing bucket to its parent through the
metered network with per-hop tags (``stream-points@h<level>`` ...), so
reports break communication down by hop.

Delivery failures are transactional per step: the upward update either
carries the complete replace (new bucket + retirement of the previous one)
or nothing — a failed hop leaves the parent on the aggregator's last good
summary (stale but valid) and retries on the next step.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cr.coreset import Coreset, merge_coresets
from repro.distributed.conditions import DeliveryError
from repro.distributed.network import SimulatedNetwork
from repro.stages.base import SourceState, Stage, StageContext
from repro.streaming.source import BucketUpdate, SourceUpdate
from repro.streaming.server import FoldResult, UnknownSourceError, UpdateGapError
from repro.utils.clock import perf_counter


class AggregatorNode:
    """One aggregation hop of a tree topology.

    Parameters
    ----------
    agg_id, parent_id, level:
        This node's identifier, its fold target (an aggregator id or the
        server), and its height above the sources (leaf aggregators are
        level 1) — the hop number stamped into its wire tags.
    reduce_stage, ctx:
        The composition's CR stage and this aggregator's own stage context
        (its private generator), used to re-compress merged child summaries.
    network:
        The metered network the upward hop transmits through.
    quantizer:
        Optional wire quantizer (the composition's QT stage), applied to
        the merged bucket's points on send exactly as sources do.
    """

    def __init__(
        self,
        agg_id: str,
        parent_id: str,
        level: int,
        reduce_stage: Stage,
        ctx: StageContext,
        network: SimulatedNetwork,
        quantizer=None,
    ) -> None:
        self.agg_id = str(agg_id)
        self.parent_id = str(parent_id)
        self.level = int(level)
        self.reduce_stage = reduce_stage
        self.ctx = ctx
        self.network = network
        self.quantizer = quantizer
        #: (child_id, bucket_id) -> the child bucket as it crossed the wire.
        self._buckets: Dict[Tuple[str, int], BucketUpdate] = {}
        self._watermarks: Dict[str, int] = {}
        self._dirty = False
        #: Bucket id the parent currently holds for this aggregator.
        self._current_id: Optional[int] = None
        self._next_bucket_id = 0
        self.compute_seconds = 0.0
        self.merges = 0
        self.updates_folded = 0
        self.delivery_failures = 0

    # ----------------------------------------------------------- server half
    def register(self, child_id: str) -> int:
        """Admit a child to this aggregator's fold (idempotent)."""
        return self._watermarks.setdefault(str(child_id), -1)

    def fold(self, update: SourceUpdate) -> FoldResult:
        """Fold one child update under the watermarked delivery contract."""
        watermark = self._watermarks.get(update.source_id)
        if watermark is None:
            raise UnknownSourceError(update.source_id, self._watermarks)
        index = int(update.batch_index)
        if index <= watermark:
            return FoldResult.DUPLICATE
        if index > watermark + 1:
            raise UpdateGapError(update.source_id, watermark + 1, index)
        for bucket_id in update.retired_ids:
            if self._buckets.pop((update.source_id, bucket_id), None) is not None:
                self._dirty = True
        for bucket in update.added:
            self._buckets[(update.source_id, bucket.bucket_id)] = bucket
            self._dirty = True
        self._watermarks[update.source_id] = index
        self.updates_folded += 1
        return FoldResult.APPLIED

    @property
    def live_bucket_count(self) -> int:
        return len(self._buckets)

    # ----------------------------------------------------------- source half
    def emit(self, batch_index: int) -> SourceUpdate:
        """Produce this step's upward update (and transmit its payload).

        Always returns an update stamped ``batch_index`` — an empty one
        when the child view did not change (it advances the parent's
        watermark at zero wire cost, keeping the per-source contiguity the
        fold contract demands).  When dirty, merges the live child buckets,
        re-reduces, and ships the replacing bucket; on a delivery failure
        the update stays empty, the aggregator stays dirty, and the hop
        retries next step.
        """
        update = SourceUpdate(source_id=self.agg_id, batch_index=int(batch_index))
        if not self._dirty:
            return update

        start = perf_counter()
        reduced: Optional[Coreset] = None
        first_batch = last_batch = 0
        if self._buckets:
            children = [self._buckets[key] for key in sorted(self._buckets)]
            merged = merge_coresets(c.coreset for c in children)
            state = SourceState(
                points=merged.points, weights=merged.weights, shift=merged.shift
            )
            state = self.reduce_stage.apply_at_source(state, self.ctx).state
            reduced = Coreset(state.points, state.weights, state.shift)
            first_batch = min(c.first_batch for c in children)
            last_batch = max(c.last_batch for c in children)
            self.merges += 1
        self.compute_seconds += perf_counter() - start

        hop = f"@h{self.level}"
        bucket_id = self._next_bucket_id
        try:
            if reduced is not None:
                wire_coreset, bits = self._encode(reduced)
                header = [
                    float(bucket_id), float(self.level),
                    float(first_batch), float(last_batch),
                    float(wire_coreset.shift),
                ]
                self.network.send_many(
                    self.agg_id, self.parent_id,
                    [
                        ("stream-points" + hop, wire_coreset.points, bits),
                        ("stream-weights" + hop, wire_coreset.weights, None),
                        ("stream-header" + hop, header, None),
                    ],
                )
            if self._current_id is not None:
                self.network.send(
                    self.agg_id, self.parent_id, [self._current_id],
                    tag="stream-retire" + hop,
                )
        except DeliveryError:
            self.delivery_failures += 1
            return update

        if self._current_id is not None:
            update.retired_ids = [self._current_id]
            self._current_id = None
        if reduced is not None:
            update.added.append(
                BucketUpdate(
                    bucket_id=bucket_id,
                    coreset=wire_coreset,
                    first_batch=first_batch,
                    last_batch=last_batch,
                    level=self.level,
                )
            )
            self._current_id = bucket_id
            self._next_bucket_id = bucket_id + 1
        self._dirty = False
        return update

    def _encode(self, coreset: Coreset) -> Tuple[Coreset, Optional[int]]:
        """Quantize-on-send, matching the sources' wire format."""
        if self.quantizer is None:
            return coreset, None
        return (
            Coreset(
                self.quantizer.quantize(coreset.points),
                coreset.weights,
                coreset.shift,
            ),
            int(self.quantizer.significant_bits),
        )
