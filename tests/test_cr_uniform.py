"""Tests for repro.cr.uniform — the uniform-sampling baseline."""

import numpy as np
import pytest

from repro.cr.uniform import UniformCoreset
from repro.cr.sensitivity import SensitivitySampler
from repro.kmeans.cost import kmeans_cost


class TestUniformCoreset:
    def test_size_and_weights(self, blob_points):
        coreset = UniformCoreset(size=50, seed=0).build(blob_points)
        assert coreset.size == 50
        assert coreset.total_weight == pytest.approx(blob_points.shape[0])
        assert np.allclose(coreset.weights, coreset.weights[0])

    def test_without_replacement_caps_at_n(self):
        points = np.random.default_rng(0).standard_normal((30, 4))
        coreset = UniformCoreset(size=100, seed=1, replace=False).build(points)
        assert coreset.size == 30

    def test_shift_carried(self, blob_points):
        coreset = UniformCoreset(size=10, seed=2).build(blob_points, shift=4.0)
        assert coreset.shift == pytest.approx(4.0)

    def test_reproducible(self, blob_points):
        a = UniformCoreset(size=25, seed=3)(blob_points)
        b = UniformCoreset(size=25, seed=3)(blob_points)
        assert np.allclose(a.points, b.points)

    def test_weighted_total_preserved(self, blob_points):
        weights = np.linspace(1.0, 3.0, blob_points.shape[0])
        coreset = UniformCoreset(size=40, seed=4).build(blob_points, weights=weights)
        assert coreset.total_weight == pytest.approx(weights.sum())

    def test_sensitivity_beats_uniform_with_outlier_cluster(self):
        """Why sensitivity sampling matters: when a tiny far-away cluster
        carries almost all of the cost of a candidate solution, uniform
        sampling regularly misses those points and grossly underestimates the
        cost, while sensitivity sampling includes them."""
        rng = np.random.default_rng(5)
        bulk = rng.standard_normal((1000, 2))
        rare = rng.standard_normal((5, 2)) * 0.1 + 200.0
        points = np.vstack([bulk, rare])
        # A candidate solution that ignores the rare cluster: its cost is
        # dominated by the 5 far-away points.
        centers = bulk.mean(axis=0, keepdims=True)
        true_cost = kmeans_cost(points, centers)

        def relative_error(coreset):
            return abs(coreset.cost(centers) - true_cost) / true_cost

        uniform_errors = [
            relative_error(UniformCoreset(size=50, seed=s)(points)) for s in range(8)
        ]
        sensitivity_errors = [
            relative_error(SensitivitySampler(k=2, size=50, seed=s).build(points))
            for s in range(8)
        ]
        assert np.median(sensitivity_errors) < np.median(uniform_errors)
