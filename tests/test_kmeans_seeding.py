"""Tests for repro.kmeans.seeding."""

import numpy as np
import pytest

from repro.kmeans.cost import kmeans_cost
from repro.kmeans.seeding import d2_sampling, kmeans_plus_plus


class TestKMeansPlusPlus:
    def test_returns_k_centers(self, blob_points):
        centers = kmeans_plus_plus(blob_points, 4, seed=0)
        assert centers.shape == (4, blob_points.shape[1])

    def test_centers_are_data_points(self, blob_points):
        centers = kmeans_plus_plus(blob_points, 3, seed=1)
        for c in centers:
            assert np.any(np.all(np.isclose(blob_points, c), axis=1))

    def test_k_capped_at_n(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = kmeans_plus_plus(points, 5, seed=0)
        assert centers.shape[0] == 2

    def test_deterministic_given_seed(self, blob_points):
        a = kmeans_plus_plus(blob_points, 4, seed=3)
        b = kmeans_plus_plus(blob_points, 4, seed=3)
        assert np.array_equal(a, b)

    def test_covers_separated_clusters(self, blobs):
        points, labels, _ = blobs
        centers = kmeans_plus_plus(points, 4, seed=5)
        # Seeding well-separated blobs should hit most clusters: the cost of
        # the seeds must be far below the 1-center cost.
        assert kmeans_cost(points, centers) < 0.2 * kmeans_cost(points, points.mean(0, keepdims=True))

    def test_weighted_selection_prefers_heavy_points(self):
        rng = np.random.default_rng(0)
        points = np.vstack([np.zeros((50, 2)), np.full((1, 2), 100.0)])
        weights = np.concatenate([np.full(50, 1e-6), [1.0]])
        centers = kmeans_plus_plus(points, 1, weights=weights, seed=rng)
        assert np.allclose(centers[0], [100.0, 100.0])

    def test_zero_total_weight_raises(self, blob_points):
        with pytest.raises(ValueError):
            kmeans_plus_plus(blob_points, 2, weights=np.zeros(blob_points.shape[0]), seed=0)

    def test_invalid_k_raises(self, blob_points):
        with pytest.raises(ValueError):
            kmeans_plus_plus(blob_points, 0, seed=0)


class TestD2Sampling:
    def test_shapes(self, blob_points):
        idx, sampled = d2_sampling(blob_points, None, 10, seed=0)
        assert idx.shape == (10,)
        assert sampled.shape == (10, blob_points.shape[1])

    def test_without_centers_uses_weights(self):
        points = np.array([[0.0], [1.0], [2.0]])
        weights = np.array([0.0, 0.0, 1.0])
        idx, _ = d2_sampling(points, None, 20, weights=weights, seed=0)
        assert np.all(idx == 2)

    def test_far_points_sampled_preferentially(self):
        points = np.vstack([np.zeros((99, 2)), np.full((1, 2), 1000.0)])
        centers = np.zeros((1, 2))
        idx, _ = d2_sampling(points, centers, 50, seed=1)
        assert np.all(idx == 99)

    def test_zero_residual_falls_back_to_weights(self):
        points = np.zeros((5, 3))
        centers = np.zeros((1, 3))
        idx, _ = d2_sampling(points, centers, 10, seed=2)
        assert idx.shape == (10,)

    def test_invalid_batch_raises(self, blob_points):
        with pytest.raises(ValueError):
            d2_sampling(blob_points, None, 0, seed=0)
