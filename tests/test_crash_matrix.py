"""Chaos crash-injection matrix: kill `repro sweep` at every registered
sweep faultpoint, resume, and byte-diff the store against an uncrashed run.

Each matrix entry launches the example quantization sweep as a subprocess
with ``REPRO_FAULTPOINT=<name>:exit:<hit>`` — a hard ``os._exit`` with no
unwinding, no lock release, no buffer flushing — then re-runs it with
``--resume`` and demands the recovered store be byte-identical to the
baseline (both under ``REPRO_FROZEN_CLOCK=1``, which zeroes the only
nondeterministic record bytes).

Runs in the CI chaos job (`pytest -m chaos`); when
``REPRO_CRASH_ARTIFACT_DIR`` is set, each entry's post-crash journal,
quarantine file, and store are copied there for upload.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.utils import faultpoints

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC = REPO_ROOT / "examples" / "specs" / "quantization_sweep.toml"

#: Hit at which each faultpoint dies, chosen to land mid-sweep (the example
#: sweep has 8 cells; cache stores / journal events fire once per miss or
#: cell).  Every name in SWEEP_FAULTPOINTS must appear here — the matrix
#: covers the whole registry by construction.
KILL_AT = {
    "store.append": 4,
    "store.append.torn": 2,
    "sweep.journal.start": 5,
    "sweep.journal.done": 3,
    "cache.store": 3,
    "cache.store.tmp": 3,
}


def run_sweep_cli(tmp_path: Path, *extra: str, faultpoint: str = "") -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_FROZEN_CLOCK"] = "1"
    env.pop("REPRO_FAULTPOINT", None)
    if faultpoint:
        env["REPRO_FAULTPOINT"] = faultpoint
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep", str(SPEC),
         "--store", str(tmp_path / "sweep.jsonl"),
         "--cache-dir", str(tmp_path / "cache"),
         "--jobs", "1", *extra],
        env=env, cwd=REPO_ROOT, capture_output=True, text=True,
    )


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory) -> bytes:
    tmp_path = tmp_path_factory.mktemp("baseline")
    completed = run_sweep_cli(tmp_path)
    assert completed.returncode == 0, completed.stderr
    return (tmp_path / "sweep.jsonl").read_bytes()


def save_artifacts(name: str, tmp_path: Path) -> None:
    """Copy the crash debris (journal, quarantine, store) for CI upload."""
    artifact_root = os.environ.get("REPRO_CRASH_ARTIFACT_DIR")
    if not artifact_root:
        return
    target = Path(artifact_root) / name.replace(".", "-")
    target.mkdir(parents=True, exist_ok=True)
    for pattern in ("*.jsonl", "*.journal", "*.corrupt"):
        for path in tmp_path.glob(pattern):
            shutil.copy2(path, target / path.name)


def test_matrix_covers_every_sweep_faultpoint():
    assert set(KILL_AT) == set(faultpoints.SWEEP_FAULTPOINTS)


@pytest.mark.parametrize("name", sorted(KILL_AT))
def test_kill_resume_byte_identical(name, tmp_path, baseline_bytes):
    killed = run_sweep_cli(
        tmp_path, faultpoint=f"{name}:exit:{KILL_AT[name]}"
    )
    assert killed.returncode == faultpoints.EXIT_CODE, (
        f"expected the injected crash exit code at {name}, got "
        f"{killed.returncode}\n{killed.stderr}"
    )
    store_path = tmp_path / "sweep.jsonl"
    # Whatever the kill left behind, the tolerant loader accepts it and
    # sees only complete records — a clean grid-order prefix.
    committed = api.ResultStore(store_path).load()
    assert len(committed) < 8
    save_artifacts(name, tmp_path)

    resumed = run_sweep_cli(tmp_path, "--resume")
    assert resumed.returncode == 0, resumed.stderr
    if committed:
        assert f"resumed: {len(committed)}/8 cell(s)" in resumed.stdout
    assert store_path.read_bytes() == baseline_bytes


def test_torn_append_kill_is_visible_to_verify_and_healed_by_resume(
    tmp_path, baseline_bytes
):
    """The torn-write kill specifically must leave the crash signature
    `repro store verify` reports (exit 1, torn trailing line)."""
    killed = run_sweep_cli(tmp_path, faultpoint="store.append.torn:exit:2")
    assert killed.returncode == faultpoints.EXIT_CODE
    store_path = tmp_path / "sweep.jsonl"
    assert not store_path.read_bytes().endswith(b"\n")

    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_FAULTPOINT", None)
    verify = subprocess.run(
        [sys.executable, "-m", "repro", "store", "verify", str(store_path)],
        env=env, cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert verify.returncode == 1
    assert "torn trailing line" in verify.stdout

    resumed = run_sweep_cli(tmp_path, "--resume")
    assert resumed.returncode == 0, resumed.stderr
    assert store_path.read_bytes() == baseline_bytes
    # The torn bytes were quarantined beside the store, not dropped.
    assert api.ResultStore(store_path).corrupt_path.exists()
