"""The result record every pipeline returns.

A :class:`PipelineReport` carries everything the paper's evaluation section
measures for one run of one algorithm: the centers (already lifted back to
the original space), the communication cost in scalars and in bits, the
summary geometry, and separate source/server computation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.quantization.bits import DOUBLE_PRECISION_BITS


@dataclass
class PipelineReport:
    """Outcome of one pipeline execution.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name, e.g. ``"JL+FSS (Alg1)"``.
    centers:
        The k centers in the *original* d-dimensional space.
    communication_scalars:
        Uplink scalars transmitted by the data source(s).
    communication_bits:
        Uplink bits (differs from ``64 × scalars`` only when quantized).
    source_seconds:
        Local computation time at the data source(s) — the paper's
        complexity metric.  In the multi-source case this is the *maximum*
        per-source time (sources compute in parallel).
    server_seconds:
        Computation time at the edge server (informational only).
    summary_cardinality, summary_dimension:
        Shape of the transmitted summary (0/0 for the NR baseline, which has
        no summary).
    quantizer_bits:
        Significant bits retained by the quantizer, or ``None`` when no
        quantization was applied.
    participating_sources:
        Sources that contributed to the final fold (equals the deployment's
        source count on a healthy run; smaller when links or nodes failed).
    failed_sources:
        Sources excluded mid-protocol (dropout, flaky window, or exhausted
        retry budget).
    retransmissions:
        Retry attempts the simulated network recorded (0 on an ideal wire).
    messages_lost:
        Transmission attempts dropped by the simulated links.
    simulated_network_seconds:
        Simulated transmission wall-time: per-link serial time, links in
        parallel (``latency + bits/bandwidth`` per message, including lost
        attempts and straggler factors).  0 on the ideal wire.
    tag_scalars:
        Per-tag uplink+downlink scalar breakdown of the transmission log
        (``scalars_by_tag``), pinned by the golden communication fixture.
    details:
        Free-form extra accounting (per-stage detail entries etc.).
    """

    algorithm: str
    centers: np.ndarray
    communication_scalars: int
    communication_bits: int
    source_seconds: float
    server_seconds: float
    summary_cardinality: int = 0
    summary_dimension: int = 0
    quantizer_bits: Optional[int] = None
    participating_sources: int = 1
    failed_sources: int = 0
    retransmissions: int = 0
    messages_lost: int = 0
    simulated_network_seconds: float = 0.0
    tag_scalars: Optional[Dict[str, int]] = None
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when the run completed with partial participation."""
        return self.failed_sources > 0

    # ------------------------------------------------------------ derived
    def normalized_communication(self, n: int, d: int) -> float:
        """Communication cost normalized by the raw dataset size.

        The paper's Table 3/4 metric: transmitted bits divided by the bits of
        the raw dataset at double precision (``64 · n · d``).
        """
        raw_bits = DOUBLE_PRECISION_BITS * int(n) * int(d)
        if raw_bits <= 0:
            raise ValueError("n and d must be positive")
        return float(self.communication_bits) / raw_bits

    def with_detail(self, **kwargs: float) -> "PipelineReport":
        """Return self after merging extra detail entries (fluent helper)."""
        self.details.update({k: float(v) for k, v in kwargs.items()})
        return self

    def to_dict(self, include_centers: bool = False) -> Dict[str, object]:
        """JSON-ready mapping of the report's scalar accounting.

        Centers are omitted by default (a k×d float matrix dominates the
        payload and the result store re-derives everything it needs from
        the evaluations); pass ``include_centers=True`` for a full dump.
        """
        payload: Dict[str, object] = {
            "algorithm": self.algorithm,
            "communication_scalars": int(self.communication_scalars),
            "communication_bits": int(self.communication_bits),
            "source_seconds": float(self.source_seconds),
            "server_seconds": float(self.server_seconds),
            "summary_cardinality": int(self.summary_cardinality),
            "summary_dimension": int(self.summary_dimension),
            "quantizer_bits": self.quantizer_bits,
            "participating_sources": int(self.participating_sources),
            "failed_sources": int(self.failed_sources),
            "retransmissions": int(self.retransmissions),
            "messages_lost": int(self.messages_lost),
            "simulated_network_seconds": float(self.simulated_network_seconds),
            "tag_scalars": dict(self.tag_scalars) if self.tag_scalars else None,
            "details": {k: float(v) for k, v in self.details.items()},
        }
        if include_centers:
            payload["centers"] = np.asarray(self.centers).tolist()
        return payload
