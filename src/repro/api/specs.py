"""Typed, declarative experiment specifications.

The paper's evaluation (Section 7) is a grid — {algorithms} × {datasets} ×
{k, ε, coreset size, JL dimension, quantization bits} × {sources, network
condition} repeated over Monte-Carlo runs — but the kwargs-tuple API can
only express one cell at a time, and silently drops typoed keys.  This
module is the declarative replacement:

* :class:`PipelineConfig` — algorithm name plus every tuning knob, validated
  eagerly against the registry kind (unknown or kind-foreign fields raise at
  construction, not at run time, and never silently filter).
* :class:`DataSpec` — a named benchmark dataset at a chosen scale.
* :class:`NetworkSpec` — network preset, loss/retry overrides, and a
  scripted dropout plan.
* :class:`ExperimentSpec` — the composition, with ``runs``, ``seed``,
  ``num_sources``, and the partition ``strategy``.
* :class:`SweepSpec` — an :class:`ExperimentSpec` plus axis lists, expanded
  into the full cell grid with paired Monte-Carlo seeds.

All specs are frozen dataclasses that round-trip via ``to_dict`` /
``from_dict`` and — through :mod:`repro.api.serialization` — TOML/JSON
files, so an experiment is a reviewable artifact, not a shell history.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.distributed.conditions import (
    NETWORK_PRESETS,
    FaultPlan,
    NetworkCondition,
    resolve_condition,
)
from repro.quantization.bits import DOUBLE_SIGNIFICAND_BITS
from repro.quantization.rounding import RoundingQuantizer

#: Partition strategies accepted by :func:`repro.distributed.partition.
#: partition_dataset` (mirrored here so specs validate eagerly).
PARTITION_STRATEGIES = ("random", "skewed-size", "by-cluster")

#: Benchmark dataset keys :func:`repro.datasets.load_benchmark_dataset`
#: resolves (canonical names first, aliases after).
DATASET_NAMES = ("mnist", "neurips", "mnist-like", "nips", "neurips-like")


def parse_dropout(specs: Sequence[str]) -> Dict[str, int]:
    """Parse ``"SOURCE[:ROUND]"`` dropout entries into a FaultPlan map.

    Raises ``ValueError`` on malformed entries (the CLI converts this to a
    ``SystemExit`` with the same message).
    """
    dropout: Dict[str, int] = {}
    for spec in specs or ():
        index, _, at_round = str(spec).partition(":")
        try:
            dropout[f"source-{int(index)}"] = int(at_round) if at_round else 0
        except ValueError:
            raise ValueError(
                f"invalid dropout entry {spec!r}: expected SOURCE_INDEX[:ROUND]"
            ) from None
    return dropout


def _require_positive(value: Optional[int], name: str) -> None:
    if value is not None and (not isinstance(value, int) or isinstance(value, bool) or value < 1):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def _require_fraction(value: Optional[float], name: str) -> None:
    if value is None:
        return
    if not 0.0 < float(value) < 1.0:
        raise ValueError(f"{name} must lie in (0, 1), got {value!r}")


def _prune_none(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` entries (TOML has no null; absent means default)."""
    return {key: value for key, value in payload.items() if value is not None}


def _check_payload_fields(cls, payload: Mapping[str, Any]) -> None:
    names = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {unknown}; "
            f"accepted: {sorted(names)}"
        )


# ---------------------------------------------------------------------------
# PipelineConfig
# ---------------------------------------------------------------------------

#: Spec field → registry keyword argument (identity except the serializable
#: ``quantize_bits`` knob, which materialises a RoundingQuantizer).
_KNOB_TO_KWARG = {
    "epsilon": "epsilon",
    "delta": "delta",
    "coreset_size": "coreset_size",
    "total_samples": "total_samples",
    "pca_rank": "pca_rank",
    "jl_dimension": "jl_dimension",
    "second_jl_dimension": "second_jl_dimension",
    "quantize_bits": "quantizer",
    "batch_size": "batch_size",
    "window": "window",
    "query_every": "query_every",
    "server_n_init": "server_n_init",
    "server_max_iterations": "server_max_iterations",
    "jobs": "jobs",
}


@dataclass(frozen=True)
class PipelineConfig:
    """One algorithm plus all of its tuning knobs, eagerly validated.

    Every knob the registry kinds accept is an explicit field, so a typo
    (``jl_dim=20``) raises ``TypeError`` from the dataclass constructor
    instead of silently running the wrong experiment.  Knobs that the named
    algorithm's kind does not accept (e.g. ``total_samples`` on a
    single-source composition) raise ``ValueError`` at construction with
    the accepted set for that kind.
    """

    algorithm: str
    k: int
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    coreset_size: Optional[int] = None
    total_samples: Optional[int] = None
    pca_rank: Optional[int] = None
    jl_dimension: Optional[int] = None
    second_jl_dimension: Optional[int] = None
    quantize_bits: Optional[int] = None
    batch_size: Optional[int] = None
    window: Optional[int] = None
    query_every: Optional[int] = None
    server_n_init: Optional[int] = None
    server_max_iterations: Optional[int] = None
    jobs: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.core import registry

        try:
            registry.get_spec(self.algorithm)
        except KeyError as exc:
            raise ValueError(str(exc).strip('"')) from None
        _require_positive(self.k, "k")
        _require_fraction(self.epsilon, "epsilon")
        _require_fraction(self.delta, "delta")
        for name in ("coreset_size", "total_samples", "pca_rank",
                     "jl_dimension", "second_jl_dimension", "quantize_bits",
                     "batch_size", "window", "query_every", "server_n_init",
                     "server_max_iterations"):
            _require_positive(getattr(self, name), name)
        accepted = set(registry.accepted_kwargs(self.algorithm))
        rejected = sorted(
            name for name, kwarg in _KNOB_TO_KWARG.items()
            if getattr(self, name) is not None and kwarg not in accepted
        )
        if rejected:
            accepted_knobs = sorted(
                name for name, kwarg in _KNOB_TO_KWARG.items() if kwarg in accepted
            )
            raise ValueError(
                f"{registry.factory_kind(self.algorithm)} pipeline "
                f"{self.algorithm!r} does not accept {rejected}; its knobs: "
                f"{accepted_knobs}"
            )

    @property
    def kind(self) -> str:
        """``"single-source"``, ``"multi-source"``, or ``"streaming"``."""
        from repro.core import registry

        return registry.factory_kind(self.algorithm)

    def quantizer(self) -> Optional[RoundingQuantizer]:
        """Materialise the quantizer knob (bits ≥ 53 keep full doubles,
        matching the CLI's historical ``--quantize-bits`` semantics)."""
        bits = self.quantize_bits
        if bits is None or bits >= DOUBLE_SIGNIFICAND_BITS:
            return None
        return RoundingQuantizer(bits)

    def to_overrides(self) -> Dict[str, Any]:
        """The ``run_registered`` override dict this config describes
        (``k`` excluded — the experiment runner owns it)."""
        overrides: Dict[str, Any] = {}
        for name, kwarg in _KNOB_TO_KWARG.items():
            value = getattr(self, name)
            if value is None:
                continue
            overrides[kwarg] = self.quantizer() if name == "quantize_bits" else value
        return overrides

    def to_dict(self) -> Dict[str, Any]:
        return _prune_none({f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PipelineConfig":
        _check_payload_fields(cls, payload)
        return cls(**dict(payload))


# ---------------------------------------------------------------------------
# DataSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataSpec:
    """A named benchmark dataset at a chosen scale.

    ``seed`` overrides the generation seed; when unset the experiment's
    master seed is used (matching the flat CLI, where ``--seed`` seeds both
    the dataset and the runs).
    """

    name: str = "mnist"
    n: Optional[int] = None
    d: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        key = str(self.name).strip().lower()
        if key not in DATASET_NAMES:
            raise ValueError(
                f"unknown dataset {self.name!r}; available: "
                f"{', '.join(DATASET_NAMES[:2])}"
            )
        _require_positive(self.n, "n")
        _require_positive(self.d, "d")

    def generation_seed(self, default_seed: int) -> int:
        return int(self.seed if self.seed is not None else default_seed)

    def load(self, default_seed: int = 0):
        """Generate the dataset: returns ``(points, DatasetSpec)``."""
        from repro.datasets import load_benchmark_dataset

        return load_benchmark_dataset(
            self.name, n=self.n, d=self.d, seed=self.generation_seed(default_seed)
        )

    def cache_key(self, default_seed: int) -> Tuple:
        """Identity of the generated matrix (the sweep runner shares points
        and reference solutions across cells with equal keys)."""
        return (str(self.name).strip().lower(), self.n, self.d,
                self.generation_seed(default_seed))

    def to_dict(self) -> Dict[str, Any]:
        return _prune_none({f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataSpec":
        _check_payload_fields(cls, payload)
        return cls(**dict(payload))


# ---------------------------------------------------------------------------
# NetworkSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NetworkSpec:
    """Declarative network simulation settings.

    ``dropout`` entries use the CLI grammar ``"SOURCE_INDEX[:ROUND]"``;
    ``network_seed`` defaults to the experiment seed so degraded runs
    reproduce.
    """

    preset: str = "ideal"
    loss: Optional[float] = None
    retries: Optional[int] = None
    dropout: Tuple[str, ...] = ()
    network_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if str(self.preset).lower() not in NETWORK_PRESETS:
            raise ValueError(
                f"unknown network preset {self.preset!r}; available: "
                f"{', '.join(sorted(NETWORK_PRESETS))}"
            )
        if self.loss is not None and not 0.0 <= float(self.loss) < 1.0:
            raise ValueError(f"loss must lie in [0, 1), got {self.loss!r}")
        if self.retries is not None and int(self.retries) < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        object.__setattr__(self, "dropout", tuple(str(s) for s in self.dropout))
        parse_dropout(self.dropout)  # validate the grammar eagerly

    def condition(self) -> NetworkCondition:
        return resolve_condition(self.preset).with_overrides(
            loss=self.loss, retries=self.retries
        )

    def to_kwargs(self, default_seed: int = 0) -> Dict[str, Any]:
        """The ``create_pipeline`` network keyword arguments (the same
        resolution the CLI flags perform)."""
        dropout = parse_dropout(self.dropout)
        return {
            "network": self.condition(),
            "fault_plan": FaultPlan(dropout=dropout) if dropout else None,
            "network_seed": (
                self.network_seed if self.network_seed is not None
                else int(default_seed)
            ),
        }

    def to_dict(self) -> Dict[str, Any]:
        payload = _prune_none({f.name: getattr(self, f.name) for f in fields(self)})
        if not payload.get("dropout"):
            payload.pop("dropout", None)
        else:
            payload["dropout"] = list(payload["dropout"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkSpec":
        _check_payload_fields(cls, payload)
        payload = dict(payload)
        if "dropout" in payload:
            payload["dropout"] = tuple(payload["dropout"])
        return cls(**payload)


# ---------------------------------------------------------------------------
# TopologySpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TopologySpec:
    """Declarative aggregation topology for streaming experiments.

    ``kind="star"`` is the paper's flat source → server fold (the default,
    and bit-identical to specs written before topologies existed);
    ``kind="tree"`` folds sources through a balanced aggregator tree with
    ``fan_in`` children per node — the shape is deterministic given
    ``(num_sources, fan_in)``, see :meth:`repro.topology.Topology.balanced`.
    """

    kind: str = "star"
    fan_in: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("star", "tree"):
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected 'star' or 'tree'"
            )
        _require_positive(self.fan_in, "fan_in")
        if self.kind == "tree":
            if self.fan_in is None:
                raise ValueError("topology kind 'tree' requires fan_in")
            if self.fan_in < 2:
                raise ValueError(f"fan_in must be >= 2, got {self.fan_in}")
        elif self.fan_in is not None:
            raise ValueError("fan_in applies only to topology kind 'tree'")

    def to_overrides(self) -> Dict[str, Any]:
        """The engine keyword arguments this topology adds (empty for the
        star — absence *is* the flat fold, keeping old runs bit-identical)."""
        if self.kind == "star":
            return {}
        return {"topology": "tree", "fan_in": self.fan_in}

    def to_dict(self) -> Dict[str, Any]:
        return _prune_none({f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        _check_payload_fields(cls, payload)
        return cls(**dict(payload))


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment cell: pipeline × data × network × repetition plan."""

    pipeline: PipelineConfig
    data: DataSpec = field(default_factory=DataSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    runs: int = 1
    seed: int = 0
    num_sources: Optional[int] = None
    strategy: str = "random"
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.pipeline, PipelineConfig):
            raise TypeError("pipeline must be a PipelineConfig")
        if not isinstance(self.data, DataSpec):
            raise TypeError("data must be a DataSpec")
        if not isinstance(self.network, NetworkSpec):
            raise TypeError("network must be a NetworkSpec")
        if self.topology is not None and not isinstance(self.topology, TopologySpec):
            raise TypeError("topology must be a TopologySpec")
        _require_positive(self.runs, "runs")
        _require_positive(self.num_sources, "num_sources")
        if self.strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {self.strategy!r}; available: "
                f"{', '.join(PARTITION_STRATEGIES)}"
            )
        if self.pipeline.kind != "single-source" and self.num_sources is None:
            raise ValueError(
                f"num_sources is required for {self.pipeline.kind} pipeline "
                f"{self.pipeline.algorithm!r}"
            )
        if (
            self.topology is not None
            and self.topology.kind == "tree"
            and self.pipeline.kind != "streaming"
        ):
            raise ValueError(
                f"tree topology requires a streaming composition; "
                f"{self.pipeline.algorithm!r} is {self.pipeline.kind}"
            )

    def overrides(self) -> Dict[str, Any]:
        """The merged ``run_registered`` override dict (pipeline knobs plus
        resolved network and topology settings)."""
        merged = self.pipeline.to_overrides()
        merged.update(self.network.to_kwargs(self.seed))
        if self.topology is not None:
            merged.update(self.topology.to_overrides())
        return merged

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "pipeline": self.pipeline.to_dict(),
            "runs": self.runs,
            "seed": self.seed,
            "strategy": self.strategy,
        }
        if self.num_sources is not None:
            payload["num_sources"] = self.num_sources
        data = self.data.to_dict()
        if data != DataSpec().to_dict():
            payload["data"] = data
        network = self.network.to_dict()
        if network != NetworkSpec().to_dict():
            payload["network"] = network
        if self.topology is not None:
            topology = self.topology.to_dict()
            if topology != TopologySpec().to_dict():
                payload["topology"] = topology
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        _check_payload_fields(cls, payload)
        payload = dict(payload)
        if "pipeline" not in payload:
            raise ValueError("ExperimentSpec requires a [pipeline] section")
        payload["pipeline"] = PipelineConfig.from_dict(payload["pipeline"])
        payload["data"] = DataSpec.from_dict(payload.get("data", {}))
        payload["network"] = NetworkSpec.from_dict(payload.get("network", {}))
        if payload.get("topology") is not None:
            payload["topology"] = TopologySpec.from_dict(payload["topology"])
        return cls(**payload)


# ---------------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------------

#: Axis name → (section, target field).  ``pipeline`` axes cover every
#: PipelineConfig knob; a few CLI-friendly aliases route to the data /
#: network / experiment sections.
_AXIS_TARGETS: Dict[str, Tuple[str, str]] = {
    **{f: ("pipeline", f) for f in (
        "algorithm", "k", "epsilon", "delta", "coreset_size", "total_samples",
        "pca_rank", "jl_dimension", "second_jl_dimension", "quantize_bits",
        "batch_size", "window", "query_every", "server_n_init",
        "server_max_iterations", "jobs",
    )},
    "dataset": ("data", "name"),
    "n": ("data", "n"),
    "d": ("data", "d"),
    "net": ("network", "preset"),
    "preset": ("network", "preset"),
    "loss": ("network", "loss"),
    "retries": ("network", "retries"),
    "dropout": ("network", "dropout"),
    "num_sources": ("experiment", "num_sources"),
    "strategy": ("experiment", "strategy"),
    "runs": ("experiment", "runs"),
    "seed": ("experiment", "seed"),
    "topology": ("topology", "kind"),
    "fan_in": ("topology", "fan_in"),
}


def axis_names() -> Tuple[str, ...]:
    """Valid sweep-axis / override names, sorted."""
    return tuple(sorted(_AXIS_TARGETS))


def apply_axis_overrides(
    spec: ExperimentSpec, overrides: Mapping[str, Any]
) -> ExperimentSpec:
    """Rebuild a spec with axis-style overrides applied to the right
    sections (shared by sweep expansion and the CLI's flags-over-spec-file
    path).  The new spec re-validates at construction."""
    sections: Dict[str, Dict[str, Any]] = {
        "pipeline": {}, "data": {}, "network": {}, "experiment": {},
        "topology": {},
    }
    for name, value in overrides.items():
        if name not in _AXIS_TARGETS:
            raise ValueError(
                f"unknown override {name!r}; available: {', '.join(axis_names())}"
            )
        section, target = _AXIS_TARGETS[name]
        sections[section][target] = value
    # Collect every section into ONE replace() so ExperimentSpec only
    # re-validates the jointly-overridden spec — applying sections one at a
    # time would reject valid combinations at an intermediate step (e.g.
    # algorithm=bklw + num_sources=4 over a single-source base).
    changes: Dict[str, Any] = dict(sections["experiment"])
    if sections["pipeline"]:
        changes["pipeline"] = replace(spec.pipeline, **sections["pipeline"])
    if sections["data"]:
        changes["data"] = replace(spec.data, **sections["data"])
    if sections["network"]:
        changes["network"] = replace(spec.network, **sections["network"])
    if sections["topology"]:
        base_topology = spec.topology if spec.topology is not None else TopologySpec()
        merged = {
            "kind": base_topology.kind,
            "fan_in": base_topology.fan_in,
            **sections["topology"],
        }
        # A star cell has no fan-in: drop it so grids crossing
        # topology=("star", "tree") with a fan_in axis stay valid — the
        # star rows are the flat baseline the tree rows compare against.
        if merged["kind"] == "star":
            merged["fan_in"] = None
        changes["topology"] = TopologySpec(**merged)
    return replace(spec, **changes) if changes else spec


@dataclass(frozen=True)
class SweepCell:
    """One expanded sweep cell: its grid coordinates plus the full spec."""

    index: int
    cell_id: str
    overrides: Tuple[Tuple[str, Any], ...]
    spec: ExperimentSpec


@dataclass(frozen=True)
class SweepSpec:
    """A base experiment plus axis lists, expanded to the full grid.

    Axes expand in declaration order via the cartesian product; every cell
    keeps the base ``seed`` (unless ``seed`` itself is an axis), so all
    cells draw *paired* Monte-Carlo run seeds, and the sweep runner shares
    one reference solution per ``(dataset, k)`` — the paper's paired-runs
    methodology.
    """

    base: ExperimentSpec
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            raise TypeError("base must be an ExperimentSpec")
        def _values(value: Any) -> Tuple[Any, ...]:
            # A scalar — including a bare string, which is iterable but
            # never meant as a character list (`net = "lossy"` in TOML) —
            # is a one-value axis.
            if isinstance(value, str):
                return (value,)
            try:
                return tuple(value)
            except TypeError:
                return (value,)

        if isinstance(self.axes, Mapping):
            axes = tuple((str(k), _values(v)) for k, v in self.axes.items())
        else:
            axes = tuple((str(k), _values(v)) for k, v in self.axes)
        for name, values in axes:
            if name not in _AXIS_TARGETS:
                raise ValueError(
                    f"unknown sweep axis {name!r}; available axes: "
                    f"{', '.join(sorted(_AXIS_TARGETS))}"
                )
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
        names = [name for name, _ in axes]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            # Tuple-form axes could repeat a name; the grid would be
            # nonsense and to_dict() would silently collapse it.
            raise ValueError(
                f"duplicate sweep axis name(s): {', '.join(duplicates)}"
            )
        object.__setattr__(self, "axes", axes)

    def cell_count(self) -> int:
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def cells(self) -> List[SweepCell]:
        """Expand the grid: one validated :class:`ExperimentSpec` per cell."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        cells: List[SweepCell] = []
        for index, combo in enumerate(itertools.product(*value_lists)):
            overrides = tuple(zip(names, combo))
            cells.append(SweepCell(
                index=index,
                cell_id=",".join(f"{n}={v}" for n, v in overrides) or "base",
                overrides=overrides,
                spec=self._apply(overrides),
            ))
        return cells

    def _apply(self, overrides: Sequence[Tuple[str, Any]]) -> ExperimentSpec:
        return apply_axis_overrides(self.base, dict(overrides))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        _check_payload_fields(cls, payload)
        if "base" not in payload:
            raise ValueError("SweepSpec requires a [base] section")
        return cls(
            base=ExperimentSpec.from_dict(payload["base"]),
            axes=payload.get("axes", ()),
        )


__all__ = [
    "PARTITION_STRATEGIES",
    "DATASET_NAMES",
    "parse_dropout",
    "axis_names",
    "apply_axis_overrides",
    "PipelineConfig",
    "DataSpec",
    "NetworkSpec",
    "TopologySpec",
    "ExperimentSpec",
    "SweepCell",
    "SweepSpec",
]
