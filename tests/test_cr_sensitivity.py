"""Tests for repro.cr.sensitivity — sensitivity-sampling coresets."""

import numpy as np
import pytest

from repro.cr.sensitivity import SensitivitySampler, sensitivity_sample_size
from repro.kmeans.cost import kmeans_cost, weighted_kmeans_cost
from repro.kmeans.lloyd import solve_reference_kmeans


class TestSampleSize:
    def test_grows_with_k_and_shrinks_with_epsilon(self):
        assert sensitivity_sample_size(4, 0.2) > sensitivity_sample_size(2, 0.2)
        assert sensitivity_sample_size(2, 0.1) > sensitivity_sample_size(2, 0.4)

    def test_at_least_k_plus_one(self):
        assert sensitivity_sample_size(5, 0.9, constant=1e-9) >= 6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sensitivity_sample_size(0, 0.2)
        with pytest.raises(ValueError):
            sensitivity_sample_size(2, 0.0)


class TestSensitivityScores:
    def test_scores_positive_and_bounded(self, blob_points):
        sampler = SensitivitySampler(k=4, size=50, seed=0)
        scores = sampler.compute_sensitivities(blob_points)
        assert np.all(scores.scores > 0)
        assert scores.total == pytest.approx(scores.scores.sum())
        # Sum of the sensitivity upper bounds is O(k): cost term sums to one,
        # cluster term sums to the number of bicriteria clusters.
        assert scores.total <= scores.bicriteria.size + 2.0

    def test_outlier_gets_high_sensitivity(self):
        rng = np.random.default_rng(0)
        points = np.vstack([rng.standard_normal((200, 2)), [[500.0, 500.0]]])
        sampler = SensitivitySampler(k=2, size=20, seed=1)
        scores = sampler.compute_sensitivities(points)
        # The outlier's score should be far above the median score, unless it
        # was captured as a bicriteria center (in which case its cluster-mass
        # term alone still dominates the median).
        assert scores.scores[-1] > 5 * np.median(scores.scores)

    def test_degenerate_identical_points(self):
        points = np.tile(np.array([[1.0, 1.0]]), (50, 1))
        sampler = SensitivitySampler(k=3, size=10, seed=2)
        scores = sampler.compute_sensitivities(points)
        assert np.all(np.isfinite(scores.scores))


class TestSensitivityCoreset:
    def test_size_and_dimension(self, blob_points):
        sampler = SensitivitySampler(k=4, size=60, seed=3)
        coreset = sampler.build(blob_points)
        assert coreset.size == 60
        assert coreset.dimension == blob_points.shape[1]

    def test_total_weight_matches_cardinality(self, blob_points):
        sampler = SensitivitySampler(k=4, size=80, seed=4)
        coreset = sampler.build(blob_points)
        # Footnote 8: deterministic weights sum exactly to n.
        assert coreset.total_weight == pytest.approx(blob_points.shape[0])

    def test_non_deterministic_weights_unbiased_total(self, blob_points):
        totals = []
        for seed in range(5):
            sampler = SensitivitySampler(
                k=4, size=100, seed=seed, deterministic_weights=False
            )
            totals.append(sampler.build(blob_points).total_weight)
        assert np.mean(totals) == pytest.approx(blob_points.shape[0], rel=0.35)

    def test_coreset_cost_approximates_true_cost(self, blobs):
        points, _, _ = blobs
        reference = solve_reference_kmeans(points, 4, n_init=5, seed=0)
        sampler = SensitivitySampler(k=4, size=120, seed=5)
        coreset = sampler.build(points)
        approx = weighted_kmeans_cost(coreset.points, reference.centers, coreset.weights)
        true = kmeans_cost(points, reference.centers)
        assert approx == pytest.approx(true, rel=0.5)

    def test_shift_is_carried(self, blob_points):
        sampler = SensitivitySampler(k=2, size=30, seed=6)
        coreset = sampler.build(blob_points, shift=7.5)
        assert coreset.shift == pytest.approx(7.5)

    def test_size_capped_at_n(self):
        points = np.random.default_rng(0).standard_normal((20, 3))
        sampler = SensitivitySampler(k=2, size=100, seed=7)
        assert sampler.build(points).size == 20

    def test_weighted_input_respected(self, blob_points):
        # Placing all weight on one cluster should concentrate samples there.
        weights = np.ones(blob_points.shape[0])
        weights[:100] = 1000.0
        sampler = SensitivitySampler(k=4, size=80, seed=8)
        coreset = sampler.build(blob_points, weights=weights)
        assert coreset.total_weight == pytest.approx(weights.sum())

    def test_reproducible_given_seed(self, blob_points):
        a = SensitivitySampler(k=3, size=40, seed=9).build(blob_points)
        b = SensitivitySampler(k=3, size=40, seed=9).build(blob_points)
        assert np.allclose(a.points, b.points)
        assert np.allclose(a.weights, b.weights)
