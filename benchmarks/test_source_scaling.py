"""S2 — Source-count scaling: flat star vs hierarchical aggregation tree.

The paper's experiments stop at 10 sources; the star topology they imply
folds every source directly into the edge server, so the server's query cost
grows linearly with the source count.  This benchmark records the 10 → 10k
source-count curve for the flat star and for a balanced aggregation tree
(``topology="tree"``), persisting wall time, simulated network seconds,
uplink traffic and clustering quality per row into ``BENCH_scaling.json``.

The committed curve is produced with ``REPRO_SCALING_MAX_SOURCES=10000``;
the default stops at 1000 so the tier-1 suite stays affordable.  CI runs the
1000-source smoke and relies on this file's own gate: at >= 1000 sources the
tree must beat the flat star on wall time while staying in the same quality
regime.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import numpy as np
import pytest

from bench_helpers import print_series, record_bench
from repro.core.streaming import StreamingEngine
from repro.datasets import make_gaussian_mixture
from repro.distributed.conditions import LinkModel, NetworkCondition
from repro.stages.cr import FSSStage

#: Source counts of the committed curve; trimmed by REPRO_SCALING_MAX_SOURCES.
SOURCE_COUNTS = (10, 100, 1000, 10000)
MAX_SOURCES = int(os.environ.get("REPRO_SCALING_MAX_SOURCES", "1000"))

K = 4
D = 8
#: Points per source: BATCHES_PER_SOURCE batches of BATCH_SIZE each, so the
#: dataset grows linearly with the source count (n = 96 m) and the per-source
#: work stays constant — what scales is purely the aggregation fan-in.
BATCH_SIZE = 32
BATCHES_PER_SOURCE = 3
CORESET_SIZE = 64
#: Tree fan-in; at source counts at or below the fan-in a 32-ary tree
#: degenerates to the star, so small counts use a smaller fan-in to keep a
#: genuine mid-tree hop in every tree row (that is where the small-m overhead
#: the curve documents comes from).
FAN_IN = 32
SEED = 62

#: Lossless but metered wire: every transmission costs latency + payload
#: seconds, so the curve records non-trivial simulated network time without
#: retransmission randomness.
METERED = NetworkCondition(
    name="metered",
    default_link=LinkModel(
        loss=0.0, latency_seconds=0.005, bandwidth_bits_per_second=50e6
    ),
)


def _counts():
    return [m for m in SOURCE_COUNTS if m <= MAX_SOURCES]


def _fan_in_for(num_sources: int) -> int:
    return FAN_IN if num_sources > FAN_IN else 4


def _engine(num_sources: int, flat: bool) -> StreamingEngine:
    kwargs = {}
    if not flat:
        kwargs = {"topology": "tree", "fan_in": _fan_in_for(num_sources)}
    return StreamingEngine(
        [FSSStage(size=CORESET_SIZE)],
        k=K,
        batch_size=BATCH_SIZE,
        query_every=1,
        server_n_init=3,
        server_max_iterations=25,
        seed=SEED,
        jobs=1,
        network=METERED,
        **kwargs,
    )


def _clustering_cost(points: np.ndarray, centers: np.ndarray) -> float:
    distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return float(distances.min(axis=1).sum())


def _measure(num_sources: int) -> Dict[str, Dict[str, float]]:
    n = num_sources * BATCH_SIZE * BATCHES_PER_SOURCE
    points, _, true_centers = make_gaussian_mixture(
        n=n, d=D, k=K, separation=6.0, seed=SEED
    )
    shards = np.array_split(points, num_sources)
    baseline_cost = _clustering_cost(points, true_centers)

    rows: Dict[str, Dict[str, float]] = {}
    for label, flat in ((f"flat@{num_sources}", True), (f"tree@{num_sources}", False)):
        engine = _engine(num_sources, flat)
        start = time.perf_counter()
        report = engine.run(shards)
        wall = time.perf_counter() - start
        rows[label] = {
            "num_sources": float(num_sources),
            "wall_seconds": wall,
            "simulated_network_seconds": float(report.simulated_network_seconds),
            "uplink_scalars": float(report.communication_scalars),
            "uplink_bits": float(report.communication_bits),
            "normalized_cost": _clustering_cost(points, report.centers) / baseline_cost,
            "fan_in": float(0 if flat else _fan_in_for(num_sources)),
            "num_aggregators": float(report.details.get("num_aggregators", 0)),
            "topology_hops": float(report.details.get("topology_hops", 1)),
        }
    return rows


@pytest.mark.benchmark(group="scaling")
def test_source_scaling_curve():
    counts = _counts()
    rows: Dict[str, Dict[str, float]] = {}
    for m in counts:
        rows.update(_measure(m))

    record_bench("scaling", rows)
    metrics = ("wall_seconds", "simulated_network_seconds", "normalized_cost")
    for metric in metrics:
        print_series(
            f"Source scaling — {metric}",
            "sources",
            counts,
            {
                "flat": [rows[f"flat@{m}"][metric] for m in counts],
                "tree": [rows[f"tree@{m}"][metric] for m in counts],
            },
        )

    for m in counts:
        flat, tree = rows[f"flat@{m}"], rows[f"tree@{m}"]
        # Both modes answer the query in the regime of the true mixture cost.
        assert flat["normalized_cost"] < 2.0, (m, flat["normalized_cost"])
        # The tree's summary quality tracks the flat fold's: every hop is an
        # exact merge followed by one more coreset reduction.
        assert tree["normalized_cost"] <= flat["normalized_cost"] * 1.25 + 0.35, m
        # Mid-tree hops retransmit reduced coresets, so the tree pays more
        # simulated wire time but never less than the star's uplink.
        assert tree["simulated_network_seconds"] >= flat["simulated_network_seconds"]
        assert tree["num_aggregators"] > 0, m

    # The point of the subsystem: past ~1k sources the star's fold/query cost
    # at the server dominates and the tree is strictly faster end-to-end.
    gated = [m for m in counts if m >= 1000]
    for m in gated:
        flat, tree = rows[f"flat@{m}"], rows[f"tree@{m}"]
        assert tree["wall_seconds"] < flat["wall_seconds"], (
            m,
            tree["wall_seconds"],
            flat["wall_seconds"],
        )
