"""Tests for repro.topology.spec (the Topology shape) and the declarative
``TopologySpec`` section of the experiment API."""

import pytest

from repro.api import ExperimentSpec, PipelineConfig, DataSpec, SweepSpec, TopologySpec
from repro.api.serialization import dumps_toml, spec_from_dict
from repro.api.specs import apply_axis_overrides
from repro.topology import Topology, is_aggregator_id, resolve_topology
from repro.topology.spec import source_id


class TestTopologyConstructors:
    def test_star_has_no_aggregators(self):
        topo = Topology.star(5)
        assert topo.is_star
        assert topo.num_aggregators == 0
        assert topo.hops == 1
        assert all(topo.parent(s) == "server" for s in topo.source_ids)

    def test_balanced_assigns_contiguous_blocks(self):
        topo = Topology.balanced(6, fan_in=2)
        # Deterministic assignment: source i lands on aggregator i // fan_in.
        for i in range(6):
            assert topo.parent(source_id(i)) == f"agg-1-{i // 2}"
        assert topo.hops == 3  # source -> agg-1 -> agg-2 -> server
        assert topo.num_aggregators == 5  # three level-1 + two level-2

    def test_balanced_degenerates_to_star_at_small_counts(self):
        assert Topology.balanced(4, fan_in=8).is_star
        assert not Topology.balanced(9, fan_in=8).is_star

    def test_balanced_is_deterministic(self):
        a = Topology.balanced(100, fan_in=4)
        b = Topology.balanced(100, fan_in=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a.aggregator_ids == b.aggregator_ids

    def test_forced_depth(self):
        shallow = Topology.balanced(4, fan_in=2, depth=1)
        assert shallow.num_aggregators == 2
        assert shallow.hops == 2
        assert Topology.balanced(4, fan_in=2, depth=0).is_star

    def test_fan_in_floor(self):
        with pytest.raises(ValueError, match="fan_in"):
            Topology.balanced(4, fan_in=1)

    def test_from_edges(self):
        topo = Topology.from_edges(
            [
                ("source-0", "agg-1-0"),
                ("source-1", "agg-1-0"),
                ("source-2", "server"),
                ("agg-1-0", "server"),
            ]
        )
        assert topo.num_sources == 3
        assert topo.num_aggregators == 1
        assert topo.level("agg-1-0") == 1
        assert topo.children("server") == ("agg-1-0", "source-2")

    def test_from_edges_rejects_two_parents(self):
        with pytest.raises(ValueError, match="two parents"):
            Topology.from_edges(
                [("source-0", "server"), ("source-0", "agg-1-0"), ("agg-1-0", "server")]
            )


class TestTopologyValidation:
    def test_sources_must_be_contiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            Topology({"source-0": "server", "source-2": "server"})

    def test_dangling_aggregator_parent(self):
        with pytest.raises(ValueError, match="dangling"):
            Topology({"source-0": "agg-1-0"})

    def test_childless_aggregator(self):
        with pytest.raises(ValueError, match="no children"):
            Topology({"source-0": "server", "agg-1-0": "server"})

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            Topology(
                {
                    "source-0": "agg-1-0",
                    "agg-1-0": "agg-2-0",
                    "agg-2-0": "agg-1-0",
                }
            )

    def test_unknown_parent_kind(self):
        with pytest.raises(ValueError, match="neither"):
            Topology({"source-0": "source-1", "source-1": "server"})


class TestSubtrees:
    def test_subtree_sources_is_the_blast_radius(self):
        topo = Topology.balanced(8, fan_in=2)
        assert topo.subtree_sources("agg-1-0") == ("source-0", "source-1")
        # A level-2 aggregator covers its whole half of the tree.
        level2 = [a for a in topo.aggregator_ids if topo.level(a) == 2]
        assert topo.subtree_sources(level2[0]) == (
            "source-0",
            "source-1",
            "source-2",
            "source-3",
        )

    def test_is_aggregator_id(self):
        assert is_aggregator_id("agg-1-0")
        assert not is_aggregator_id("source-3")
        assert not is_aggregator_id("server")


class TestResolveTopology:
    def test_none_and_star_resolve_to_flat(self):
        assert resolve_topology(None, None, 10) is None
        assert resolve_topology("star", None, 10) is None

    def test_tree_requires_fan_in(self):
        with pytest.raises(ValueError, match="fan_in"):
            resolve_topology("tree", None, 10)

    def test_fan_in_requires_tree(self):
        with pytest.raises(ValueError, match="topology"):
            resolve_topology(None, 4, 10)

    def test_tree_builds_balanced(self):
        topo = resolve_topology("tree", 3, 10)
        assert topo == Topology.balanced(10, fan_in=3)

    def test_degenerate_tree_is_flat(self):
        assert resolve_topology("tree", 16, 10) is None

    def test_explicit_topology_checked_against_source_count(self):
        topo = Topology.balanced(10, fan_in=3)
        assert resolve_topology(topo, None, 10) is topo
        with pytest.raises(ValueError, match="sources"):
            resolve_topology(topo, None, 12)
        with pytest.raises(ValueError, match="fan_in"):
            resolve_topology(topo, 3, 10)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("ring", None, 10)


def _streaming_spec(**kwargs):
    return ExperimentSpec(
        pipeline=PipelineConfig(algorithm="stream-fss", k=3, coreset_size=40),
        data=DataSpec(name="mnist", n=400, d=8),
        runs=1,
        seed=5,
        num_sources=6,
        **kwargs,
    )


class TestTopologySpec:
    def test_defaults_to_star(self):
        spec = TopologySpec()
        assert spec.kind == "star"
        assert spec.to_overrides() == {}

    def test_tree_requires_fan_in(self):
        with pytest.raises(ValueError, match="fan_in"):
            TopologySpec(kind="tree")
        with pytest.raises(ValueError, match="fan_in"):
            TopologySpec(kind="star", fan_in=4)
        with pytest.raises(ValueError, match="kind"):
            TopologySpec(kind="ring", fan_in=4)

    def test_tree_overrides(self):
        spec = TopologySpec(kind="tree", fan_in=4)
        assert spec.to_overrides() == {"topology": "tree", "fan_in": 4}

    def test_experiment_spec_requires_streaming_for_trees(self):
        with pytest.raises(ValueError, match="streaming"):
            ExperimentSpec(
                pipeline=PipelineConfig(algorithm="fss", k=3, coreset_size=40),
                data=DataSpec(name="mnist", n=400, d=8),
                topology=TopologySpec(kind="tree", fan_in=4),
            )

    def test_toml_round_trip(self):
        spec = _streaming_spec(topology=TopologySpec(kind="tree", fan_in=4))
        text = dumps_toml(spec.to_dict())
        assert "[topology]" in text
        restored = spec_from_dict(spec.to_dict())
        assert restored.topology == TopologySpec(kind="tree", fan_in=4)
        assert restored == spec

    def test_star_section_omitted_from_dict(self):
        assert "topology" not in _streaming_spec().to_dict()

    def test_overrides_reach_the_pipeline(self):
        spec = _streaming_spec(topology=TopologySpec(kind="tree", fan_in=4))
        overrides = spec.overrides()
        assert overrides["topology"] == "tree"
        assert overrides["fan_in"] == 4


class TestTopologySweepAxes:
    def test_fan_in_axis(self):
        base = _streaming_spec(topology=TopologySpec(kind="tree", fan_in=2))
        varied = apply_axis_overrides(base, {"fan_in": 3})
        assert varied.topology == TopologySpec(kind="tree", fan_in=3)

    def test_topology_axis_star_drops_fan_in(self):
        # A star x tree grid keeps star cells valid: the flat baseline rows
        # simply ignore the grid's fan_in value.
        base = _streaming_spec()
        sweep = SweepSpec(
            base=base,
            axes={"topology": ("star", "tree"), "fan_in": (2, 3)},
        )
        cells = list(sweep.cells())
        assert len(cells) == 4
        topologies = {
            (c.spec.topology.kind if c.spec.topology else "star",
             c.spec.topology.fan_in if c.spec.topology else None)
            for c in cells
        }
        assert topologies == {("star", None), ("tree", 2), ("tree", 3)} | {
            ("star", None)
        }
