"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section (Section 7) on the synthetic substitutes of MNIST and NeurIPS (see
DESIGN.md §2 for the substitution rationale).  Dataset sizes default to
laptop-scale values so the full harness finishes in minutes; set the
environment variables ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_RUNS`` /
``REPRO_BENCH_SOURCES`` to run larger instances (see bench_helpers.py).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
tables; EXPERIMENTS.md records one such run next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from bench_helpers import K, MONTE_CARLO_RUNS, SCALE
from repro.datasets import make_mnist_like, make_neurips_like
from repro.metrics import ExperimentRunner


def _scaled(value: int) -> int:
    return max(64, int(value * SCALE))


@pytest.fixture(scope="session")
def mnist_dataset():
    """Laptop-scale stand-in for the MNIST training set (paper: 60000x784)."""
    return make_mnist_like(n=_scaled(2000), d=784, seed=1)


@pytest.fixture(scope="session")
def neurips_dataset():
    """Laptop-scale stand-in for the NeurIPS word counts (paper: 11463x5812)."""
    return make_neurips_like(n=_scaled(1500), d=_scaled(1200), seed=2)


@pytest.fixture(scope="session")
def mnist_runner(mnist_dataset):
    points, _ = mnist_dataset
    return ExperimentRunner(points, k=K, monte_carlo_runs=MONTE_CARLO_RUNS, seed=10)


@pytest.fixture(scope="session")
def neurips_runner(neurips_dataset):
    points, _ = neurips_dataset
    return ExperimentRunner(points, k=K, monte_carlo_runs=MONTE_CARLO_RUNS, seed=11)
