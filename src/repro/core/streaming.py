"""The streaming execution engine: batched arrivals, continuous queries.

:class:`StreamingEngine` is the online counterpart of
:class:`~repro.core.engine.DistributedStagePipeline`: the same declarative
stage composition, the same metered :class:`SimulatedNetwork`, the same
report contract — but each source ingests its shard as a sequence of
timestamped batches, keeps a bounded-memory merge-and-reduce
:class:`~repro.streaming.tree.CoresetTree`, and ships only incremental
summaries; the server folds them and answers weighted k-means queries at any
point in the stream.

Protocol sequence
-----------------
1. **Dimension pinning** — JL stages with derived target dimensions are
   pinned against the first batch, so every batch of every source is
   projected into the *same* space and summaries stay mergeable.
2. **Seed handshake** — once for the whole stream, as in the one-shot
   engine: data-oblivious DR maps are deployment configuration.
3. **Batch steps** — at step ``t`` every source ingests its ``t``-th batch
   (timed), updates its tree, and uplinks its bucket delta (metered, with a
   per-step ledger so windowed accounting can drop expired batches).
4. **Queries** — every ``query_every`` steps (and always at end-of-stream)
   the server merges live buckets, solves weighted k-means, and the engine
   lifts centers back; each query is recorded as a :class:`QuerySnapshot`.

In sliding-window mode (``window=W`` batches) expired buckets leave the
trees, the server view, *and* the accounting: the report's headline
communication counts only bits shipped for batches still inside the window,
and the query cost reflects only unexpired data.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import DistributedStagePipeline
from repro.core.report import PipelineReport
from repro.datasets.streams import iter_batches
from repro.distributed.conditions import (
    ConditionLike,
    FaultPlan,
    resolve_condition,
)
from repro.distributed.network import SimulatedNetwork
from repro.distributed.partition import partition_dataset
from repro.quantization.rounding import RoundingQuantizer
from repro.stages.base import Stage, StageContext
from repro.stages.cr import resolve_coreset_size
from repro.stages.dr import JLStage
from repro.stages.qt import QuantizeStage
from repro.streaming.server import StreamingServer
from repro.streaming.source import StreamingSource
from repro.topology.aggregator import AggregatorNode
from repro.topology.router import TopologyRouter
from repro.topology.spec import TopologyLike, resolve_topology
from repro.utils.parallel import parallel_map, resolve_jobs
from repro.utils.random import SeedLike, as_generator, derive_seed, spawn_generators
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive_int,
)


@dataclass
class QuerySnapshot:
    """One continuous-query answer taken mid-stream.

    ``scalars``/``bits`` are cumulative uplink totals at query time;
    ``windowed_scalars``/``windowed_bits`` count only the uplink attributable
    to batches still inside the sliding window (equal to the cumulative
    totals when the stream is unwindowed).
    """

    time: int
    centers: np.ndarray
    summary_cardinality: int
    summary_dimension: int
    scalars: int
    bits: int
    windowed_scalars: int
    windowed_bits: int
    live_buckets: int
    server_seconds: float


@dataclass
class StreamingReport(PipelineReport):
    """A :class:`PipelineReport` plus the stream's per-query history."""

    queries: List[QuerySnapshot] = field(default_factory=list)


@dataclass
class _ShapeState:
    """Shape-only stand-in for a SourceState during dimension pinning."""

    cardinality: int
    dimension: int
    is_raw: bool


class StreamingEngine(DistributedStagePipeline):
    """Execute a stage composition as an online streaming protocol.

    Parameters
    ----------
    stages:
        The composition applied to every batch; must contain exactly one CR
        stage (the first one found is also the tree's merge-and-reduce
        compressor).  Subclasses may override :meth:`build_stages` instead.
    k, epsilon, delta:
        Clustering problem parameters (same contract as StagePipeline).
    batch_size:
        Rows per batch when :meth:`run` slices shards into streams.
    window:
        Optional sliding window, in batches.  ``None`` streams the full
        prefix.
    query_every:
        Answer a k-means query every this many batch steps (the final step
        always answers one).  ``None`` queries only at end-of-stream.
    quantizer:
        Optional wire quantizer; sugar for appending a
        :class:`~repro.stages.qt.QuantizeStage`.
    server_n_init, server_max_iterations:
        Per-query weighted k-means solver parameters.
    seed:
        Master seed for the whole stream (handshake, samplers, solver).
        Each source gets its own generator pre-derived from it, so results
        are independent of the execution schedule (``jobs``).
    jobs:
        Worker threads for the per-source batch-compression steps (1 =
        sequential, 0 = all cores, ``None`` = ``REPRO_JOBS``).  Reports are
        identical for every value — only wall-clock changes.
    network, fault_plan, retries, network_seed:
        Simulated-network condition, scripted faults, retry-budget override,
        and loss-seed override.  In streaming mode the fault plan's rounds
        are *batch steps*: a dropout at round ``t`` removes the source from
        step ``t`` onwards (its last shipped summary stays at the server), a
        flaky window ``[a, b)`` makes steps ``a..b-1`` undeliverable — the
        source keeps compressing locally and ships the pending bucket delta
        once the link recovers.  Fault plans may also name aggregators
        (``"agg-<level>-<index>"``): a dead aggregator severs exactly its
        subtree, the rest of the tree keeps streaming.
    topology, fan_in:
        Aggregation topology.  ``None`` / ``"star"`` is the paper's flat
        source → server fold (bit-identical to the pre-topology engine);
        ``"tree"`` folds sources through a balanced aggregator tree with
        ``fan_in`` children per node (each hop a metered coreset merge +
        re-reduce); a :class:`~repro.topology.spec.Topology` instance pins
        an explicit shape.  Star runs draw exactly the same random
        sequence as before — aggregator generators are derived only in
        tree mode, after all flat-path draws.
    """

    name: str = "streaming"

    def __init__(
        self,
        stages: Optional[Sequence[Stage]] = None,
        *,
        k: int,
        epsilon: float = 0.2,
        delta: float = 0.1,
        batch_size: int = 512,
        window: Optional[int] = None,
        query_every: Optional[int] = None,
        quantizer: Optional[RoundingQuantizer] = None,
        server_n_init: int = 5,
        server_max_iterations: int = 100,
        seed: SeedLike = None,
        name: Optional[str] = None,
        jobs: Optional[int] = None,
        network: ConditionLike = None,
        fault_plan: Optional[FaultPlan] = None,
        retries: Optional[int] = None,
        network_seed: Optional[int] = None,
        topology: TopologyLike = None,
        fan_in: Optional[int] = None,
    ) -> None:
        # Deliberately does not call the distributed pipeline's __init__:
        # streaming merges summaries single-source-style, so epsilon is not
        # subject to the 1/3 cap of the BKLW analysis.
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.delta = check_fraction(delta, "delta")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.window = None if window is None else check_positive_int(window, "window")
        self.query_every = (
            None if query_every is None else check_positive_int(query_every, "query_every")
        )
        self.quantizer = quantizer
        self.server_n_init = check_positive_int(server_n_init, "server_n_init")
        self.server_max_iterations = check_positive_int(
            server_max_iterations, "server_max_iterations"
        )
        self.jobs = resolve_jobs(jobs)
        self.network_condition = resolve_condition(network).with_overrides(
            retries=retries, seed=network_seed
        )
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.topology = topology
        self.fan_in = None if fan_in is None else check_positive_int(fan_in, "fan_in")
        self._rng = as_generator(seed)
        self._stages = None if stages is None else list(stages)
        if name is not None:
            self.name = str(name)

    # ------------------------------------------------------------------ API
    def run(self, shards: Sequence[np.ndarray]) -> StreamingReport:
        """Stream per-source shards in ``batch_size`` batches (arrival order
        = storage order) and return the end-of-stream report."""
        shards = [check_matrix(s, "shard") for s in shards]
        if not shards:
            raise ValueError("at least one shard is required")
        return self.run_streams([iter_batches(s, self.batch_size) for s in shards])

    def run_on_dataset(
        self,
        points: np.ndarray,
        num_sources: int,
        strategy: str = "random",
        partition_seed: SeedLike = None,
    ) -> StreamingReport:
        """Convenience wrapper: partition ``points`` and stream the shards."""
        points = check_matrix(points, "points")
        seed = partition_seed if partition_seed is not None else derive_seed(self._rng)
        indices = partition_dataset(points, num_sources, strategy=strategy, seed=seed)
        return self.run([points[idx] for idx in indices])

    def run_streams(
        self, streams: Sequence[Iterable[np.ndarray]]
    ) -> StreamingReport:
        """Execute the streaming protocol over one batch iterator per source."""
        if not streams:
            raise ValueError("at least one batch stream is required")
        iterators = [iter(s) for s in streams]
        # Resolve the aggregation topology against the actual source count
        # before any random draws, so configuration errors surface eagerly.
        # ``None`` means star: the flat code path, bit-identical to the
        # pre-topology engine.
        topology = resolve_topology(self.topology, self.fan_in, len(iterators))
        ctx = StageContext(
            k=self.k, epsilon=self.epsilon, delta=self.delta, rng=self._rng
        )

        first_batch = next(iterators[0], None)
        if first_batch is None:
            raise ValueError("the first stream yielded no batches")
        first_batch = check_matrix(first_batch, "batch")
        iterators[0] = iter(itertools.chain([first_batch], iterators[0]))

        stages = self._wire_stages()
        stages = _pin_derived_dimensions(stages, first_batch.shape, ctx)
        reduce_stage = next((s for s in stages if s.reduces_cardinality), None)
        if reduce_stage is None:
            raise ValueError(
                "streaming requires a CR stage (FSS / SS / Uniform) in the "
                "composition; merge-and-reduce has nothing to reduce with"
            )
        for stage in stages:
            stage.handshake(ctx)

        network = SimulatedNetwork(
            condition=self.network_condition, fault_plan=self.fault_plan
        )
        server = StreamingServer(
            k=self.k,
            n_init=self.server_n_init,
            max_iterations=self.server_max_iterations,
            seed=derive_seed(self._rng),
        )
        # Every source draws from its own generator, pre-derived from the
        # master seed in source order: the per-batch sampler seeds are then
        # independent of the execution schedule, which is what lets the
        # compression steps run on a thread pool without losing determinism
        # (jobs=1 and jobs=N produce identical reports).
        source_rngs = spawn_generators(self._rng, len(iterators))
        sources = [
            StreamingSource(
                f"source-{i}",
                stages,
                reduce_stage,
                StageContext(
                    k=self.k, epsilon=self.epsilon, delta=self.delta, rng=source_rngs[i]
                ),
                network,
                window=self.window,
                receiver="server" if topology is None else topology.parent(f"source-{i}"),
            )
            for i in range(len(iterators))
        ]
        router = None
        if topology is None:
            # Registration handshake: folds from anything but these sources
            # are typed rejections, matching the serve daemon's admission
            # contract.
            for source in sources:
                server.register(source.source_id)
        else:
            # Aggregator generators are derived only in tree mode, *after*
            # every flat-path draw — star runs keep the exact pre-topology
            # random sequence.
            agg_rngs = spawn_generators(self._rng, topology.num_aggregators)
            wire_quantizer = next(
                (s.quantizer for s in stages if isinstance(s, QuantizeStage)), None
            )
            aggregators = [
                AggregatorNode(
                    agg_id,
                    topology.parent(agg_id),
                    topology.level(agg_id),
                    reduce_stage,
                    StageContext(
                        k=self.k, epsilon=self.epsilon, delta=self.delta,
                        rng=agg_rngs[j],
                    ),
                    network,
                    quantizer=wire_quantizer,
                )
                for j, agg_id in enumerate(topology.aggregator_ids)
            ]
            router = TopologyRouter(
                topology, sources, aggregators, server, network, self.fault_plan
            )

        ledger: Dict[int, List[int]] = {}
        queries: List[QuerySnapshot] = []
        exhausted = [False] * len(iterators)
        # One long-lived pool for the whole stream: the compress phase runs
        # once per batch step, and per-step pool setup/teardown would eat
        # the speed-up on long streams of small batches.
        executor = (
            ThreadPoolExecutor(max_workers=min(self.jobs, len(iterators)))
            if self.jobs > 1 and len(iterators) > 1
            else None
        )
        try:
            t = self._stream_steps(
                iterators, sources, server, network, ledger, queries, exhausted,
                executor, router,
            )
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        if t == 0:
            raise ValueError("the streams yielded no batches")
        last_step = t - 1
        if not queries or queries[-1].time != last_step:
            queries.append(self._query(server, sources, network, ledger, last_step))

        return self._report(sources, server, network, queries, ledger, t, router)

    def _stream_steps(
        self,
        iterators,
        sources,
        server,
        network,
        ledger,
        queries,
        exhausted,
        executor,
        router=None,
    ) -> int:
        """Drive the batch-step loop; returns the number of steps taken."""
        t = 0
        while not all(exhausted):
            # Stream time is the fault plan's round clock: dropouts and
            # flaky windows are evaluated against the batch step.
            network.advance_round(to_round=t)
            for i, source in enumerate(sources):
                if not exhausted[i] and self.fault_plan.is_permanently_down(
                    source.source_id, t
                ):
                    # The node died: it stops ingesting; its last shipped
                    # summary stays at the server (stale but valid data).
                    network.mark_failed(source.source_id)
                    exhausted[i] = True
            if router is not None:
                # A dead aggregator severs exactly its subtree: descendant
                # sources stop ingesting, its parent keeps its last bucket.
                for i in router.apply_faults(t):
                    exhausted[i] = True
            # Gather this step's arrivals first: the loop must end *before*
            # stream time advances past the last real batch step, otherwise
            # sliding-window expiry would run one tick beyond the stream and
            # drop buckets the mandatory end-of-stream query still covers.
            arrivals = []
            for i, iterator in enumerate(iterators):
                batch = None if exhausted[i] else next(iterator, None)
                if batch is None:
                    exhausted[i] = True
                arrivals.append(batch)
            if all(batch is None for batch in arrivals):
                break
            # Compute phase: compress this step's batches in parallel (tree
            # updates and sampler draws touch only source-local state).
            active = [
                (source, check_matrix(batch, "batch"))
                for source, batch in zip(sources, arrivals)
                if batch is not None
            ]
            parallel_map(
                lambda sb: sb[0].compress(sb[1], t), active, self.jobs,
                executor=executor,
            )
            # Transmission phase: serial, in source order — the metered
            # uplink and the per-step ledger are schedule-independent.  In
            # tree mode the router drives it (sources fold into their
            # aggregators, aggregators cascade upward level by level).
            if router is not None:
                router.deliver_step(t, arrivals, ledger, self.window)
                if (
                    self.query_every is not None
                    and (t + 1) % self.query_every == 0
                    and server.has_summary
                ):
                    queries.append(self._query(server, sources, network, ledger, t))
                t += 1
                continue
            for source, batch in zip(sources, arrivals):
                if batch is None:
                    # Sliding window: an ended stream still ages while others
                    # ingest — its out-of-window buckets must leave the
                    # server view (and the query cost) in lockstep.  A failed
                    # source cannot retire anything: its last summary stays
                    # at the server as-is.
                    if self.window is not None and not network.is_failed(
                        source.source_id
                    ):
                        server.fold(source.advance(t))
                    continue
                scalars_before = network.uplink_scalars()
                bits_before = network.uplink_bits()
                server.fold(source.flush(t))
                step = ledger.setdefault(t, [0, 0])
                step[0] += network.uplink_scalars() - scalars_before
                step[1] += network.uplink_bits() - bits_before
            if (
                self.query_every is not None
                and (t + 1) % self.query_every == 0
                and server.has_summary
            ):
                queries.append(self._query(server, sources, network, ledger, t))
            t += 1
        return t

    def standalone_source(
        self,
        source_id: str,
        first_batch_shape: Tuple[int, int],
        network: Optional[SimulatedNetwork] = None,
    ) -> StreamingSource:
        """Build one fully handshaken :class:`StreamingSource` outside the
        in-process batch loop — the client half of ``repro serve``.

        Runs exactly the stream-start protocol of :meth:`run_streams`
        (dimension pinning against the first batch's shape, the stream-wide
        seed handshake, the per-source generator derivation), so two
        processes constructing the same composition from the same seed agree
        on the DR maps and their summaries stay mergeable at the daemon.
        """
        if self.topology not in (None, "star") or self.fan_in is not None:
            raise ValueError(
                "standalone_source is the client half of a star deployment "
                "(sources fold straight into the daemon); tree topologies "
                "apply only to in-process runs"
            )
        ctx = StageContext(
            k=self.k, epsilon=self.epsilon, delta=self.delta, rng=self._rng
        )
        stages = self._wire_stages()
        stages = _pin_derived_dimensions(stages, first_batch_shape, ctx)
        reduce_stage = next((s for s in stages if s.reduces_cardinality), None)
        if reduce_stage is None:
            raise ValueError(
                "streaming requires a CR stage (FSS / SS / Uniform) in the "
                "composition; merge-and-reduce has nothing to reduce with"
            )
        for stage in stages:
            stage.handshake(ctx)
        source_rng = spawn_generators(self._rng, 1)[0]
        return StreamingSource(
            str(source_id),
            stages,
            reduce_stage,
            StageContext(
                k=self.k, epsilon=self.epsilon, delta=self.delta, rng=source_rng
            ),
            network if network is not None else SimulatedNetwork(),
            window=self.window,
        )

    # ------------------------------------------------------------ internals
    def _wire_stages(self) -> List[Stage]:
        stages = self.build_stages()
        if self.quantizer is not None:
            stages.append(QuantizeStage(self.quantizer))
        return stages

    def _windowed_totals(self, ledger: Dict[int, List[int]], t: int) -> Tuple[int, int]:
        if self.window is None:
            steps = ledger.values()
        else:
            steps = (ledger[s] for s in ledger if s > t - self.window)
        scalars = bits = 0
        for step_scalars, step_bits in steps:
            scalars += step_scalars
            bits += step_bits
        return scalars, bits

    def _query(
        self,
        server: StreamingServer,
        sources: Sequence[StreamingSource],
        network: SimulatedNetwork,
        ledger: Dict[int, List[int]],
        t: int,
    ) -> QuerySnapshot:
        result, coreset, seconds = server.query()
        centers = result.centers
        lifts = next((s.lifts for s in sources if s.lifts is not None), [])
        for lift in reversed(lifts):
            centers = lift(centers)
        windowed_scalars, windowed_bits = self._windowed_totals(ledger, t)
        return QuerySnapshot(
            time=t,
            centers=centers,
            summary_cardinality=coreset.size,
            summary_dimension=coreset.dimension,
            scalars=network.uplink_scalars(),
            bits=network.uplink_bits(),
            windowed_scalars=windowed_scalars,
            windowed_bits=windowed_bits,
            live_buckets=server.live_bucket_count,
            server_seconds=seconds,
        )

    def _report(
        self,
        sources: Sequence[StreamingSource],
        server: StreamingServer,
        network: SimulatedNetwork,
        queries: List[QuerySnapshot],
        ledger: Dict[int, List[int]],
        num_steps: int,
        router=None,
    ) -> StreamingReport:
        final = queries[-1]
        quantizer_bits = self.quantizer_bits
        if quantizer_bits is None:
            quantizer_bits = next(
                (s.quantizer_bits for s in sources if s.quantizer_bits is not None), None
            )
        failed = sum(1 for s in sources if network.is_failed(s.source_id))
        report = StreamingReport(
            algorithm=self.name,
            centers=final.centers,
            # Headline communication follows the window semantics: expired
            # batches drop out of the totals; unwindowed streams report the
            # cumulative uplink (windowed == cumulative then).
            communication_scalars=final.windowed_scalars,
            communication_bits=final.windowed_bits,
            source_seconds=max(s.compute_seconds for s in sources),
            server_seconds=server.compute_seconds,
            summary_cardinality=final.summary_cardinality,
            summary_dimension=final.summary_dimension,
            quantizer_bits=quantizer_bits,
            participating_sources=len(sources) - failed,
            failed_sources=failed,
            retransmissions=network.retransmissions(),
            messages_lost=network.lost_messages(),
            simulated_network_seconds=network.simulated_seconds(),
            tag_scalars=network.log.scalars_by_tag(),
            queries=queries,
        )
        report = report.with_detail(
            num_sources=len(sources),
            delivery_failures=sum(s.delivery_failures for s in sources),
            num_batch_steps=num_steps,
            num_batches=sum(s.batches_ingested for s in sources),
            num_queries=len(queries),
            total_source_seconds=sum(s.compute_seconds for s in sources),
            cumulative_scalars=network.uplink_scalars(),
            cumulative_bits=network.uplink_bits(),
            live_buckets=final.live_buckets,
            max_live_buckets=max(s.tree.max_live_buckets for s in sources),
            max_resident_points=max(s.tree.max_resident_points for s in sources),
            tree_merges=sum(s.tree.merges for s in sources),
            batch_size=self.batch_size,
            window=0 if self.window is None else self.window,
        )
        if router is not None:
            report = report.with_detail(
                topology_hops=router.topology.hops,
                num_aggregators=router.topology.num_aggregators,
                aggregator_seconds=router.aggregator_seconds,
                total_aggregator_seconds=router.total_aggregator_seconds,
                aggregator_merges=router.aggregator_merges,
                aggregator_delivery_failures=router.aggregator_delivery_failures,
                failed_aggregators=router.failed_aggregators,
            )
        return report


def _pin_derived_dimensions(
    stages: Sequence[Stage], first_batch_shape: Tuple[int, int], ctx: StageContext
) -> List[Stage]:
    """Replace JL stages with derived targets by explicitly-sized copies.

    In the one-shot engine a JL stage may derive ``d'`` from the state
    flowing past it; in a stream that state differs per batch (final batches
    are short), which would project batches into different spaces and break
    bucket merging.  Pinning resolves every derived dimension once against
    the first batch's shape, tracking how cardinality and dimension evolve
    through the composition (CR stages shrink cardinality, JL stages shrink
    dimension, PCA/QT stages preserve shapes).
    """
    n, d = int(first_batch_shape[0]), int(first_batch_shape[1])
    shape = _ShapeState(cardinality=n, dimension=d, is_raw=True)
    pinned: List[Stage] = []
    for stage in stages:
        if isinstance(stage, JLStage):
            target = stage.resolve_dimension(shape, ctx)
            if stage.dimension is None:
                stage = JLStage(target, ensemble=stage.ensemble)
            shape.dimension = target
        elif stage.reduces_cardinality:
            size = getattr(stage, "size", None)
            shape.cardinality = resolve_coreset_size(size, shape.cardinality, ctx.k)
            shape.is_raw = False
        pinned.append(stage)
    return pinned
