"""Weighted Lloyd's algorithm with k-means++ initialisation.

This is the ``kmeans(S', w, k)`` primitive invoked by the edge server in
Algorithms 1–4 of the paper, and (with multiple restarts on the full dataset)
the reference solver that produces the optimal-cost denominator
``cost(P, X*)`` used by the normalized-cost metric of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kmeans.cost import assign_to_centers, cluster_means, weighted_kmeans_cost
from repro.kmeans.seeding import kmeans_plus_plus
from repro.utils.random import SeedLike, as_generator, spawn_generators
from repro.utils.validation import (
    check_matrix,
    check_positive_int,
    check_weights,
)


@dataclass
class KMeansResult:
    """Outcome of a (weighted) k-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of cluster centers.
    labels:
        Assignment of each input point to a center.
    cost:
        Weighted k-means cost of ``centers`` on the input (without any
        coreset Δ shift).
    iterations:
        Number of Lloyd iterations executed by the best restart.
    converged:
        Whether the best restart reached the convergence tolerance before
        hitting ``max_iterations``.
    restarts:
        Number of independent initialisations tried.
    """

    centers: np.ndarray
    labels: np.ndarray
    cost: float
    iterations: int
    converged: bool
    restarts: int = 1

    @property
    def k(self) -> int:
        return int(self.centers.shape[0])


@dataclass
class WeightedKMeans:
    """Weighted Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    k:
        Number of clusters.
    n_init:
        Number of independent k-means++ initialisations; the best (lowest
        cost) run is returned.
    max_iterations:
        Maximum Lloyd iterations per restart.
    tolerance:
        Relative decrease in cost below which a restart is declared
        converged.
    seed:
        RNG seed or generator shared across restarts.
    """

    k: int
    n_init: int = 5
    max_iterations: int = 100
    tolerance: float = 1e-6
    seed: SeedLike = None
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.k = check_positive_int(self.k, "k")
        self.n_init = check_positive_int(self.n_init, "n_init")
        self.max_iterations = check_positive_int(self.max_iterations, "max_iterations")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        self._rng = as_generator(self.seed)

    # ------------------------------------------------------------------ API
    def fit(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> KMeansResult:
        """Run weighted k-means and return the best result over restarts."""
        points = check_matrix(points, "points")
        weights = check_weights(weights, points.shape[0])
        if np.all(weights == 0):
            raise ValueError("all weights are zero; cannot cluster")

        best: Optional[KMeansResult] = None
        for rng in spawn_generators(self._rng, self.n_init):
            result = self._single_run(points, weights, rng)
            if best is None or result.cost < best.cost:
                best = result
        best.restarts = self.n_init
        return best

    def fit_predict(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Convenience wrapper returning only the labels."""
        return self.fit(points, weights).labels

    # ------------------------------------------------------------ internals
    def _single_run(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
    ) -> KMeansResult:
        k = min(self.k, points.shape[0])
        centers = kmeans_plus_plus(points, k, weights=weights, seed=rng)
        previous_cost = np.inf
        labels = np.zeros(points.shape[0], dtype=np.int64)
        converged = False
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            labels, _ = assign_to_centers(points, centers)
            new_centers = cluster_means(points, labels, k, weights)
            # Re-seed empty clusters at the point farthest from its center to
            # keep exactly k distinct centers whenever possible.
            occupied = np.bincount(labels, weights=weights, minlength=k) > 0
            if not occupied.all():
                _, d2 = assign_to_centers(points, new_centers[occupied])
                farthest = np.argsort(d2)[::-1]
                refill = np.flatnonzero(~occupied)
                for slot, idx in zip(refill, farthest):
                    new_centers[slot] = points[idx]
            centers = new_centers
            cost = weighted_kmeans_cost(points, centers, weights)
            if previous_cost - cost <= self.tolerance * max(previous_cost, 1e-300):
                converged = True
                previous_cost = cost
                break
            previous_cost = cost

        final_cost = weighted_kmeans_cost(points, centers, weights)
        labels, _ = assign_to_centers(points, centers)
        if k < self.k:
            # Pad with copies of existing centers so downstream code always
            # sees exactly self.k rows.
            pad = np.repeat(centers[[0]], self.k - k, axis=0)
            centers = np.vstack([centers, pad])
        return KMeansResult(
            centers=centers,
            labels=labels,
            cost=float(final_cost),
            iterations=iteration,
            converged=converged,
        )


def solve_reference_kmeans(
    points: np.ndarray,
    k: int,
    n_init: int = 10,
    max_iterations: int = 200,
    seed: SeedLike = None,
) -> KMeansResult:
    """Compute the reference (near-optimal) centers ``X*`` on the full data.

    The paper normalizes every reported k-means cost by ``cost(P, X*)`` where
    ``X*`` is computed from ``P`` directly.  Exact k-means is NP-hard, so as
    in the paper's experiments we use a strong conventional solver: many
    k-means++ restarts of Lloyd's algorithm.
    """
    solver = WeightedKMeans(
        k=k, n_init=n_init, max_iterations=max_iterations, seed=seed
    )
    return solver.fit(points)
