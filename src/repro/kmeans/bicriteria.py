"""Bicriteria approximation for k-means via adaptive sampling.

Implements the Aggarwal–Deshpande–Kannan adaptive-sampling scheme (paper
references [36]/[42]): repeatedly draw batches of ``O(k)`` points with
D²-sampling.  The selected set ``B`` has more than ``k`` points but its cost
is within a constant factor of the optimal k-means cost with constant
probability; repeating ``log(1/δ)`` times and keeping the best run boosts the
confidence.

Two consumers in this library:

* sensitivity sampling (:mod:`repro.cr.sensitivity`) uses the bicriteria set
  to upper-bound point sensitivities;
* the quantizer configuration of Section 6.3 uses ``cost(P, B)/20`` as the
  lower bound ``E`` on the optimal k-means cost.

Performance: each adaptive round maintains the per-point min-distance vector
*incrementally* — only distances to the centers added in that round are
computed, then folded into the running minimum.  The naive formulation
re-scanned the full (growing) center set twice per round (once to sample,
once for the residual cost), which made the bicriteria step the dominant
cost of every sensitivity-sampling pipeline; the incremental sweep computes
each (point, center) distance exactly once across the whole run and produces
bit-identical draws.  Nearest-center labels and distances are computed once,
for the winning repetition only, and cached on the result for downstream
reuse (the sensitivity sampler needs exactly those quantities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.kmeans.cost import assign_to_centers
from repro.kmeans.seeding import d2_sampling
from repro.utils.linalg import pairwise_squared_distances
from repro.utils.random import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_matrix, check_positive_int, check_weights


@dataclass
class BicriteriaResult:
    """A bicriteria solution: more than ``k`` centers, constant-factor cost.

    Attributes
    ----------
    centers:
        Selected points (shape ``(b, d)`` with ``b >= k`` typically).
    cost:
        Weighted k-means cost of the original data against ``centers``.
    labels:
        Nearest-center assignment of the input points.
    rounds:
        Number of adaptive-sampling rounds used by the winning repetition.
    squared_distances:
        Per-point squared distance to the nearest center (the ``D²`` vector
        matching ``labels``); cached so consumers such as the sensitivity
        sampler do not pay another full assignment pass.
    """

    centers: np.ndarray
    cost: float
    labels: np.ndarray
    rounds: int
    squared_distances: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        return int(self.centers.shape[0])

    def optimal_cost_lower_bound(self, slack: float = 20.0) -> float:
        """Lower bound ``E = cost / slack`` on the optimal k-means cost.

        The adaptive-sampling guarantee states the bicriteria cost is at most
        a constant (the paper uses 20) times the optimum, hence dividing by
        that constant yields a valid lower bound with high probability.
        """
        return self.cost / float(slack)


def bicriteria_approximation(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    rounds: Optional[int] = None,
    batch_factor: int = 3,
    repetitions: int = 3,
    seed: SeedLike = None,
) -> BicriteriaResult:
    """Adaptive-sampling bicriteria approximation for weighted k-means.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    k:
        Target number of clusters.
    weights:
        Optional non-negative point weights.
    rounds:
        Number of adaptive sampling rounds; defaults to
        ``ceil(log2(n)) + 1`` capped to keep the selected set small.
    batch_factor:
        Points drawn per round = ``batch_factor * k``.
    repetitions:
        Independent repetitions; the lowest-cost selection wins (this is the
        ``log(1/δ)`` boosting described in Section 6.3).
    seed:
        RNG seed or generator.
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n = points.shape[0]
    weights = check_weights(weights, n)
    check_positive_int(batch_factor, "batch_factor")
    check_positive_int(repetitions, "repetitions")
    rng = as_generator(seed)

    if rounds is None:
        rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    rounds = check_positive_int(rounds, "rounds")

    best_centers: Optional[np.ndarray] = None
    best_cost = np.inf
    for rep_rng in spawn_generators(rng, repetitions):
        centers, cost = _single_adaptive_run(
            points, k, weights, rounds, batch_factor, rep_rng
        )
        if best_centers is None or cost < best_cost:
            best_centers = centers
            best_cost = cost
    # Labels (and the matching D² vector) are needed only for the winner, so
    # the losing repetitions never pay the assignment pass.
    labels, d2 = assign_to_centers(points, best_centers)
    return BicriteriaResult(
        centers=best_centers,
        cost=float(best_cost),
        labels=labels,
        rounds=rounds,
        squared_distances=d2,
    )


def _single_adaptive_run(
    points: np.ndarray,
    k: int,
    weights: np.ndarray,
    rounds: int,
    batch_factor: int,
    rng: np.random.Generator,
):
    """One adaptive-sampling pass: iteratively add D²-sampled batches.

    Returns ``(centers, cost)``.  The per-point min squared distance to the
    selected set is maintained incrementally: each round computes distances
    to that round's *newly added* centers only.
    """
    n = points.shape[0]
    batch = min(batch_factor * k, n)
    selected = np.zeros(n, dtype=bool)
    closest: Optional[np.ndarray] = None
    residual = np.inf

    for _ in range(rounds):
        indices, _ = d2_sampling(
            points, None, batch, weights=weights, seed=rng,
            min_squared_distances=closest,
        )
        fresh = np.unique(indices[~selected[indices]])
        selected[fresh] = True
        if fresh.size:
            new_d2 = pairwise_squared_distances(points, points[fresh]).min(axis=1)
            if closest is None:
                closest = new_d2
            else:
                np.minimum(closest, new_d2, out=closest)
        # Early exit: once the residual cost is (numerically) zero every
        # point coincides with a selected center and further rounds are moot.
        residual = float(np.dot(weights, closest))
        if residual <= 0.0:
            break

    # rounds >= 1 and every d2_sampling call returns >= 1 index, so at least
    # one point is always selected.
    centers = points[np.flatnonzero(selected)]
    return centers, residual
