"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`as_generator`.  This keeps experiments reproducible end to end: a
single seed passed to an experiment harness deterministically derives the
seeds of every JL projection, sampler, and solver it spawns via
:func:`spawn_generators`.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    The derivation is deterministic given ``seed``, which lets an experiment
    harness hand independent streams to each Monte-Carlo run or each data
    source while remaining reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (for handing to sub-components)."""
    return int(rng.integers(0, 2**63 - 1))


def generator_for_name(seed: SeedLike, name: str) -> np.random.Generator:
    """Derive a generator keyed by a stable string name.

    Unlike :func:`spawn_generators` the derivation does not depend on how
    many (or in which order) other generators were derived: the same
    ``(seed, name)`` pair always yields the same stream.  The network
    simulation uses this to give every link its own loss/jitter generator —
    per-link draws are then independent of the transmission schedule, which
    is what keeps lossy runs identical for ``jobs=1`` and ``jobs=N``.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "generator_for_name needs reusable seed material (None, int or "
            "SeedSequence), not a Generator: drawing from a shared generator "
            "would make the derivation order-dependent"
        )
    entropy = zlib.crc32(str(name).encode("utf-8"))
    if isinstance(seed, np.random.SeedSequence):
        base = list(seed.entropy) if isinstance(seed.entropy, (list, tuple)) else [seed.entropy]
        return np.random.default_rng(np.random.SeedSequence(base + [entropy]))
    base_seed = 0 if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([base_seed, entropy]))


def weighted_indices(
    rng: np.random.Generator,
    probabilities: np.ndarray,
    size: Optional[int] = None,
):
    """Sample indices proportionally to ``probabilities`` via inverse-CDF.

    Drop-in replacement for ``rng.choice(n, p=probabilities[, size=size])``
    with replacement: one cumulative sum builds the CDF, then each draw is a
    single uniform plus an ``O(log n)`` :func:`numpy.searchsorted` lookup —
    skipping ``Generator.choice``'s per-call probability re-validation, which
    dominates when the hot samplers draw repeatedly from short-lived score
    vectors (k-means++, D²-sampling, sensitivity sampling).

    The draw sequence is bit-identical to ``Generator.choice`` (which uses
    the same inverse-CDF construction internally), so swapping the samplers
    does not perturb any seeded experiment.

    Returns a python ``int`` when ``size`` is ``None``, else an ``int64``
    array of ``size`` indices (sampled with replacement).
    """
    probabilities = np.asarray(probabilities)
    if np.any(probabilities < 0):
        # choice() validated this; a negative entry would make the CDF
        # non-monotonic and the binary search silently wrong.
        raise ValueError("probabilities must be non-negative")
    # Accumulate in float64 regardless of input dtype (choice() casts p the
    # same way); also keeps the in-place normalization below well-typed for
    # integer score vectors.
    cdf = np.cumsum(probabilities, dtype=np.float64)
    total = cdf[-1]
    if not np.isfinite(total) or total <= 0:
        raise ValueError("probabilities must contain positive mass")
    cdf /= total
    if size is None:
        return int(cdf.searchsorted(rng.random(), side="right"))
    idx = cdf.searchsorted(rng.random(int(size)), side="right")
    return np.asarray(idx, dtype=np.int64)


def weighted_index_from_scores(
    rng: np.random.Generator, scores: np.ndarray, size: Optional[int] = None
):
    """Like :func:`weighted_indices` but for *unnormalized* non-negative
    scores.

    The scores are normalized before the CDF is built (and the CDF is
    normalized again inside :func:`weighted_indices`) — deliberately, even
    though one pass would suffice: this reproduces the exact float sequence
    of the historical ``rng.choice(n, p=scores/scores.sum())`` call sites, so
    the draws stay bit-identical to the seeded golden values.  The saving
    over ``Generator.choice`` is its per-call probability re-validation
    (a Kahan-summed full-array check), not the normalization itself.
    """
    probabilities = np.asarray(scores, dtype=float)
    probabilities = probabilities / probabilities.sum()
    return weighted_indices(rng, probabilities, size=size)


def permutation_chunks(
    rng: np.random.Generator, n: int, parts: int
) -> List[np.ndarray]:
    """Randomly split ``range(n)`` into ``parts`` near-equal index chunks."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if n < parts:
        raise ValueError(f"cannot split {n} items into {parts} non-empty parts")
    order = rng.permutation(n)
    return [np.sort(chunk) for chunk in np.array_split(order, parts)]


def check_all_distinct(rngs: Iterable[np.random.Generator]) -> bool:
    """Best-effort check that generators are distinct objects (debug aid)."""
    rng_list = list(rngs)
    return len({id(r) for r in rng_list}) == len(rng_list)


def generator_state(rng: np.random.Generator) -> dict:
    """JSON-able snapshot of a generator's exact position in its stream.

    Captures the underlying bit generator's name and state with every numpy
    scalar/array converted to plain python values, so the result survives a
    ``json.dumps`` round trip.  :func:`restore_generator` rebuilds a
    generator that continues the stream bit-identically — the piece that
    lets streaming servers snapshot their per-query seed derivation.
    """

    def jsonable(obj):
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, dict):
            return {key: jsonable(value) for key, value in obj.items()}
        return obj

    return jsonable(rng.bit_generator.state)


def restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` snapshot.

    The returned generator produces exactly the draws the snapshotted one
    would have produced next (numpy's bit-generator state setters accept
    the plain-python form directly).
    """
    name = state.get("bit_generator")
    cls = getattr(np.random, str(name), None)
    if cls is None or not isinstance(cls, type) or not issubclass(
        cls, np.random.BitGenerator
    ):
        raise ValueError(f"unknown bit generator in snapshot: {name!r}")
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
