"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import (
    as_generator,
    check_all_distinct,
    derive_seed,
    permutation_chunks,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9, size=8)
        b = as_generator(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_deterministic_from_int_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(3, 4)]
        b = [g.integers(0, 10**9) for g in spawn_generators(3, 4)]
        assert a == b

    def test_children_are_independent_streams(self):
        children = spawn_generators(9, 3)
        draws = [g.integers(0, 10**12) for g in children]
        assert len(set(draws)) == 3

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_generators(gen, 5)
        assert len(children) == 5
        assert check_all_distinct(children)


class TestDeriveSeed:
    def test_returns_int(self):
        assert isinstance(derive_seed(np.random.default_rng(0)), int)

    def test_consecutive_draws_differ(self):
        gen = np.random.default_rng(0)
        assert derive_seed(gen) != derive_seed(gen)


class TestPermutationChunks:
    def test_partitions_all_indices(self):
        chunks = permutation_chunks(np.random.default_rng(0), 10, 3)
        merged = np.sort(np.concatenate(chunks))
        assert np.array_equal(merged, np.arange(10))

    def test_chunk_count(self):
        chunks = permutation_chunks(np.random.default_rng(0), 10, 4)
        assert len(chunks) == 4

    def test_chunks_nonempty(self):
        chunks = permutation_chunks(np.random.default_rng(1), 5, 5)
        assert all(len(c) == 1 for c in chunks)

    def test_too_many_parts_raises(self):
        with pytest.raises(ValueError):
            permutation_chunks(np.random.default_rng(0), 3, 4)

    def test_zero_parts_raises(self):
        with pytest.raises(ValueError):
            permutation_chunks(np.random.default_rng(0), 3, 0)
