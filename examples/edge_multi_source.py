"""Multiple data sources at the edge: BKLW vs JL+BKLW (Algorithm 4).

Reproduces the Figure 2 / Table 4 comparison at a small scale: a NeurIPS-like
dataset is partitioned at random across 10 edge devices; the devices
cooperatively build a coreset with the distributed protocols (disPCA +
disSS), either directly (BKLW) or after a shared-seed JL projection
(Algorithm 4), and the edge server solves k-means on the union.

Every scalar crossing the simulated network is metered, so the reported
communication numbers are exactly what the devices would transmit.

Run with:  python examples/edge_multi_source.py
"""

from __future__ import annotations

import numpy as np

from repro import BKLWPipeline, JLBKLWPipeline, make_neurips_like
from repro.metrics import ExperimentRunner

NUM_SOURCES = 10
MONTE_CARLO_RUNS = 3
K = 2


def main() -> None:
    points, spec = make_neurips_like(n=1500, d=1200, seed=0)
    d = points.shape[1]
    print(
        f"dataset: {spec.name}, n={spec.n}, d={spec.d} "
        f"(substitute for the NeurIPS word counts), {NUM_SOURCES} data sources"
    )

    runner = ExperimentRunner(points, k=K, monte_carlo_runs=MONTE_CARLO_RUNS, seed=7)
    common = dict(k=K, total_samples=300, pca_rank=20)
    factories = {
        "BKLW": lambda s: BKLWPipeline(seed=s, **common),
        "JL+BKLW (Alg4)": lambda s: JLBKLWPipeline(seed=s, jl_dimension=d // 2, **common),
    }
    result = runner.run_multi_source(factories, num_sources=NUM_SOURCES)

    print(f"\n{'algorithm':<18}{'norm. cost':>14}{'norm. comm.':>14}{'per-source time (s)':>22}")
    for label, summary in result.summary().items():
        print(
            f"{label:<18}{summary.mean_normalized_cost:>14.4f}"
            f"{summary.mean_normalized_communication:>14.5f}"
            f"{summary.mean_source_seconds:>22.3f}"
        )

    # Break the communication down by protocol stage for one run.
    print("\nCommunication breakdown (one run, scalars by message tag):")
    pipeline = BKLWPipeline(seed=0, **common)
    shards_report = pipeline.run_on_dataset(points, NUM_SOURCES, partition_seed=0)
    print(f"  BKLW total scalars: {shards_report.communication_scalars:,}")
    print(f"    of which disPCA sketches: {int(shards_report.details['dispca_scalars']):,}")
    print(f"    of which disSS samples  : {int(shards_report.details['disss_scalars']):,}")

    pipeline4 = JLBKLWPipeline(seed=0, jl_dimension=d // 2, **common)
    report4 = pipeline4.run_on_dataset(points, NUM_SOURCES, partition_seed=0)
    print(f"  JL+BKLW total scalars: {report4.communication_scalars:,}")
    print(f"    of which disPCA sketches: {int(report4.details['dispca_scalars']):,}")
    print(f"    of which disSS samples  : {int(report4.details['disss_scalars']):,}")


if __name__ == "__main__":
    main()
