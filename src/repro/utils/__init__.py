"""Shared low-level utilities: RNG handling, linear algebra, validation."""

from repro.utils.random import as_generator, spawn_generators
from repro.utils.linalg import (
    moore_penrose_inverse,
    randomized_svd,
    safe_svd,
    squared_norms,
    pairwise_squared_distances,
)
from repro.utils.validation import (
    check_matrix,
    check_weights,
    check_positive_int,
    check_fraction,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "moore_penrose_inverse",
    "randomized_svd",
    "safe_svd",
    "squared_norms",
    "pairwise_squared_distances",
    "check_matrix",
    "check_weights",
    "check_positive_int",
    "check_fraction",
]
