"""Failure-injection and degenerate-input tests.

Edge deployments see messy inputs: tiny shards, duplicated points, constant
features, more clusters than points, zero-weight summaries.  These tests pin
down that the library degrades gracefully (sensible results or a clear
exception) instead of crashing with numerical errors deep inside numpy.
"""

import numpy as np
import pytest

import repro
from repro.cr.fss import FSSCoreset
from repro.cr.sensitivity import SensitivitySampler
from repro.distributed.cluster import EdgeCluster
from repro.distributed.disss import DistributedSensitivitySampler
from repro.distributed.dispca import DistributedPCA
from repro.kmeans.lloyd import WeightedKMeans


class TestDegenerateDatasets:
    def test_constant_feature_columns(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((200, 10))
        points[:, 3] = 5.0
        points[:, 7] = 0.0
        report = repro.JLFSSPipeline(k=3, seed=1, coreset_size=50).run(points)
        assert np.all(np.isfinite(report.centers))

    def test_all_identical_points(self):
        points = np.tile([[1.0, 2.0, 3.0]], (100, 1))
        report = repro.FSSPipeline(k=2, seed=0, coreset_size=20).run(points)
        assert np.allclose(report.centers, [1.0, 2.0, 3.0], atol=1e-6)

    def test_single_cluster_k_greater_than_structure(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((100, 5)) * 0.01
        report = repro.JLFSSJLPipeline(k=5, seed=0, coreset_size=40).run(points)
        assert report.centers.shape == (5, 5)

    def test_tiny_dataset_smaller_than_coreset(self):
        rng = np.random.default_rng(2)
        points = rng.standard_normal((15, 8))
        coreset = FSSCoreset(k=2, size=100, pca_rank=4, seed=0)(points)
        assert coreset.size <= 15

    def test_one_dimensional_data(self):
        rng = np.random.default_rng(3)
        points = np.concatenate([rng.normal(0, 1, 50), rng.normal(20, 1, 50)])[:, None]
        result = WeightedKMeans(k=2, n_init=3, seed=0).fit(points)
        centers = np.sort(result.centers.ravel())
        assert abs(centers[0] - 0.0) < 1.5
        assert abs(centers[1] - 20.0) < 1.5

    def test_two_points(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        sampler = SensitivitySampler(k=2, size=5, seed=0)
        coreset = sampler.build(points)
        assert coreset.size == 2
        assert coreset.total_weight == pytest.approx(2.0)


class TestDegenerateDistributedSetups:
    def test_single_source_cluster(self, blob_points):
        cluster = EdgeCluster.from_dataset(blob_points, num_sources=1, k=2, seed=0)
        DistributedPCA(k=2, rank=4).run(cluster.sources, cluster.server)
        result = DistributedSensitivitySampler(k=2, total_samples=30).run(
            cluster.sources, cluster.server
        )
        assert result.coreset.size >= 30

    def test_many_tiny_shards(self, blob_points):
        # 40 sources each holding ~10 points: local SVD ranks and sample
        # allocations must all stay within bounds.
        pipeline = repro.BKLWPipeline(k=2, seed=0, total_samples=80, pca_rank=5)
        report = pipeline.run_on_dataset(blob_points, num_sources=40, partition_seed=1)
        assert np.all(np.isfinite(report.centers))

    def test_shard_smaller_than_k(self):
        rng = np.random.default_rng(4)
        shards = [rng.standard_normal((2, 6)), rng.standard_normal((50, 6))]
        pipeline = repro.BKLWPipeline(k=3, seed=0, total_samples=20, pca_rank=2)
        report = pipeline.run(shards)
        assert report.centers.shape == (3, 6)

    def test_imbalanced_shards(self, blob_points):
        shards = [blob_points[:5], blob_points[5:]]
        pipeline = repro.JLBKLWPipeline(k=2, seed=0, total_samples=40, pca_rank=4,
                                        jl_dimension=blob_points.shape[1])
        report = pipeline.run(shards)
        assert np.all(np.isfinite(report.centers))


class TestQuantizerExtremes:
    def test_one_bit_quantizer_still_produces_finite_centers(self, high_dim_points):
        pipeline = repro.JLFSSPipeline(
            k=3, seed=0, coreset_size=80, quantizer=repro.RoundingQuantizer(1)
        )
        report = pipeline.run(high_dim_points)
        assert np.all(np.isfinite(report.centers))
        assert report.communication_bits < report.communication_scalars * 64

    def test_quantizing_huge_values(self):
        points = np.array([[1e300, -1e300], [1e-300, -1e-300]])
        quantized = repro.RoundingQuantizer(8).quantize(points)
        assert np.all(np.isfinite(quantized))
        assert np.all(np.sign(quantized) == np.sign(points))


class TestSecondJLDimension:
    def test_explicit_second_dimension_respected(self, high_dim_points):
        report = repro.JLFSSJLPipeline(
            k=2, seed=0, coreset_size=60, jl_dimension=40, second_jl_dimension=10
        ).run(high_dim_points)
        assert report.summary_dimension == 10

    def test_second_dimension_capped_by_first(self, high_dim_points):
        report = repro.JLFSSJLPipeline(
            k=2, seed=0, coreset_size=60, jl_dimension=20, second_jl_dimension=400
        ).run(high_dim_points)
        assert report.summary_dimension == 20
