"""Datasets: synthetic substitutes for the paper's MNIST and NeurIPS data.

The paper evaluates on the MNIST training images (60,000 × 784) and the
NeurIPS 1987–2015 word-count matrix (11,463 × 5,812), both normalized to
[-1, 1] with zero mean.  Those files are not available offline, so this
package provides synthetic generators that reproduce the structural
properties the algorithms are sensitive to — size, dimension, cluster
structure, sparsity, and spectral decay — plus the paper's normalization.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.synthetic import (
    make_gaussian_mixture,
    make_mnist_like,
    make_neurips_like,
    DatasetSpec,
)
from repro.datasets.loaders import normalize_dataset, load_benchmark_dataset
from repro.datasets.streams import batch_count, iter_batches, make_drifting_stream

__all__ = [
    "make_gaussian_mixture",
    "make_mnist_like",
    "make_neurips_like",
    "DatasetSpec",
    "normalize_dataset",
    "load_benchmark_dataset",
    "batch_count",
    "iter_batches",
    "make_drifting_stream",
]
