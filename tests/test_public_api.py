"""Tests of the top-level public API surface and the example scripts.

These guard the contract a downstream user relies on: everything advertised
in ``repro.__all__`` is importable and of the expected kind, and the shipped
examples at least compile.
"""

import importlib
import pathlib
import py_compile

import pytest

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is advertised but missing"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackages_importable(self):
        for module in (
            "repro.core", "repro.kmeans", "repro.dr", "repro.cr",
            "repro.quantization", "repro.distributed", "repro.datasets",
            "repro.metrics", "repro.utils",
        ):
            importlib.import_module(module)

    def test_pipeline_classes_are_pipelines(self):
        from repro.core.pipelines import SingleSourcePipeline
        from repro.core.distributed_pipelines import MultiSourcePipeline

        for cls in (repro.FSSPipeline, repro.JLFSSPipeline, repro.FSSJLPipeline,
                    repro.JLFSSJLPipeline, repro.NoReductionPipeline):
            assert issubclass(cls, SingleSourcePipeline)
        for cls in (repro.BKLWPipeline, repro.JLBKLWPipeline,
                    repro.DistributedNoReductionPipeline):
            assert issubclass(cls, MultiSourcePipeline)

    def test_docstrings_present_on_public_classes(self):
        for name in ("JLFSSPipeline", "FSSCoreset", "JLProjection",
                     "RoundingQuantizer", "WeightedKMeans", "EdgeCluster"):
            obj = getattr(repro, name)
            assert obj.__doc__ and len(obj.__doc__.strip()) > 20, name


class TestExamplesCompile:
    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "edge_single_source.py",
        "edge_multi_source.py",
        "quantization_tradeoff.py",
    ])
    def test_example_compiles(self, script):
        path = pathlib.Path(__file__).resolve().parents[1] / "examples" / script
        assert path.exists(), f"missing example {script}"
        py_compile.compile(str(path), doraise=True)
