"""Acceptance macro-benchmark: fss / jl-fss end-to-end on 100k × 50.

Run once on the pre-change tree and once on the post-change tree; the rows
land in ``BENCH_perf.json`` (committed) tagged ``baseline:*`` / ``post:*``,
which is the before/after evidence the perf acceptance criterion reads.

    PYTHONPATH=src python benchmarks/perf_baseline.py baseline
    PYTHONPATH=src python benchmarks/perf_baseline.py post
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_helpers import record_perf, time_best_of  # noqa: E402

from repro.core import registry  # noqa: E402
from repro.datasets import make_gaussian_mixture  # noqa: E402
from repro.kmeans.bicriteria import bicriteria_approximation  # noqa: E402
from repro.kmeans.cost import assign_to_centers, cluster_means, weighted_kmeans_cost  # noqa: E402
from repro.kmeans.seeding import d2_sampling, kmeans_plus_plus  # noqa: E402


def time_pipeline(name: str, points: np.ndarray) -> dict:
    pipeline = registry.create_pipeline(name, k=10, coreset_size=500, seed=7)
    start = time.perf_counter()
    report = pipeline.run(points)
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": elapsed,
        "source_seconds": report.source_seconds,
        "server_seconds": report.server_seconds,
    }


def time_primitives(points: np.ndarray) -> dict:
    rng = np.random.default_rng(0)
    centers = points[rng.choice(points.shape[0], size=10, replace=False)]
    labels, _ = assign_to_centers(points, centers)
    return {
        "assign_seconds": time_best_of(lambda: assign_to_centers(points, centers)),
        "cost_seconds": time_best_of(lambda: weighted_kmeans_cost(points, centers)),
        "cluster_means_seconds": time_best_of(lambda: cluster_means(points, labels, 10)),
        "kmeanspp_seconds": time_best_of(lambda: kmeans_plus_plus(points[:20000], 10, seed=1)),
        "d2_sampling_seconds": time_best_of(lambda: d2_sampling(points, centers, 512, seed=1)),
        "bicriteria_seconds": time_best_of(
            lambda: bicriteria_approximation(points[:20000], 10, seed=1), repeats=1
        ),
    }


def main() -> None:
    tag = sys.argv[1] if len(sys.argv) > 1 else "baseline"
    points, _, _ = make_gaussian_mixture(
        n=100_000, d=50, k=10, separation=6.0, cluster_std=1.0, seed=31
    )
    rows = {}
    prim = time_primitives(points)
    rows[f"{tag}:primitives"] = prim
    print("primitives:", {k: round(v, 4) for k, v in prim.items()})
    for name in ("fss", "jl-fss"):
        row = time_pipeline(name, points)
        rows[f"{tag}:{name}"] = row
        print(name, {k: round(v, 4) for k, v in row.items()})
    path = record_perf(rows)
    print("wrote", path)


if __name__ == "__main__":
    main()
