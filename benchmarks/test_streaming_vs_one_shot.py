"""S1 — Streaming vs one-shot: quality and communication of the stream mode.

Not a paper figure: the paper's protocols are one-shot.  This scenario
validates the streaming subsystem's core promise — merge-and-reduce coreset
trees over batched arrivals reach the same cost regime as compressing the
whole dataset at once — and records the streamed/one-shot cost and
communication trade-off into ``BENCH_streaming.json`` so the trajectory is
tracked across PRs.
"""

from __future__ import annotations

import time

import pytest

from bench_helpers import MONTE_CARLO_RUNS, SCALE, print_table, record_result, run_once, summarize_result
from repro.datasets import make_gaussian_mixture
from repro.metrics import ExperimentRunner

K = 4
CORESET_SIZE = 200
NUM_SOURCES = 4
BATCH_SIZE = 1024
ALGORITHMS = ("fss", "stream-fss", "stream-jl-ss", "stream-uniform-qt")


@pytest.fixture(scope="module")
def stream_runner():
    n = max(4000, int(20000 * SCALE))
    points, _, _ = make_gaussian_mixture(n=n, d=32, k=K, separation=5.0, seed=20)
    return ExperimentRunner(points, k=K, monte_carlo_runs=MONTE_CARLO_RUNS, seed=21)


def _experiment(runner):
    start = time.perf_counter()
    result = runner.run_registered(
        ALGORITHMS,
        num_sources=NUM_SOURCES,
        coreset_size=CORESET_SIZE,
        batch_size=BATCH_SIZE,
    )
    wall = time.perf_counter() - start
    return result, wall


@pytest.mark.benchmark(group="streaming")
def test_streaming_matches_one_shot(benchmark, stream_runner):
    result, wall = run_once(benchmark, lambda: _experiment(stream_runner))
    record_result("streaming", result, wall_seconds=wall)
    rows = summarize_result(result)
    print_table(
        "Streaming vs one-shot (Gaussian mixture)",
        rows,
        ["normalized_cost", "normalized_communication", "source_seconds"],
    )
    costs = result.table("normalized_cost")
    # The streamed FSS summary answers the end-of-stream query in the same
    # cost regime as the one-shot FSS compression of the whole dataset.
    assert costs["stream-fss"] <= costs["fss"] * 1.15 + 0.05
    # Every streamed variant still transmits a fraction of the raw data.
    comm = result.table("normalized_communication")
    for name in ALGORITHMS:
        if name.startswith("stream"):
            assert comm[name] < 1.0, (name, comm[name])
    # Quantized streaming is cheaper on the wire than unquantized streaming
    # of the same cardinality regime.
    assert comm["stream-uniform-qt"] < comm["stream-fss"]
