"""Communication-metering parity between the stage engine and the seed code.

The expected values below were captured by running the original monolithic
pipeline implementations (pre-refactor) with the exact configurations used
here.  The stage-engine rewrite must reproduce them **identically** — every
scalar and every bit — because the paper's headline numbers (Tables 3/4) are
communication costs.  The distributed values are sensitive to the RNG stream
(the disSS sample allocation depends on data-dependent costs), so these tests
also pin the engine's seed-handshake ordering against the seed behaviour.
"""

import numpy as np
import pytest

from repro.core.distributed_pipelines import (
    BKLWPipeline,
    DistributedNoReductionPipeline,
    JLBKLWPipeline,
)
from repro.core.pipelines import (
    FSSJLPipeline,
    FSSPipeline,
    JLFSSJLPipeline,
    JLFSSPipeline,
    NoReductionPipeline,
)
from repro.datasets import make_gaussian_mixture
from repro.distributed.network import Message, SimulatedNetwork, _count_scalars
from repro.distributed.partition import partition_dataset
from repro.quantization.rounding import RoundingQuantizer


@pytest.fixture(scope="module")
def dataset():
    points, _, _ = make_gaussian_mixture(
        n=240, d=60, k=3, separation=8.0, cluster_std=1.0, seed=123
    )
    return points


@pytest.fixture(scope="module")
def shards(dataset):
    indices = partition_dataset(dataset, 4, seed=99)
    return [dataset[idx] for idx in indices]


_SINGLE_KW = dict(k=3, seed=0, coreset_size=50, pca_rank=6)
_QT = dict(quantizer=RoundingQuantizer(8))

#: (pipeline factory kwargs) -> seed-captured
#: (communication_scalars, communication_bits, summary_cardinality,
#:  summary_dimension).
SINGLE_SOURCE_EXPECTED = [
    # NR: the raw 240x60 dataset.
    (NoReductionPipeline, dict(k=3, seed=0), (14400, 921600, 240, 60)),
    # FSS: 50x6 coords + 60x6 basis + 50 weights + 1 shift = 711.
    (FSSPipeline, _SINGLE_KW, (711, 45504, 50, 6)),
    # Alg1: 50x6 coords + 20x6 basis (projected space) + 50 + 1 = 471.
    (JLFSSPipeline, dict(jl_dimension=20, **_SINGLE_KW), (471, 30144, 50, 6)),
    # Alg2: 50x20 points + 50 + 1 = 1051 (no basis travels).
    (FSSJLPipeline, dict(jl_dimension=20, **_SINGLE_KW), (1051, 67264, 50, 20)),
    # Alg3: 50x10 points + 50 + 1 = 551.
    (JLFSSJLPipeline,
     dict(jl_dimension=20, second_jl_dimension=10, **_SINGLE_KW),
     (551, 35264, 50, 10)),
    # +QT variants: identical scalar counts, reduced bits on the point
    # payload only (weights/basis/shift stay at 64 bits).
    (NoReductionPipeline, dict(k=3, seed=0, **_QT), (14400, 288000, 240, 60)),
    (FSSPipeline, dict(**_SINGLE_KW, **_QT), (711, 32304, 50, 6)),
    (JLFSSPipeline, dict(jl_dimension=20, **_SINGLE_KW, **_QT), (471, 16944, 50, 6)),
    (FSSJLPipeline, dict(jl_dimension=20, **_SINGLE_KW, **_QT), (1051, 23264, 50, 20)),
    (JLFSSJLPipeline,
     dict(jl_dimension=20, second_jl_dimension=10, **_SINGLE_KW, **_QT),
     (551, 13264, 50, 10)),
    # Derived-default geometry (no explicit sizes).
    (FSSPipeline, dict(k=3, seed=1), (4741, 303424, 240, 15)),
    (JLFSSJLPipeline, dict(k=3, seed=1), (14641, 937024, 240, 60)),
]

_MULTI_KW = dict(k=3, seed=0, total_samples=60, pca_rank=6)

#: Distributed cases additionally pin the per-stage detail scalars; the disSS
#: counts depend on the RNG stream, so equality here proves the engine's
#: seed-handshake order matches the seed implementations.
MULTI_SOURCE_EXPECTED = [
    (DistributedNoReductionPipeline, dict(k=3, seed=0),
     (14400, 921600, 240, 60), {}),
    (BKLWPipeline, _MULTI_KW,
     (13363, 855232, 195, 60),
     {"dispca_scalars": 1464.0, "disss_scalars": 11899.0}),
    (JLBKLWPipeline, dict(jl_dimension=20, **_MULTI_KW),
     (4519, 289216, 191, 20),
     {"dispca_scalars": 504.0, "disss_scalars": 4015.0, "jl_dimension": 20.0}),
    (DistributedNoReductionPipeline, dict(k=3, seed=0, **_QT),
     (14400, 288000, 240, 60), {}),
    (BKLWPipeline, dict(**_MULTI_KW, **_QT),
     (13363, 340432, 195, 60),
     {"dispca_scalars": 1464.0, "disss_scalars": 11899.0}),
    (JLBKLWPipeline, dict(jl_dimension=20, **_MULTI_KW, **_QT),
     (4519, 121136, 191, 20),
     {"dispca_scalars": 504.0, "disss_scalars": 4015.0, "jl_dimension": 20.0}),
    (BKLWPipeline, dict(k=3, seed=2),
     (26539, 1698496, 375, 60),
     {"dispca_scalars": 3660.0, "disss_scalars": 22879.0}),
]


class TestSingleSourceParity:
    @pytest.mark.parametrize(
        "pipeline_cls, kwargs, expected", SINGLE_SOURCE_EXPECTED,
        ids=[f"{cls.__name__}-{i}" for i, (cls, _, _) in enumerate(SINGLE_SOURCE_EXPECTED)],
    )
    def test_matches_seed_implementation(self, dataset, pipeline_cls, kwargs, expected):
        report = pipeline_cls(**kwargs).run(dataset)
        scalars, bits, cardinality, dimension = expected
        assert report.communication_scalars == scalars
        assert report.communication_bits == bits
        assert report.summary_cardinality == cardinality
        assert report.summary_dimension == dimension

    def test_runs_are_reproducible(self, dataset):
        """Two pipelines with the same master seed produce identical centers."""
        first = JLFSSJLPipeline(k=3, seed=42, coreset_size=40).run(dataset)
        second = JLFSSJLPipeline(k=3, seed=42, coreset_size=40).run(dataset)
        np.testing.assert_array_equal(first.centers, second.centers)


class TestMultiSourceParity:
    @pytest.mark.parametrize(
        "pipeline_cls, kwargs, expected, details", MULTI_SOURCE_EXPECTED,
        ids=[f"{cls.__name__}-{i}" for i, (cls, _, _, _) in enumerate(MULTI_SOURCE_EXPECTED)],
    )
    def test_matches_seed_implementation(
        self, shards, pipeline_cls, kwargs, expected, details
    ):
        report = pipeline_cls(**kwargs).run([s.copy() for s in shards])
        scalars, bits, cardinality, dimension = expected
        assert report.communication_scalars == scalars
        assert report.communication_bits == bits
        assert report.summary_cardinality == cardinality
        assert report.summary_dimension == dimension
        for key, value in details.items():
            assert report.details[key] == value


class TestCountScalarsNestedPayloads:
    """The metering chokepoint must count arbitrarily nested payloads."""

    def test_deeply_nested_mixed_containers(self):
        payload = {
            "coords": np.zeros((5, 3)),
            "meta": {"shift": 0.5, "sizes": [1, 2, 3]},
            "blocks": [np.zeros(4), (np.zeros((2, 2)), 7.0), []],
        }
        assert _count_scalars(payload) == 15 + 1 + 3 + 4 + 4 + 1

    def test_empty_containers_count_zero(self):
        assert _count_scalars({}) == 0
        assert _count_scalars([]) == 0
        assert _count_scalars({"a": [], "b": {}}) == 0

    def test_dict_of_lists_of_dicts(self):
        payload = {"rows": [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": np.zeros(6)}]}
        assert _count_scalars(payload) == 2 + 1 + 6

    def test_numpy_scalar_types(self):
        assert _count_scalars(np.int32(5)) == 1
        assert _count_scalars([np.float32(1.0), np.int64(2)]) == 2


class TestDownlinkAccounting:
    """Uplink metrics must exclude server → source traffic, which is still
    recorded in the log (disSS sends the sample-size allocation downlink)."""

    def test_downlink_not_counted_in_uplink_totals(self):
        network = SimulatedNetwork()
        network.send("source-0", "server", np.zeros((4, 4)), tag="summary")
        network.send("server", "source-0", np.zeros(10), tag="allocation")
        assert network.uplink_scalars() == 16
        assert network.uplink_bits() == 16 * 64
        assert network.log.total_scalars(uplink_only=False) == 26
        assert len(network.log) == 2

    def test_downlink_message_direction(self):
        message = Message("server", "source-3", "allocation", scalars=4)
        assert not message.uplink
        assert message.bits == 4 * 64

    def test_bklw_records_downlink_allocation(self, shards):
        """The BKLW protocol's downlink allocation messages are in the log
        but excluded from the uplink metrics the reports quote."""
        pipeline = BKLWPipeline(k=3, seed=0, total_samples=60, pca_rank=6)
        # Re-run on fresh shards and inspect via a fresh cluster run: the
        # report only exposes uplink, so check the invariant indirectly.
        report = pipeline.run([s.copy() for s in shards])
        assert report.communication_scalars == 13363  # uplink only, as pinned
