"""The data-source node: an edge device holding a local dataset shard.

A :class:`DataSourceNode` owns its local points and exposes the *local*
computations the distributed algorithms need (local SVD for disPCA,
bicriteria + sampling for disSS, JL projection, quantization).  It never
reads another node's data; anything that leaves the node goes through the
:class:`~repro.distributed.network.SimulatedNetwork` so it is metered.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.distributed.conditions import DeliveryError
from repro.distributed.network import SimulatedNetwork
from repro.dr.jl import JLProjection
from repro.kmeans.bicriteria import BicriteriaResult, bicriteria_approximation
from repro.kmeans.cost import assign_to_centers
from repro.quantization.rounding import RoundingQuantizer
from repro.utils.clock import perf_counter
from repro.utils.linalg import safe_svd
from repro.utils.random import SeedLike, as_generator, weighted_indices
from repro.utils.validation import check_matrix, check_positive_int


class DataSourceNode:
    """One edge device holding a shard of the dataset.

    Parameters
    ----------
    node_id:
        Identifier used in transmission logs (e.g. ``"source-3"``).
    points:
        The local dataset shard, ``(n_i, d)``.
    network:
        The shared simulated network.
    seed:
        RNG seed for this node's local randomness.
    """

    def __init__(
        self,
        node_id: str,
        points: np.ndarray,
        network: SimulatedNetwork,
        seed: SeedLike = None,
    ) -> None:
        self.node_id = str(node_id)
        self.points = check_matrix(points, "points")
        self.network = network
        self.rng = as_generator(seed)
        #: Wall-clock seconds spent in local computation on this node.
        self.compute_seconds = 0.0
        #: Per-node override of the network condition's retransmission
        #: budget (``None`` defers to the condition).
        self.retry_budget: Optional[int] = None
        #: Payloads this node failed to deliver within the retry budget.
        self.delivery_failures = 0
        # (bicriteria result, the exact points array it was computed on) —
        # lets the sampling step reuse the cached assignment safely: any
        # local transform (JL, projection) replaces self.points with a new
        # array, which invalidates the pair by identity.
        self._cached_bicriteria = None
        self._cached_bicriteria_points = None

    # -------------------------------------------------------------- helpers
    @property
    def cardinality(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def _timed(self, fn, *args, **kwargs):
        start = perf_counter()
        result = fn(*args, **kwargs)
        self.compute_seconds += perf_counter() - start
        return result

    def send_to_server(self, payload, tag: str, significant_bits: Optional[int] = None,
                       scalars: Optional[int] = None, retries: Optional[int] = None):
        """Transmit a payload to the edge server through the metered network.

        Retries up to the retransmission budget (the explicit ``retries``
        argument, else this node's :attr:`retry_budget`, else the network
        condition's default); every attempt is metered.  Raises
        :class:`~repro.distributed.conditions.DeliveryError` — and counts a
        delivery failure — when the budget is exhausted, so the protocol
        driver can exclude this source from the round.
        """
        if retries is None:
            retries = self.retry_budget
        try:
            return self.network.send(
                sender=self.node_id,
                receiver="server",
                payload=payload,
                tag=tag,
                significant_bits=significant_bits,
                scalars=scalars,
                retries=retries,
            )
        except DeliveryError:
            self.delivery_failures += 1
            raise

    # ---------------------------------------------------------- local steps
    def apply_jl(self, projection: JLProjection) -> np.ndarray:
        """Apply a JL projection to the local shard (costs no communication:
        the projection seed is pre-shared)."""
        projected = self._timed(projection.transform, self.points)
        self.points = projected
        return projected

    def local_svd(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """Local SVD step of disPCA: returns ``(Sigma_t, V_t)`` truncated to
        ``rank`` columns (these are what the node transmits)."""
        rank = check_positive_int(rank, "rank")

        def _svd():
            _, s, vt = safe_svd(self.points, full_matrices=False)
            keep = min(rank, s.shape[0])
            return s[:keep], vt[:keep].T

        return self._timed(_svd)

    def project_onto(self, basis: np.ndarray) -> np.ndarray:
        """Replace the local shard by its projection ``A V V^T`` onto a basis
        received from the server (the disPCA output)."""
        basis = np.asarray(basis, dtype=float)

        def _project():
            return (self.points @ basis) @ basis.T

        self.points = self._timed(_project)
        return self.points

    def local_bicriteria(
        self,
        k: int,
        rounds: Optional[int] = None,
        batch_factor: int = 3,
    ) -> BicriteriaResult:
        """Bicriteria approximation on the local shard (disSS step 1).

        ``rounds``/``batch_factor`` bound the size of the bicriteria set
        ``X_i``; since ``X_i`` is transmitted along with the samples, smaller
        values trade a little sampling quality for less communication.
        """
        result = self._timed(
            bicriteria_approximation,
            self.points,
            k,
            rounds=rounds,
            batch_factor=batch_factor,
            seed=self.rng,
        )
        self._cached_bicriteria = result
        self._cached_bicriteria_points = self.points
        return result

    def local_sensitivity_sample(
        self,
        bicriteria: BicriteriaResult,
        sample_size: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """disSS step 3: draw ``sample_size`` points with probability
        proportional to their cost against the local bicriteria centers, and
        return the sampled points together with weights.

        The returned set is ``S_i ∪ X_i`` (samples plus the bicriteria
        centers) with weights chosen to match the number of points per
        cluster, following [4]: sampled points get inverse-probability
        weights, and each bicriteria center gets the (non-negative) residual
        weight of its cluster so the total weight equals ``n_i``.
        """
        sample_size = check_positive_int(sample_size, "sample_size")

        def _sample():
            # The bicriteria step cached its assignment of these exact local
            # points; reuse it rather than paying another full pass.  Any
            # shard transform since then (apply_jl / project_onto) replaced
            # self.points, so identity of both the result and the array
            # guarantees the cache still describes the current geometry.
            if (
                bicriteria is self._cached_bicriteria
                and self.points is self._cached_bicriteria_points
                and bicriteria.squared_distances is not None
            ):
                labels, d2 = bicriteria.labels, bicriteria.squared_distances
            else:
                labels, d2 = assign_to_centers(self.points, bicriteria.centers)
            total = float(d2.sum())
            n_local = self.points.shape[0]
            if total <= 0:
                probabilities = np.full(n_local, 1.0 / n_local)
            else:
                probabilities = d2 / total
                # Guard against numerically-zero rows.
                probabilities = np.maximum(probabilities, 1e-18)
                probabilities /= probabilities.sum()
            size = min(sample_size, n_local)
            indices = weighted_indices(self.rng, probabilities, size=size)
            sample_weights = 1.0 / (size * probabilities[indices])

            # Residual weight per bicriteria center: cluster size minus the
            # weight already assigned to samples from that cluster.
            cluster_sizes = np.bincount(labels, minlength=bicriteria.size).astype(float)
            sampled_weight_per_cluster = np.bincount(
                labels[indices], weights=sample_weights, minlength=bicriteria.size
            )
            center_weights = np.maximum(cluster_sizes - sampled_weight_per_cluster, 0.0)

            points_out = np.vstack([self.points[indices], bicriteria.centers])
            weights_out = np.concatenate([sample_weights, center_weights])
            return points_out, weights_out

        return self._timed(_sample)

    def quantize(self, points: np.ndarray, quantizer: RoundingQuantizer) -> np.ndarray:
        """Quantize a prepared summary before transmission."""
        return self._timed(quantizer.quantize, points)
