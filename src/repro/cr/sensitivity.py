"""Sensitivity sampling for k-means coresets.

The Langberg–Schulman / Feldman–Langberg framework (paper references [23],
[24]): upper-bound each point's *sensitivity* — the maximum fraction of the
total cost it can be responsible for under any candidate center set — using a
bicriteria solution, then sample points with probability proportional to the
sensitivity bound and weight each sample by the inverse of its expected
selection count.

Following footnote 8 of the paper (and reference [4]), weights are assigned
so that the total coreset weight equals the cardinality of the input
(deterministically), which the quantization-error analysis of Theorem 6.1
relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cr.coreset import Coreset
from repro.kmeans.bicriteria import BicriteriaResult, bicriteria_approximation
from repro.kmeans.cost import assign_to_centers
from repro.utils.random import SeedLike, as_generator, weighted_indices
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive_int,
    check_weights,
)


def sensitivity_sample_size(
    k: int,
    epsilon: float,
    delta: float = 0.1,
    constant: float = 10.0,
) -> int:
    """Theoretical ε-coreset size ``O(k³ log²k · log(1/δ) / ε⁴)`` (Thm 3.2).

    The constant is configurable because the paper's literal constant
    (Section 6.3 quotes ``C1 ≈ 54912·…/225``) produces coresets far larger
    than the dataset at laptop scale; experiments in Section 7 tune sizes so
    algorithms reach comparable empirical error, which we mirror by exposing
    the knob.
    """
    k = check_positive_int(k, "k")
    epsilon = check_fraction(epsilon, "epsilon")
    delta = check_fraction(delta, "delta")
    log_k = math.log(max(k, 2))
    size = constant * (k**3) * (log_k**2) * math.log(1.0 / delta) / (epsilon**4)
    return max(k + 1, int(math.ceil(size)))


@dataclass
class SensitivityScores:
    """Per-point sensitivity upper bounds and the bicriteria solution used."""

    scores: np.ndarray
    total: float
    bicriteria: BicriteriaResult


class SensitivitySampler:
    """Coreset construction by sensitivity (importance) sampling.

    Parameters
    ----------
    k:
        Number of clusters the coreset must support.
    size:
        Number of samples to draw (coreset cardinality).  Callers typically
        derive it from :func:`sensitivity_sample_size` or tune it as in the
        paper's experiments.
    seed:
        RNG seed or generator.
    deterministic_weights:
        If True (default), rescale weights so the total coreset weight equals
        the total input weight exactly (footnote 8 / reference [4]); if
        False, use the classical unbiased ``1/(size * prob)`` weights.
    """

    def __init__(
        self,
        k: int,
        size: int,
        seed: SeedLike = None,
        deterministic_weights: bool = True,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.size = check_positive_int(size, "size")
        self.deterministic_weights = bool(deterministic_weights)
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------ API
    def compute_sensitivities(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> SensitivityScores:
        """Upper-bound the sensitivity of every point.

        Uses the standard bound ``s(p) ≲ cost(p, B)/cost(P, B) + 1/|P_b|``
        where ``B`` is a bicriteria solution and ``P_b`` is the cluster of
        ``p`` under ``B``.
        """
        points = check_matrix(points, "points")
        n = points.shape[0]
        weights = check_weights(weights, n)
        bicriteria = bicriteria_approximation(
            points, self.k, weights=weights, seed=self._rng
        )
        # The bicriteria run caches exactly the assignment this bound needs;
        # recompute only if a caller handed in a result without the cache.
        if bicriteria.squared_distances is not None:
            labels, d2 = bicriteria.labels, bicriteria.squared_distances
        else:
            labels, d2 = assign_to_centers(points, bicriteria.centers)
        weighted_d2 = weights * d2
        total_cost = float(weighted_d2.sum())

        cluster_weight = np.bincount(labels, weights=weights, minlength=bicriteria.size)
        cluster_weight_per_point = cluster_weight[labels]
        # Guard against empty / zero-weight clusters.
        cluster_weight_per_point[cluster_weight_per_point <= 0] = 1.0

        if total_cost <= 0:
            # Degenerate dataset: every point sits on a bicriteria center, so
            # only the cluster-mass term matters.
            scores = weights / cluster_weight_per_point
        else:
            scores = weighted_d2 / total_cost + weights / cluster_weight_per_point
        scores = np.maximum(scores, 1e-18)
        return SensitivityScores(
            scores=scores, total=float(scores.sum()), bicriteria=bicriteria
        )

    def build(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
        shift: float = 0.0,
    ) -> Coreset:
        """Draw the coreset.

        Parameters
        ----------
        points, weights:
            Input (possibly already weighted) dataset.
        shift:
            A Δ value to carry into the resulting coreset (FSS passes the
            discarded PCA tail energy here).
        """
        points = check_matrix(points, "points")
        n = points.shape[0]
        weights = check_weights(weights, n)
        size = min(self.size, n)

        scores = self.compute_sensitivities(points, weights)
        probabilities = scores.scores / scores.total
        indices = weighted_indices(self._rng, probabilities, size=size)

        sample_weights = weights[indices] / (size * probabilities[indices])
        if self.deterministic_weights:
            total_input_weight = float(weights.sum())
            current = float(sample_weights.sum())
            if current > 0:
                sample_weights = sample_weights * (total_input_weight / current)

        return Coreset(points[indices].copy(), sample_weights, shift=shift)
